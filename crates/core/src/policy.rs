//! Label-lattice policies: the generalization of the paper's binary
//! monitored/unmonitored scheme into a configurable information-flow
//! policy engine (ROADMAP item 2).
//!
//! A policy declares a small set of **labels** (criticality classes,
//! sensor trust domains, ARINC-style partitions), an optional partial
//! order between them, and **declassifier** pairs naming which
//! relabelings a monitor function may perform. The declared poset is
//! embedded into the free join-semilattice over one atom per label
//! (a `u64` bitmask): join is bitwise OR, `a ⊑ b` iff `a & !b == 0`,
//! `trusted` (⊥) is the empty mask and `untrusted` (⊤) is the mask of
//! every atom. Two distinguished names are always available and never
//! need declaring:
//!
//! * `trusted` — ⊥, the label of monitored/core data;
//! * `untrusted` — ⊤, the label of data from outside every declared
//!   domain (an unlabeled non-core region, a non-core socket).
//!
//! The **default policy** declares no labels and no declassifiers: the
//! lattice collapses to `{trusted, untrusted}` and the analysis is
//! byte-identical to the paper's two-point scheme (Table 1), which the
//! differential oracle and golden suites lock down.
//!
//! Implicit (control-dependence) flows are tracked separately from
//! explicit (data) flows, and the policy chooses what to do with them
//! ([`ImplicitFlowMode`]): report them separately as the paper's
//! false-positive candidates (the default), promote them to hard errors
//! (`strict`), or track-but-drop them (`taint-only`, the §3.4.1
//! ablation applied at report time).

use safeflow_util::wire::{put_str, put_u32, put_u8};
use std::collections::BTreeMap;

/// What the analysis does with implicit (control-dependence) flows at
/// report time. Explicit flows are always errors; the paper observes
/// that control-only dependencies "may be false positives" (§3.4.1) and
/// this knob makes that triage decision a first-class policy choice.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ImplicitFlowMode {
    /// Control-only dependencies are promoted to hard (data-grade)
    /// errors: implicit flows are as bad as explicit ones.
    Strict,
    /// Control-only dependencies are tracked (they still taint values
    /// internally) but dropped from the report.
    TaintOnly,
    /// Control-only dependencies are reported as a separate class of
    /// false-positive candidates — the paper's behavior, and the
    /// default.
    #[default]
    ReportSeparately,
}

impl ImplicitFlowMode {
    /// Parses the CLI/annotation spelling (`strict`, `taint-only`,
    /// `report-separately`).
    pub fn parse(s: &str) -> Option<ImplicitFlowMode> {
        match s {
            "strict" => Some(ImplicitFlowMode::Strict),
            "taint-only" => Some(ImplicitFlowMode::TaintOnly),
            "report-separately" => Some(ImplicitFlowMode::ReportSeparately),
            _ => None,
        }
    }

    /// The canonical spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ImplicitFlowMode::Strict => "strict",
            ImplicitFlowMode::TaintOnly => "taint-only",
            ImplicitFlowMode::ReportSeparately => "report-separately",
        }
    }

    fn discriminant(&self) -> u8 {
        match self {
            ImplicitFlowMode::Strict => 0,
            ImplicitFlowMode::TaintOnly => 1,
            ImplicitFlowMode::ReportSeparately => 2,
        }
    }
}

/// One declared label: a name plus the names of the labels it sits
/// directly above in the declared partial order (data at a `below`
/// label may flow into data at this label without declassification).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LabelDecl {
    /// Label name (must not be the reserved `trusted`/`untrusted`).
    pub name: String,
    /// Labels this one dominates in the declared order.
    pub below: Vec<String>,
}

impl LabelDecl {
    /// A label above only ⊥.
    pub fn new(name: impl Into<String>) -> LabelDecl {
        LabelDecl { name: name.into(), below: Vec::new() }
    }

    /// A label directly above the given labels.
    pub fn above(name: impl Into<String>, below: Vec<String>) -> LabelDecl {
        LabelDecl { name: name.into(), below }
    }
}

/// A user-declared label-lattice policy. Construct with
/// [`Policy::builder`]; the empty [`Policy::default`] is the paper's
/// two-point monitored/unmonitored scheme.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Policy {
    /// Declared labels (normalized: sorted by name, deduplicated, with
    /// duplicate declarations' `below` lists merged).
    pub labels: Vec<LabelDecl>,
    /// Allowed declassifications as `(from, to)` label-name pairs.
    pub declassifiers: Vec<(String, String)>,
    /// Report-time handling of implicit flows.
    pub implicit_flow: ImplicitFlowMode,
}

impl Policy {
    /// A builder over the empty (two-point) policy.
    pub fn builder() -> PolicyBuilder {
        PolicyBuilder::default()
    }

    /// The paper's two-point monitored/unmonitored policy (the default).
    pub fn two_point() -> Policy {
        Policy::default()
    }

    /// The paper's two-point policy, under its historical name.
    #[deprecated(note = "use `Policy::two_point()` (or `Policy::default()`)")]
    pub fn monitored_unmonitored() -> Policy {
        Policy::default()
    }

    /// `true` for the two-point default policy with default implicit-flow
    /// handling — the configuration whose reports must stay byte-identical
    /// to the pre-lattice analyzer (and keep the `safeflow-report-v1`
    /// schema).
    pub fn is_default(&self) -> bool {
        self.labels.is_empty()
            && self.declassifiers.is_empty()
            && self.implicit_flow == ImplicitFlowMode::ReportSeparately
    }

    /// This policy with labels sorted by name (duplicate declarations
    /// merged, `below` lists sorted and deduplicated) and declassifier
    /// pairs sorted and deduplicated. Two policies differing only in
    /// declaration order normalize to the same value, so store manifest
    /// keys cannot diverge on declaration order.
    pub fn normalized(mut self) -> Policy {
        let mut merged: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for decl in self.labels {
            let entry = merged.entry(decl.name).or_default();
            entry.extend(decl.below);
        }
        self.labels = merged
            .into_iter()
            .map(|(name, mut below)| {
                below.sort();
                below.dedup();
                LabelDecl { name, below }
            })
            .collect();
        self.declassifiers.sort();
        self.declassifiers.dedup();
        self
    }

    /// Canonical byte encoding of the normalized policy, for inclusion
    /// in store config hashes and engine environment hashes. Callers
    /// must pass a normalized policy for order-independence.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_u32(out, self.labels.len() as u32);
        for decl in &self.labels {
            put_str(out, &decl.name);
            put_u32(out, decl.below.len() as u32);
            for b in &decl.below {
                put_str(out, b);
            }
        }
        put_u32(out, self.declassifiers.len() as u32);
        for (from, to) in &self.declassifiers {
            put_str(out, from);
            put_str(out, to);
        }
        put_u8(out, self.implicit_flow.discriminant());
    }

    /// Compiles this policy, extended by module-level annotation
    /// declarations, into the bitmask lattice the engines consume.
    /// Declaration problems (reserved names, unknown references, too
    /// many labels) become deterministic notes, never hard errors: the
    /// offending declaration is ignored and analysis proceeds.
    pub fn compile(
        &self,
        extra_labels: &[LabelDecl],
        extra_declassifiers: &[(String, String)],
    ) -> (LabelTable, Vec<String>) {
        let merged = Policy {
            labels: self.labels.iter().cloned().chain(extra_labels.iter().cloned()).collect(),
            declassifiers: self
                .declassifiers
                .iter()
                .cloned()
                .chain(extra_declassifiers.iter().cloned())
                .collect(),
            implicit_flow: self.implicit_flow,
        }
        .normalized();
        let mut notes = Vec::new();
        let mut decls: Vec<&LabelDecl> = Vec::new();
        for decl in &merged.labels {
            if decl.name == "trusted" || decl.name == "untrusted" {
                notes.push(format!(
                    "label `{}` is reserved and cannot be redeclared; declaration ignored",
                    decl.name
                ));
                continue;
            }
            if decls.len() >= MAX_LABELS {
                notes.push(format!(
                    "label `{}` exceeds the {MAX_LABELS}-label limit; declaration ignored",
                    decl.name
                ));
                continue;
            }
            decls.push(decl);
        }
        // Atom bit 0 is the implicit `untrusted` atom; declared labels
        // take bits 1..=n in sorted-name order.
        let mut masks: BTreeMap<String, u64> = BTreeMap::new();
        for (i, decl) in decls.iter().enumerate() {
            masks.insert(decl.name.clone(), 1u64 << (i + 1));
        }
        // Close the declared order: mask(l) ⊇ mask(b) for every b below
        // l. Fixpoint handles forward references and cycles (mutual
        // inclusion) deterministically.
        loop {
            let mut changed = false;
            for decl in &decls {
                let mut m = masks[&decl.name];
                for b in &decl.below {
                    match masks.get(b.as_str()) {
                        Some(bm) => m |= bm,
                        None if b != "trusted" => {
                            // Reported once below, after the fixpoint.
                        }
                        None => {}
                    }
                }
                if m != masks[&decl.name] {
                    masks.insert(decl.name.clone(), m);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for decl in &decls {
            for b in &decl.below {
                if b != "trusted" && !masks.contains_key(b.as_str()) {
                    notes.push(format!(
                        "label `{}` is declared above unknown label `{b}`; that edge is ignored",
                        decl.name
                    ));
                }
            }
        }
        let top = (1u64 << (decls.len() + 1)) - 1;
        let resolve = |name: &str, masks: &BTreeMap<String, u64>| -> Option<u64> {
            match name {
                "trusted" => Some(0),
                "untrusted" => Some(top),
                other => masks.get(other).copied(),
            }
        };
        let mut declass = Vec::new();
        for (from, to) in &merged.declassifiers {
            match (resolve(from, &masks), resolve(to, &masks)) {
                (Some(f), Some(t)) => declass.push((f, t)),
                _ => notes.push(format!(
                    "declassifier({from}, {to}) names an undeclared label; pair ignored"
                )),
            }
        }
        declass.sort();
        declass.dedup();
        let atoms: Vec<String> = decls.iter().map(|d| d.name.clone()).collect();
        let table = LabelTable {
            atoms,
            masks,
            top,
            declass,
            mode: merged.implicit_flow,
            region_labels: BTreeMap::new(),
            default_policy: merged.is_default(),
        };
        (table, notes)
    }
}

/// Hard cap on declared labels: atoms live in a `u64` bitmask with bit 0
/// reserved for the implicit `untrusted` atom.
pub const MAX_LABELS: usize = 63;

/// Typed, chainable construction of a [`Policy`], mirroring
/// [`crate::AnalysisConfig::builder`]: setters accumulate declarations
/// and [`PolicyBuilder::build`] returns the normalized policy.
#[derive(Debug, Clone, Default)]
pub struct PolicyBuilder {
    policy: Policy,
}

impl PolicyBuilder {
    /// Declares a label above only ⊥.
    pub fn label(mut self, name: impl Into<String>) -> Self {
        self.policy.labels.push(LabelDecl::new(name));
        self
    }

    /// Declares a label directly above `below` in the lattice order.
    pub fn label_above(mut self, name: impl Into<String>, below: impl Into<String>) -> Self {
        self.policy.labels.push(LabelDecl::above(name, vec![below.into()]));
        self
    }

    /// Allows monitors to declassify `from`-labeled data to `to`.
    pub fn declassifier(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.policy.declassifiers.push((from.into(), to.into()));
        self
    }

    /// Sets the implicit-flow handling mode.
    pub fn implicit_flow(mut self, mode: ImplicitFlowMode) -> Self {
        self.policy.implicit_flow = mode;
        self
    }

    /// The finished policy, normalized (labels and declassifier pairs
    /// sorted and deduplicated) so declaration order cannot leak into
    /// store keys or hashes.
    pub fn build(self) -> Policy {
        self.policy.normalized()
    }
}

/// A compiled policy: the label lattice as `u64` bitmasks, ready for
/// the engines. Join is bitwise OR; `a` flows to `b` without
/// declassification iff `a & !b == 0`.
#[derive(Debug, Clone)]
pub struct LabelTable {
    /// Declared label names in atom-bit order (atom `i` ↔ bit `i + 1`).
    atoms: Vec<String>,
    /// Name → mask for declared labels.
    masks: BTreeMap<String, u64>,
    /// ⊤: every atom including the implicit `untrusted` atom (bit 0).
    top: u64,
    /// Allowed declassifications as `(from_mask, to_mask)`.
    declass: Vec<(u64, u64)>,
    /// Report-time implicit-flow handling.
    mode: ImplicitFlowMode,
    /// Declared label mask per shared-memory region id, for labeled
    /// channel endpoints; absent regions default to ⊤ when non-core.
    region_labels: BTreeMap<u32, u64>,
    /// `true` for the two-point default policy (schema v1, byte-
    /// identical legacy reports).
    default_policy: bool,
}

impl Default for LabelTable {
    fn default() -> Self {
        Policy::default().compile(&[], &[]).0
    }
}

impl LabelTable {
    /// ⊤ — the label of unlabeled non-core data.
    pub fn top(&self) -> u64 {
        self.top
    }

    /// Report-time implicit-flow handling.
    pub fn mode(&self) -> ImplicitFlowMode {
        self.mode
    }

    /// `true` iff this is the compiled two-point default policy.
    pub fn is_default(&self) -> bool {
        self.default_policy
    }

    /// Resolves a label name to its mask. `trusted` and `untrusted` are
    /// always known.
    pub fn mask_of(&self, name: &str) -> Option<u64> {
        match name {
            "trusted" => Some(0),
            "untrusted" => Some(self.top),
            other => self.masks.get(other).copied(),
        }
    }

    /// Records the declared label mask of a shared-memory region
    /// (a labeled channel endpoint).
    pub fn set_region_label(&mut self, region: u32, mask: u64) {
        self.region_labels.insert(region, mask);
    }

    /// The source label mask of a region: its declared channel label,
    /// or ⊤ for an unlabeled non-core region, or ⊥ for core regions.
    pub fn region_source_mask(&self, region: u32, noncore: bool) -> u64 {
        if !noncore {
            return 0;
        }
        self.region_labels.get(&region).copied().unwrap_or(self.top)
    }

    /// The declared channel label name of a region, if any.
    pub fn region_label_name(&self, region: u32) -> Option<&str> {
        let mask = *self.region_labels.get(&region)?;
        self.atoms.iter().find(|n| self.masks[n.as_str()] == mask).map(|s| s.as_str())
    }

    /// Whether the policy allows declassifying `from`-labeled data to
    /// `to`: an exact declared pair, or a pair it subsumes (`from ⊑
    /// declared-from` and `declared-to ⊑ to` would be unsound; we require
    /// the exact declared relabeling, keeping the audit surface small).
    pub fn may_declassify(&self, from: u64, to: u64) -> bool {
        self.declass.binary_search(&(from, to)).is_ok()
    }

    /// A human-readable name for a mask: an exact declared label, the
    /// reserved names for ⊥/⊤, or the `+`-join of the atoms it covers.
    pub fn name_of(&self, mask: u64) -> String {
        if mask == 0 {
            return "trusted".to_string();
        }
        if mask == self.top || mask & 1 != 0 {
            return "untrusted".to_string();
        }
        if let Some(name) = self.atoms.iter().find(|n| self.masks[n.as_str()] == mask) {
            return name.clone();
        }
        let parts: Vec<&str> = self
            .atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1u64 << (i + 1)) != 0)
            .map(|(_, n)| n.as_str())
            .collect();
        parts.join("+")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_two_point() {
        let p = Policy::default();
        assert!(p.is_default());
        let (t, notes) = p.compile(&[], &[]);
        assert!(notes.is_empty());
        assert!(t.is_default());
        assert_eq!(t.top(), 1);
        assert_eq!(t.mask_of("trusted"), Some(0));
        assert_eq!(t.mask_of("untrusted"), Some(1));
        assert_eq!(t.region_source_mask(0, true), 1);
        assert_eq!(t.region_source_mask(0, false), 0);
    }

    #[test]
    fn builder_normalizes_declaration_order() {
        let a = Policy::builder()
            .label("sensor_b")
            .label("sensor_a")
            .declassifier("fused", "trusted")
            .declassifier("sensor_a", "trusted")
            .label_above("fused", "sensor_a")
            .build();
        let b = Policy::builder()
            .label_above("fused", "sensor_a")
            .declassifier("sensor_a", "trusted")
            .label("sensor_a")
            .declassifier("fused", "trusted")
            .label("sensor_b")
            .build();
        assert_eq!(a, b);
        assert!(!a.is_default());
    }

    #[test]
    fn declared_order_embeds_into_masks() {
        let p = Policy::builder()
            .label("sensor_a")
            .label("sensor_b")
            .label_above("fused", "sensor_a")
            .build();
        let fused = LabelDecl::above("fused", vec!["sensor_b".into()]);
        let (t, notes) = p.compile(std::slice::from_ref(&fused), &[]);
        assert!(notes.is_empty(), "{notes:?}");
        let a = t.mask_of("sensor_a").unwrap();
        let b = t.mask_of("sensor_b").unwrap();
        let f = t.mask_of("fused").unwrap();
        // fused dominates both sensors (merged declarations)...
        assert_eq!(f & a, a);
        assert_eq!(f & b, b);
        // ...the sensors are incomparable...
        assert_ne!(a & !b, 0);
        assert_ne!(b & !a, 0);
        // ...and everything is strictly below untrusted.
        assert_ne!(t.top() & !f, 0);
        assert_eq!(t.name_of(f), "fused");
        assert_eq!(t.name_of(a | b), "sensor_a+sensor_b");
        assert_eq!(t.name_of(t.top()), "untrusted");
        assert_eq!(t.name_of(0), "trusted");
    }

    #[test]
    fn declassifier_pairs_are_exact() {
        let p = Policy::builder()
            .label("sensor_a")
            .label("sensor_b")
            .declassifier("sensor_a", "trusted")
            .declassifier("untrusted", "sensor_b")
            .build();
        let (t, notes) = p.compile(&[], &[]);
        assert!(notes.is_empty(), "{notes:?}");
        let a = t.mask_of("sensor_a").unwrap();
        let b = t.mask_of("sensor_b").unwrap();
        assert!(t.may_declassify(a, 0));
        assert!(t.may_declassify(t.top(), b));
        assert!(!t.may_declassify(b, 0));
        assert!(!t.may_declassify(a, b));
    }

    #[test]
    fn bad_declarations_become_notes_not_errors() {
        let p = Policy::builder()
            .label("trusted")
            .label_above("x", "nosuch")
            .declassifier("ghost", "trusted")
            .build();
        let (t, notes) = p.compile(&[], &[]);
        assert_eq!(notes.len(), 3, "{notes:?}");
        assert!(t.mask_of("x").is_some());
        assert!(t.mask_of("ghost").is_none());
    }

    #[test]
    fn implicit_flow_mode_parses_cli_spellings() {
        assert_eq!(ImplicitFlowMode::parse("strict"), Some(ImplicitFlowMode::Strict));
        assert_eq!(ImplicitFlowMode::parse("taint-only"), Some(ImplicitFlowMode::TaintOnly));
        assert_eq!(
            ImplicitFlowMode::parse("report-separately"),
            Some(ImplicitFlowMode::ReportSeparately)
        );
        assert_eq!(ImplicitFlowMode::parse("bogus"), None);
        assert_eq!(ImplicitFlowMode::Strict.as_str(), "strict");
        assert!(!Policy::builder().implicit_flow(ImplicitFlowMode::Strict).build().is_default());
    }

    #[test]
    fn encoding_is_order_independent_after_normalization() {
        let a = Policy::builder().label("x").label("y").declassifier("y", "x").build();
        let b = Policy::builder().declassifier("y", "x").label("y").label("x").build();
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        a.encode_into(&mut ea);
        b.encode_into(&mut eb);
        assert_eq!(ea, eb);
        let mut ed = Vec::new();
        Policy::default().encode_into(&mut ed);
        assert_ne!(ea, ed);
    }
}
