//! Sharded cross-process analysis over the shared summary store.
//!
//! `safeflow check --shards N` partitions the call-graph SCC DAG into N
//! shards and runs each in its own worker process (the hidden
//! `shard-worker` subcommand), all sharing one summary-store directory as
//! the interchange. Workers run *concurrently*, with no inter-shard
//! ordering or coordination channel beyond the store itself:
//!
//! * **Ownership** — SCCs are assigned to shards by deterministic greedy
//!   balancing: visit SCCs in descending instruction-weight order (ties to
//!   the lower SCC index), assigning each to the currently lightest shard
//!   (ties to the lower shard index). Every worker recomputes the same
//!   plan from the same program, so no assignment needs to be exchanged.
//! * **Compute closure** — a worker computes its owned SCCs plus their
//!   transitive dependencies. The closure is dependency-closed, so the
//!   bottom-up pass never reads an unpublished hole; overlap between
//!   closures is the price of zero coordination, and streaming bounds it.
//! * **Streaming** — each worker appends clean owned results to its own
//!   append-only segment file (see [`crate::store`]) as they complete, and
//!   polls peers' segments before recomputing a non-owned SCC. Tainted or
//!   degraded results are never published.
//! * **Merge** — the coordinator re-opens the store exclusively (which
//!   absorbs every valid segment record), runs the final — now warm —
//!   analysis in-process, and compacts the segments away on save.
//!
//! Byte-identity with `--shards 1` falls out structurally rather than by
//! protocol care: summaries are pure functions of their content-hash keys,
//! workers only ever *pre-warm* the cache, and the final report is always
//! produced by the same in-process path an unsharded run uses. A worker
//! that crashes, stalls, or writes a torn record costs recomputation, not
//! correctness: the coordinator's final run recomputes whatever the store
//! ended up missing.

use crate::engine::SummaryCache;
use crate::store::{SegmentScanner, SegmentWriter, SummaryStore};
use crate::summary::{summarize_sccs, ShardRestrict, Summary};
use crate::{compile_policy, regions, shmptr, AnalysisConfig, AnalysisError};
use safeflow_ir::{build_module, CallGraph, Module};
use safeflow_points_to::PointsTo;
use safeflow_syntax::VirtualFs;
use safeflow_util::metrics::Metrics;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Deterministic SCC → shard assignment plus one shard's compute closure.
pub(crate) struct ShardPlan {
    /// `owned[i]` — SCC `i` (in [`CallGraph::sccs`] order) is assigned to
    /// this shard; owned clean results are what the worker publishes.
    pub(crate) owned: Vec<bool>,
    /// `closure[i]` — owned, or a transitive dependency of an owned SCC;
    /// the set of SCCs this worker must have summaries for.
    pub(crate) closure: Vec<bool>,
}

/// Builds shard `shard` of `shards`'s plan. See the module docs for the
/// balancing rule; `deps` is [`CallGraph::scc_dependencies`] (every
/// dependency index is smaller than its dependent's, which the closure
/// sweep relies on).
pub(crate) fn plan_shard(
    module: &Module,
    callgraph: &CallGraph,
    deps: &[Vec<usize>],
    shard: usize,
    shards: usize,
) -> ShardPlan {
    let n = callgraph.sccs.len();
    // +1 per function so empty declarations still cost something and no
    // shard collects every weightless SCC.
    let weight = |i: usize| -> u64 {
        callgraph.sccs[i].iter().map(|&f| module.function(f).insts.len() as u64 + 1).sum()
    };
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weight(i)), i));
    let mut load = vec![0u64; shards.max(1)];
    let mut owned = vec![false; n];
    for &i in &order {
        let bin = (0..load.len()).min_by_key(|&b| (load[b], b)).unwrap_or(0);
        load[bin] += weight(i);
        if bin == shard {
            owned[i] = true;
        }
    }
    // Dependencies always have smaller indices, so one descending sweep
    // closes the owned set transitively.
    let mut closure = owned.clone();
    for i in (0..n).rev() {
        if closure[i] {
            for &d in &deps[i] {
                closure[d] = true;
            }
        }
    }
    ShardPlan { owned, closure }
}

/// What one shard worker did, reported on its stdout for the coordinator's
/// `--verbose` diagnostics. Pure bookkeeping: the coordinator's final run
/// is correct regardless of these numbers.
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkerReport {
    /// SCCs in the program's call graph.
    pub sccs: usize,
    /// SCCs assigned to this shard by the balancing plan.
    pub owned: usize,
    /// Clean results this worker appended to its segment file.
    pub published: usize,
    /// Results adopted from peer workers' segments instead of recomputed.
    pub fetched: usize,
    /// Another process held the store's exclusive lock; the worker backed
    /// off without computing or publishing anything.
    pub detached: bool,
}

/// Runs one shard worker end-to-end: parse, plan, summarize the shard's
/// compute closure against the shared store at `store_dir`, streaming
/// clean owned results into a fresh segment file. Never touches the
/// store's main file; the coordinator's exclusive re-open merges segments.
///
/// # Errors
///
/// [`AnalysisError::Parse`] when the input fails to parse or lower, and
/// [`AnalysisError::Store`] when the store directory or this worker's
/// segment file cannot be created or written.
pub fn run_worker(
    config: &AnalysisConfig,
    root: &str,
    fs: &VirtualFs,
    store_dir: &Path,
    shard: usize,
    shards: usize,
) -> Result<WorkerReport, AnalysisError> {
    // An armed fault plan makes results non-reproducible; published
    // summaries would outlive the plan and poison later clean runs. The
    // CLI never spawns workers with one armed — this is defense in depth.
    if config.fault_plan.is_some() {
        return Ok(WorkerReport::default());
    }
    let parsed = safeflow_syntax::parse_program_jobs(root, fs, config.jobs.max(1));
    let mut diags = parsed.diags;
    let sources = parsed.sources;
    if diags.has_errors() {
        return Err(AnalysisError::Parse { diags, sources });
    }
    let module = build_module(&parsed.unit, &mut diags);
    if diags.has_errors() {
        return Err(AnalysisError::Parse { diags, sources });
    }
    let regions = regions::extract_regions(&module, &config.shm_attach_functions, &mut diags);
    if diags.has_errors() {
        return Err(AnalysisError::Parse { diags, sources });
    }
    let (table, _policy_notes) = compile_policy(config, &module, &regions);
    let shm = shmptr::identify_shm_pointers(&module, &regions);
    let pt = PointsTo::analyze(&module);

    let store = SummaryStore::open_shared(store_dir)?;
    if store.lock_busy() {
        return Ok(WorkerReport { detached: true, ..WorkerReport::default() });
    }
    // Keys already persisted before this run: cache hits, never re-published.
    let entries = store.scc_entries();
    let snapshot: HashSet<u64> = entries.iter().map(|(k, _)| *k).collect();
    let cache = SummaryCache::default();
    cache.seed(entries);

    let callgraph = CallGraph::build(&module);
    let deps = callgraph.scc_dependencies();
    let plan = plan_shard(&module, &callgraph, &deps, shard, shards);
    let owned_count = plan.owned.iter().filter(|&&o| o).count();

    let writer = SegmentWriter::create(store_dir)?;
    let own_path = writer.path().to_path_buf();
    let writer = Mutex::new(writer);
    // First write error wins; later publishes become no-ops so the run
    // still finishes (unpublished results just get recomputed elsewhere).
    let publish_err: Mutex<Option<AnalysisError>> = Mutex::new(None);
    let peers = Mutex::new((
        SegmentScanner::new(store_dir, Some(&own_path)),
        HashMap::<u64, Arc<Vec<Summary>>>::new(),
    ));
    let fetched = AtomicUsize::new(0);

    let fetch = |key: u64, _members: usize| -> Option<Arc<Vec<Summary>>> {
        let mut guard = peers.lock().unwrap_or_else(|e| e.into_inner());
        let (scanner, seen) = &mut *guard;
        if !seen.contains_key(&key) {
            for (k, v) in scanner.poll() {
                seen.entry(k).or_insert(v);
            }
        }
        let hit = seen.get(&key).cloned();
        if hit.is_some() {
            fetched.fetch_add(1, Ordering::Relaxed);
        }
        hit
    };
    let publish = |i: usize, key: u64, summaries: &[Summary]| {
        if !plan.owned[i] || snapshot.contains(&key) {
            return;
        }
        let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
        let mut err = publish_err.lock().unwrap_or_else(|e| e.into_inner());
        if err.is_none() {
            if let Err(e) = w.publish(key, summaries) {
                *err = Some(e);
            }
        }
    };
    let restrict = ShardRestrict { closure: &plan.closure, fetch: &fetch, publish: &publish };
    let metrics = Metrics::new();
    let deadline = config
        .budget
        .deadline_ms
        .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
    let _ = summarize_sccs(
        &module,
        &regions,
        &shm,
        &pt,
        config,
        &table,
        &cache,
        deadline,
        &metrics,
        Some(&restrict),
    );

    if let Some(e) = publish_err.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(e);
    }
    let published = writer.into_inner().unwrap_or_else(|e| e.into_inner()).records();
    Ok(WorkerReport {
        sccs: callgraph.sccs.len(),
        owned: owned_count,
        published,
        fetched: fetched.load(Ordering::Relaxed),
        detached: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_module(bodies: &[(&str, &[&str])]) -> Module {
        // Build a real module from synthesized C: each entry is a function
        // calling the listed callees.
        let mut src = String::new();
        for (name, _) in bodies {
            src.push_str(&format!("void {name}(void);\n"));
        }
        for (name, callees) in bodies {
            src.push_str(&format!("void {name}(void) {{\n"));
            for c in *callees {
                src.push_str(&format!("    {c}();\n"));
            }
            src.push_str("}\n");
        }
        let mut fs = VirtualFs::new();
        fs.add("toy.c", src);
        let parsed = safeflow_syntax::parse_program_jobs("toy.c", &fs, 1);
        assert!(!parsed.diags.has_errors());
        let mut diags = parsed.diags;
        let m = build_module(&parsed.unit, &mut diags);
        assert!(!diags.has_errors());
        m
    }

    #[test]
    fn plans_partition_ownership_and_close_dependencies() {
        let module = toy_module(&[
            ("leaf_a", &[]),
            ("leaf_b", &[]),
            ("mid", &["leaf_a"]),
            ("top", &["mid", "leaf_b"]),
        ]);
        let callgraph = CallGraph::build(&module);
        let deps = callgraph.scc_dependencies();
        let n = callgraph.sccs.len();
        let shards = 3;
        let plans: Vec<ShardPlan> =
            (0..shards).map(|s| plan_shard(&module, &callgraph, &deps, s, shards)).collect();
        // Ownership is a partition: every SCC owned by exactly one shard.
        for i in 0..n {
            let owners = plans.iter().filter(|p| p.owned[i]).count();
            assert_eq!(owners, 1, "SCC {i} owned by {owners} shards");
        }
        // Each closure is dependency-closed and contains the owned set.
        for p in &plans {
            for (i, scc_deps) in deps.iter().enumerate().take(n) {
                if p.owned[i] {
                    assert!(p.closure[i]);
                }
                if p.closure[i] {
                    for &d in scc_deps {
                        assert!(p.closure[d], "closure not dependency-closed at {i} -> {d}");
                    }
                }
            }
        }
        // Determinism: re-planning yields the identical assignment.
        for (s, p) in plans.iter().enumerate() {
            let again = plan_shard(&module, &callgraph, &deps, s, shards);
            assert_eq!(p.owned, again.owned);
            assert_eq!(p.closure, again.closure);
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let module = toy_module(&[("a", &[]), ("b", &["a"])]);
        let callgraph = CallGraph::build(&module);
        let deps = callgraph.scc_dependencies();
        let p = plan_shard(&module, &callgraph, &deps, 0, 1);
        assert!(p.owned.iter().all(|&o| o));
        assert!(p.closure.iter().all(|&c| c));
    }
}
