//! Value-flow graph rendering for manual triage.
//!
//! The paper requires that reported errors "are verified using the value
//! flow graphs manually" (§1) and that false positives are "manually
//! identified with the aid of the value flow graphs representing the flow
//! of values from unmonitored non-core values to the critical data" (§4).
//! This module renders those graphs — per error as Graphviz DOT, and a
//! plain-text digest of all flows in a report.

use crate::report::{AnalysisReport, ErrorDependency};
use safeflow_syntax::source::SourceMap;

/// Renders one error's value-flow path as a Graphviz DOT digraph.
///
/// # Examples
///
/// ```
/// use safeflow::{Analyzer, AnalysisConfig};
/// use safeflow::flowgraph::error_to_dot;
///
/// let src = r#"
///     typedef struct { float c; } D;
///     D *nc;
///     void *shmat(int a, void *b, int c);
///     void send(float v);
///     void init(void)
///     /** SafeFlow Annotation shminit */
///     {
///         nc = (D *) shmat(0, 0, 0);
///         /** SafeFlow Annotation
///             assume(shmvar(nc, sizeof(D)))
///             assume(noncore(nc))
///         */
///     }
///     int main() {
///         float out;
///         init();
///         out = nc->c;
///         /** SafeFlow Annotation assert(safe(out)) */
///         send(out);
///         return 0;
///     }
/// "#;
/// let result = Analyzer::new(AnalysisConfig::default())
///     .analyze_source("t.c", src)
///     .unwrap();
/// let dot = error_to_dot(&result.report.errors[0], &result.sources);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("->"));
/// ```
pub fn error_to_dot(error: &ErrorDependency, sources: &SourceMap) -> String {
    let mut out = String::from("digraph valueflow {\n");
    out.push_str("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
    let path = error.flow.as_ref().map(|f| f.path()).unwrap_or_default();
    if path.is_empty() {
        out.push_str(&format!(
            "  sink [label=\"{}\", style=filled, fillcolor=\"#ffdddd\"];\n",
            escape(&format!("critical `{}` in `{}`", error.critical, error.function))
        ));
    }
    for (i, (what, span)) in path.iter().enumerate() {
        let loc = sources.describe(*span);
        let color = if i == 0 {
            ", style=filled, fillcolor=\"#ffeecc\"" // source
        } else if i + 1 == path.len() {
            ", style=filled, fillcolor=\"#ffdddd\"" // sink
        } else {
            ""
        };
        out.push_str(&format!("  n{i} [label=\"{}\\n{}\"{color}];\n", escape(what), escape(&loc)));
        if i > 0 {
            out.push_str(&format!("  n{} -> n{};\n", i - 1, i));
        }
    }
    out.push_str("}\n");
    out
}

/// Plain-text digest of every error's flow in a report, for terminal triage.
pub fn report_flows(report: &AnalysisReport, sources: &SourceMap) -> String {
    let mut out = String::new();
    for (i, e) in report.errors.iter().enumerate() {
        out.push_str(&format!(
            "[{}] critical `{}` in `{}` ({:?})\n",
            i + 1,
            e.critical,
            e.function,
            e.kind
        ));
        match &e.flow {
            Some(flow) => {
                for (what, span) in flow.path() {
                    out.push_str(&format!("      {} [{}]\n", what, sources.describe(span)));
                }
            }
            None => out.push_str("      (no recorded path)\n"),
        }
    }
    out
}

/// Escapes a string for use inside a double-quoted DOT label: backslash,
/// quote, and the common whitespace controls get escape sequences; any
/// other control character would make the output invalid DOT, so it is
/// dropped.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if c.is_control() => {}
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalysisConfig, Analyzer};

    const SRC: &str = r#"
        typedef struct { float c; } D;
        D *nc;
        void *shmat(int a, void *b, int c);
        void send(float v);
        void init(void)
        /** SafeFlow Annotation shminit */
        {
            nc = (D *) shmat(0, 0, 0);
            /** SafeFlow Annotation
                assume(shmvar(nc, sizeof(D)))
                assume(noncore(nc))
            */
        }
        int main() {
            float out;
            init();
            out = nc->c;
            /** SafeFlow Annotation assert(safe(out)) */
            send(out);
            return 0;
        }
    "#;

    #[test]
    fn dot_contains_source_and_sink() {
        let result = Analyzer::new(AnalysisConfig::default()).analyze_source("t.c", SRC).unwrap();
        let dot = error_to_dot(&result.report.errors[0], &result.sources);
        assert!(dot.contains("digraph valueflow"));
        assert!(dot.contains("non-core"), "{dot}");
        assert!(dot.contains("assert(safe(out))"), "{dot}");
        assert!(dot.contains("n0 -> n1"));
    }

    #[test]
    fn report_flows_lists_every_error() {
        let result = Analyzer::new(AnalysisConfig::default()).analyze_source("t.c", SRC).unwrap();
        let text = report_flows(&result.report, &result.sources);
        assert!(text.contains("[1] critical `out`"));
        assert!(text.contains("unmonitored read"));
    }

    /// Counts quote characters that actually delimit strings, honoring
    /// backslash escapes (substring matching double-counts `\\"`, where
    /// the backslash is itself escaped and the quote is a real delimiter).
    fn delimiter_quotes(line: &str) -> usize {
        let mut count = 0;
        let mut escaped = false;
        for c in line.chars() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                count += 1;
            }
        }
        count
    }

    #[test]
    fn dot_escapes_quotes() {
        // Labels contain backtick-quoted names; ensure output stays valid.
        let result = Analyzer::new(AnalysisConfig::default()).analyze_source("t.c", SRC).unwrap();
        let dot = error_to_dot(&result.report.errors[0], &result.sources);
        // No raw unescaped quote inside a label.
        for line in dot.lines() {
            assert!(delimiter_quotes(line).is_multiple_of(2), "unbalanced quotes in {line}");
        }
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\r\nb\tc"), "a\\r\\nb\\tc");
        // Other control characters are dropped, not passed through.
        assert_eq!(escape("a\u{7}b\u{1b}c"), "abc");
        // The original cases still hold.
        assert_eq!(escape(r#"a\"b"#), r#"a\\\"b"#);
    }

    #[test]
    fn quote_counter_is_backslash_aware() {
        // `\\"`: escaped backslash followed by a *real* delimiter quote —
        // naive substring counting sees `\"` here and miscounts.
        assert_eq!(delimiter_quotes(r#"label="a\\""#), 2);
        assert_eq!(delimiter_quotes(r#""a\"b""#), 2);
        assert_eq!(delimiter_quotes(r#""unterminated"#), 1);
    }
}
