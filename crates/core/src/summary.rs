//! Phase 3, summary engine: the ESP-style value-flow-graph optimization the
//! paper proposes in §3.3's final paragraph ("analyzing each function only
//! once and summarizing the data dependencies in the functions using value
//! flow graphs ... a single bottom-up pass on the SCCs in the call graph,
//! inlining the value flow graphs in the callers").
//!
//! Each function gets a **symbolic summary**: the sources (parameters,
//! non-core region reads, memory objects, received messages) that flow into
//! its return value, its `assert(safe(...))` anchors, its critical call
//! arguments, and the memory objects it writes — each flagged as data or
//! control flow. Inlining a callee substitutes argument sources for
//! parameter symbols and drops region symbols monitored by the caller's
//! `assume(core(...))` scope (annotations apply recursively to callees,
//! §3.1). One bottom-up pass over call-graph SCCs; summaries inside an SCC
//! iterate to fixpoint.
//!
//! Must agree with [`crate::taint`] on findings; the integration suite and
//! the `engine_scaling` bench compare them. Value-flow paths reported here
//! are coarser (source → sink only) than the context-sensitive engine's.
//!
//! Label-lattice policies generalize the summaries without changing their
//! shape: region facts carry an optional *relabel* mask recording the
//! label a caller's `assume(declassify(...))` scope lowered them to, and
//! the root evaluation checks leaked masks against per-sink clearances.
//! Under the default two-point policy declassification always lowers to ⊥
//! (the fact is dropped, exactly the historical behavior) and every
//! clearance is ⊥, so summaries and findings are byte-identical.

use crate::config::AnalysisConfig;
use crate::engine::SummaryCache;
use crate::policy::LabelTable;
use crate::regions::{RegionId, RegionMap};
use crate::report::{
    Degradation, DegradationKind, DependencyKind, ErrorDependency, FlowNode, Warning,
};
use crate::shmptr::ShmPointers;
use crate::taint::{TaintResults, TaintVal};
use safeflow_dataflow::{ControlDeps, PostDomTree};
use safeflow_ir::{BlockId, CallGraph, Cfg, FuncId, InstId, InstKind, Module, Terminator, Value};
use safeflow_points_to::{ObjId, PointsTo};
use safeflow_syntax::annot::Annotation;
use safeflow_syntax::span::Span;
use safeflow_util::fault::FaultSite;
use safeflow_util::metrics::{Class, Metrics};
use safeflow_util::pool::{run_dag_isolated_observed, run_map_observed, PoolStats};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A symbolic taint source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Sym {
    /// The function's `i`-th parameter.
    Param(u32),
    /// An unmonitored read of a non-core region (site span packed
    /// alongside in `SymSet`).
    Region(RegionId),
    /// A memory object (resolved module-wide after the bottom-up pass).
    Obj(ObjId),
    /// Data received from a non-core descriptor (§3.4.3).
    Recv,
    /// Conservative top: the value may depend on *any* unsafe source.
    /// Produced only when analysis of a scope degraded (contained panic or
    /// exhausted budget) — always treated as unsafe downstream, so a
    /// degraded callee can add findings but never hide one.
    Unknown,
}

/// A source with its flow kind: `ctl = true` means the influence is via
/// control dependence only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Fact {
    sym: Sym,
    ctl: bool,
    /// The label mask a caller's `assume(declassify(...))` scope lowered a
    /// region source to; `None` keeps the region's declared label. Always
    /// `None` under the default policy, where declassification lowers to ⊥
    /// and drops the fact instead.
    relabel: Option<u64>,
}

type SymSet = BTreeSet<Fact>;

/// Published result of one SCC task: the members' summaries (in SCC member
/// order) plus whether a degraded dependency tainted them (tainted results
/// are never cached).
type SccSlot = OnceLock<(Arc<Vec<Summary>>, bool)>;

fn promote_ctl(set: &SymSet) -> SymSet {
    set.iter().map(|f| Fact { ctl: true, ..*f }).collect()
}

/// A data-flow fact with no relabel — the overwhelmingly common case.
fn data_fact(sym: Sym) -> Fact {
    Fact { sym, ctl: false, relabel: None }
}

/// A recorded sink (assert or critical call argument) with the sources
/// reaching it.
#[derive(Debug, Clone)]
struct Sink {
    critical: String,
    function: String,
    span: Span,
    sources: SymSet,
}

/// Per-function symbolic summary.
#[derive(Debug, Clone, Default)]
pub(crate) struct Summary {
    /// Sources flowing to the return value.
    ret: SymSet,
    /// Unmonitored region reads: `(site span, region, function, relabel)`
    /// — already filtered by this function's own assume scope; `relabel`
    /// carries the declassified-to mask when a scope lowered (but did not
    /// clear) the read's label.
    region_reads: Vec<(Span, RegionId, String, Option<u64>)>,
    /// Sinks observed in this function or inlined from callees.
    sinks: Vec<Sink>,
    /// Sources written into memory objects.
    obj_writes: BTreeMap<ObjId, SymSet>,
}

impl Summary {
    /// Serializes this summary for the persistent store (fixed-width
    /// little-endian fields; see [`crate::store`] for the container
    /// format). `decode` is the exact inverse; both live here because the
    /// summary internals are private to this module.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        use crate::store::{put_str, put_u32, put_u64, put_u8};
        fn put_relabel(out: &mut Vec<u8>, relabel: Option<u64>) {
            match relabel {
                None => put_u8(out, 0),
                Some(m) => {
                    put_u8(out, 1);
                    put_u64(out, m);
                }
            }
        }
        fn put_set(out: &mut Vec<u8>, set: &SymSet) {
            put_u32(out, set.len() as u32);
            for f in set {
                let (tag, payload) = match f.sym {
                    Sym::Param(i) => (0u8, i),
                    Sym::Region(r) => (1, r.0),
                    Sym::Obj(o) => (2, o.0),
                    Sym::Recv => (3, 0),
                    Sym::Unknown => (4, 0),
                };
                put_u8(out, tag);
                put_u32(out, payload);
                put_u8(out, f.ctl as u8);
                put_relabel(out, f.relabel);
            }
        }
        fn put_span(out: &mut Vec<u8>, span: Span) {
            put_u32(out, span.file.0);
            put_u32(out, span.lo);
            put_u32(out, span.hi);
        }
        put_set(out, &self.ret);
        put_u32(out, self.region_reads.len() as u32);
        for (span, region, func, relabel) in &self.region_reads {
            put_span(out, *span);
            put_u32(out, region.0);
            put_str(out, func);
            put_relabel(out, *relabel);
        }
        put_u32(out, self.sinks.len() as u32);
        for sink in &self.sinks {
            put_str(out, &sink.critical);
            put_str(out, &sink.function);
            put_span(out, sink.span);
            put_set(out, &sink.sources);
        }
        put_u32(out, self.obj_writes.len() as u32);
        for (obj, set) in &self.obj_writes {
            put_u32(out, obj.0);
            put_set(out, set);
        }
    }

    /// Deserializes one summary; `None` on any malformed input (the store
    /// reader treats that as a corrupt file and degrades to a cold run).
    pub(crate) fn decode(r: &mut crate::store::ByteReader<'_>) -> Option<Summary> {
        fn get_relabel(r: &mut crate::store::ByteReader<'_>) -> Option<Option<u64>> {
            match r.u8()? {
                0 => Some(None),
                1 => Some(Some(r.u64()?)),
                _ => None,
            }
        }
        fn get_set(r: &mut crate::store::ByteReader<'_>) -> Option<SymSet> {
            let mut set = SymSet::new();
            for _ in 0..r.seq_len()? {
                let tag = r.u8()?;
                let payload = r.u32()?;
                let sym = match tag {
                    0 => Sym::Param(payload),
                    1 => Sym::Region(RegionId(payload)),
                    2 => Sym::Obj(ObjId(payload)),
                    3 => Sym::Recv,
                    4 => Sym::Unknown,
                    _ => return None,
                };
                let ctl = r.u8()? != 0;
                let relabel = get_relabel(r)?;
                set.insert(Fact { sym, ctl, relabel });
            }
            Some(set)
        }
        fn get_span(r: &mut crate::store::ByteReader<'_>) -> Option<Span> {
            let file = safeflow_syntax::span::FileId(r.u32()?);
            let (lo, hi) = (r.u32()?, r.u32()?);
            if lo > hi {
                return None;
            }
            Some(Span { file, lo, hi })
        }
        let ret = get_set(r)?;
        let mut region_reads = Vec::new();
        for _ in 0..r.seq_len()? {
            let span = get_span(r)?;
            let region = RegionId(r.u32()?);
            let func = r.str()?;
            let relabel = get_relabel(r)?;
            region_reads.push((span, region, func, relabel));
        }
        let mut sinks = Vec::new();
        for _ in 0..r.seq_len()? {
            let critical = r.str()?;
            let function = r.str()?;
            let span = get_span(r)?;
            let sources = get_set(r)?;
            sinks.push(Sink { critical, function, span, sources });
        }
        let mut obj_writes = BTreeMap::new();
        for _ in 0..r.seq_len()? {
            let obj = ObjId(r.u32()?);
            let set = get_set(r)?;
            obj_writes.insert(obj, set);
        }
        Some(Summary { ret, region_reads, sinks, obj_writes })
    }

    /// The conservative top summary substituted for a function whose
    /// analysis degraded: its return value depends on an unknown unsafe
    /// source. Its side effects (region reads, sinks, object writes) are
    /// recovered separately by the degraded-scope sweep, which scans the
    /// raw IR instead of trusting a summary that was never computed.
    fn top() -> Summary {
        Summary { ret: std::iter::once(data_fact(Sym::Unknown)).collect(), ..Summary::default() }
    }
}

/// Runs the summary engine; produces the same result shape as the
/// context-sensitive engine.
///
/// Independent call-graph SCCs are summarized concurrently on
/// `config.jobs` worker threads, and each SCC's summaries are served from
/// `cache` when its content hash matches a prior run (see
/// [`crate::engine`]). Results are bit-identical for every `jobs` value
/// and for warm vs cold caches.
///
/// A panic inside one SCC's task (or an exhausted budget) degrades that
/// SCC — and only it — to conservative top: independent SCCs complete,
/// callers analyze against an unknown callee, the degraded scope's own
/// sites are re-collected conservatively from its IR, and the report
/// carries a [`Degradation`] naming the affected functions. Degraded
/// summaries are never written to the cache.
#[allow(clippy::too_many_arguments)]
pub(crate) fn analyze_summaries(
    module: &Module,
    regions: &RegionMap,
    shm: &ShmPointers,
    pt: &PointsTo,
    config: &AnalysisConfig,
    table: &LabelTable,
    cache: &SummaryCache,
    deadline: Option<Instant>,
    metrics: &Metrics,
) -> TaintResults {
    let outcome =
        summarize_sccs(module, regions, shm, pt, config, table, cache, deadline, metrics, None);
    build_report(module, regions, shm, pt, config, table, outcome)
}

/// Restricts a [`summarize_sccs`] run to one shard's compute closure
/// (see [`crate::shard`]). SCCs outside the closure are skipped outright —
/// no slot published, no degradation recorded — which is sound because a
/// shard's closure is dependency-closed: every dependency of an in-closure
/// SCC is itself in the closure, so no computed SCC ever reads a hole.
pub(crate) struct ShardRestrict<'a> {
    /// `closure[i]` — whether SCC `i` (in [`CallGraph::sccs`] order) is in
    /// this shard's compute set (owned SCCs plus their transitive
    /// dependencies).
    pub(crate) closure: &'a [bool],
    /// Late cache fill from peer workers: `fetch(hash, members)` returns a
    /// summary vector a peer published to the shared store since this run
    /// began, or `None` to compute locally. Results are pure functions of
    /// the content hash, so a fetch hit is interchangeable with a local
    /// recomputation.
    pub(crate) fetch: &'a (dyn Fn(u64, usize) -> Option<Arc<Vec<Summary>>> + Sync),
    /// Streamed export: `publish(scc_index, hash, summaries)` fires as
    /// soon as a clean result is computed locally (never for cache hits,
    /// fetch hits, or tainted/degraded results). Workers append their
    /// owned results to a segment file here so peers can fetch them
    /// mid-run.
    pub(crate) publish: &'a (dyn Fn(usize, u64, &[Summary]) + Sync),
}

/// The engine half of a summary run: everything [`build_report`] (and a
/// shard worker's export pass) needs from the bottom-up SCC traversal.
pub(crate) struct SummarizeOutcome {
    pub(crate) callgraph: CallGraph,
    pub(crate) notes: Vec<String>,
    pub(crate) assumed_of: HashMap<FuncId, BTreeMap<RegionId, u64>>,
    /// Per-SCC result: the members' summaries plus the tainted flag.
    /// `None` means the task panicked (readers substitute [`Summary::top`])
    /// or, under a [`ShardRestrict`], the SCC was outside the closure.
    pub(crate) results: Vec<Option<(Arc<Vec<Summary>>, bool)>>,
    pub(crate) degradations: Vec<Degradation>,
    pub(crate) degraded_sccs: Vec<usize>,
}

/// Bottom-up summarization over call-graph SCCs — the engine half of
/// [`analyze_summaries`], also run standalone by shard workers (which
/// export the resulting summaries instead of building a report).
#[allow(clippy::too_many_arguments)]
pub(crate) fn summarize_sccs(
    module: &Module,
    regions: &RegionMap,
    shm: &ShmPointers,
    pt: &PointsTo,
    config: &AnalysisConfig,
    table: &LabelTable,
    cache: &SummaryCache,
    deadline: Option<Instant>,
    metrics: &Metrics,
    restrict: Option<&ShardRestrict<'_>>,
) -> SummarizeOutcome {
    let callgraph = CallGraph::build(module);
    let noncore_sockets = find_noncore_sockets(module, regions);
    let mut notes = Vec::new();

    // Assume scopes first, sequentially in definition order: they feed the
    // report's init-check notes on *every* run (cache-warm included) and
    // are part of each function's cache key.
    let mut assumed_of: HashMap<FuncId, BTreeMap<RegionId, u64>> = HashMap::new();
    for fid in module.definitions() {
        let func = module.function(fid);
        if func.is_shminit() || func.blocks.is_empty() {
            continue;
        }
        assumed_of.insert(fid, own_declass(module, regions, shm, table, fid, &mut notes));
    }

    // Content hashes chained bottom-up over the SCC DAG, then one cache
    // probe per SCC (counters tally per member function).
    let deps = callgraph.scc_dependencies();
    let hashes = crate::engine::scc_hashes(
        module,
        regions,
        shm,
        pt,
        config,
        &noncore_sockets,
        &callgraph,
        &deps,
        &assumed_of,
        metrics,
    );
    cache.set_live(&hashes);
    let cached: Vec<Option<Arc<Vec<Summary>>>> =
        callgraph.sccs.iter().enumerate().map(|(i, scc)| cache.get(hashes[i], scc.len())).collect();
    // Per-run cache effectiveness: probes are a pure function of the
    // program (counter class); how they split into hits and misses moves
    // with cache state (work class).
    let (mut run_hits, mut run_misses) = (0u64, 0u64);
    for (i, c) in cached.iter().enumerate() {
        let members = callgraph.sccs[i].len() as u64;
        match c {
            Some(_) => run_hits += members,
            None => run_misses += members,
        }
    }
    metrics.add(Class::Counter, "summary.cache_probes", run_hits + run_misses);
    metrics.add(Class::Counter, "summary.sccs", callgraph.sccs.len() as u64);
    metrics.add_many(
        Class::Work,
        &[("summary.cache_hits", run_hits), ("summary.cache_misses", run_misses)],
    );

    let jobs = config.jobs.max(1);
    let pool_stats = PoolStats::default();

    // Per-function graphs are loop-invariant; build them concurrently, and
    // only for functions whose SCC actually needs recomputation — on a
    // fully warm cache this builds nothing.
    let need: Vec<FuncId> = callgraph
        .sccs
        .iter()
        .enumerate()
        .filter(|(i, _)| cached[*i].is_none())
        .flat_map(|(_, scc)| scc.iter().copied())
        .filter(|&fid| {
            let func = module.function(fid);
            func.is_definition && !func.is_shminit() && !func.blocks.is_empty()
        })
        .collect();
    let built = run_map_observed(jobs, need.len(), &pool_stats, |i| {
        build_fn_graphs(module, &assumed_of, need[i])
    });
    let graphs: HashMap<FuncId, FnGraphs> = need.iter().copied().zip(built).collect();

    // Bottom-up over SCCs on the dependency-DAG pool; independent SCCs run
    // concurrently, each publishing its members' summaries (in member
    // order) into a slot its dependents read. Iteration to fixpoint stays
    // *inside* an SCC's task, so the result per SCC is schedule-invariant.
    //
    // Each slot carries a `tainted` flag: `true` means the summaries were
    // influenced by a degraded scope (its own budget ran out, or a
    // dependency was degraded) and must not be cached — the content hash
    // cannot tell a clean result from a degraded one. A slot left *unset*
    // means the task panicked (contained by `run_dag_isolated`); readers
    // substitute [`Summary::top`].
    let slots: Vec<SccSlot> = (0..callgraph.sccs.len()).map(|_| OnceLock::new()).collect();
    let publish_top = |i: usize| {
        let tops = Arc::new(vec![Summary::top(); callgraph.sccs[i].len()]);
        let _ = slots[i].set((tops, true));
    };
    let rounds_cap = config.budget.fixpoint_rounds.map(|r| r.max(1) as usize).unwrap_or(16);
    let scc_body = |i: usize| -> Option<String> {
        let scc = &callgraph.sccs[i];
        // Sharded runs skip SCCs outside this worker's compute closure:
        // nothing is published and nothing downstream reads the hole (the
        // closure is dependency-closed, see [`ShardRestrict`]).
        if let Some(r) = restrict {
            if !r.closure[i] {
                return None;
            }
        }
        // Injected faults: a panic is contained by the pool (slot stays
        // unset); a budget fault degrades the SCC like a real exhaustion.
        if let Some(plan) = &config.fault_plan {
            if plan.trip(FaultSite::SccAnalysis, i as u64) {
                publish_top(i);
                return Some("injected budget exhaustion".to_string());
            }
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                publish_top(i);
                return Some("wall-clock deadline exceeded before SCC analysis".to_string());
            }
        }
        if let Some(cap) = config.budget.max_function_insts {
            if let Some(&big) = scc.iter().find(|&&f| module.function(f).insts.len() > cap) {
                publish_top(i);
                return Some(format!(
                    "function `{}` exceeds the {cap}-instruction budget ({} instructions)",
                    module.function(big).name,
                    module.function(big).insts.len()
                ));
            }
        }
        // A degraded dependency poisons this SCC's result too: recompute
        // against the tops (never replay the cache — the cached value was
        // computed against clean callees and would make warm degraded runs
        // differ from cold ones) and keep the result out of the cache.
        let dep_tainted = deps[i].iter().any(|&d| slots[d].get().map(|(_, t)| *t).unwrap_or(true));
        if !dep_tainted {
            if let Some(hit) = &cached[i] {
                let _ = slots[i].set((hit.clone(), false));
                return None;
            }
            // Sharded runs poll the shared store's segments for a result a
            // peer worker published since this run began. A fetch hit is a
            // late cache hit: clean by construction, because workers never
            // publish tainted or degraded summaries.
            if let Some(r) = restrict {
                if let Some(arc) = (r.fetch)(hashes[i], scc.len()) {
                    if arc.len() == scc.len() {
                        cache.insert(hashes[i], arc.clone());
                        let _ = slots[i].set((arc, false));
                        return None;
                    }
                }
            }
        }
        let mut local: HashMap<FuncId, Summary> = HashMap::new();
        let mut local_graphs: HashMap<FuncId, FnGraphs> = HashMap::new();
        let mut changed = true;
        let mut rounds = 0;
        let mut summarize_calls = 0u64;
        let mut inner_converged = true;
        while changed && rounds < rounds_cap {
            changed = false;
            rounds += 1;
            inner_converged = true;
            for &fid in scc {
                let func = module.function(fid);
                if func.is_shminit() || !func.is_definition || func.blocks.is_empty() {
                    local.entry(fid).or_default();
                    continue;
                }
                // `graphs` covers cache-miss SCCs; a cache-hit SCC forced
                // to recompute by a tainted dependency builds its graphs
                // here (deterministic either way).
                let g = match graphs.get(&fid) {
                    Some(g) => g,
                    None => local_graphs
                        .entry(fid)
                        .or_insert_with(|| build_fn_graphs(module, &assumed_of, fid)),
                };
                let view =
                    SummaryView { callgraph: &callgraph, slots: &slots, local: &local, own_scc: i };
                let (s, converged) = summarize_function(
                    module,
                    regions,
                    shm,
                    pt,
                    config,
                    table,
                    &noncore_sockets,
                    &view,
                    fid,
                    g,
                    rounds_cap,
                );
                summarize_calls += 1;
                inner_converged &= converged;
                let prev = local.get(&fid);
                if prev.map(|p| !summary_eq(p, &s)).unwrap_or(true) {
                    local.insert(fid, s);
                    changed = true;
                }
            }
        }
        metrics.add_many(
            Class::Work,
            &[
                ("summary.fixpoint_rounds", rounds as u64),
                ("summary.summarize_calls", summarize_calls),
            ],
        );
        // Non-convergence only degrades under an *explicit* cap: the
        // built-in bound of 16 keeps its historical silent behavior.
        if config.budget.fixpoint_rounds.is_some() && (changed || !inner_converged) {
            publish_top(i);
            return Some(format!("summary fixpoint did not converge within {rounds_cap} round(s)"));
        }
        let computed: Vec<Summary> =
            scc.iter().map(|fid| local.remove(fid).unwrap_or_default()).collect();
        let arc = Arc::new(computed);
        let mut cache_ok = !dep_tainted;
        if let Some(plan) = &config.fault_plan {
            // Injected cache fault: a panic here leaves the slot unset
            // (poisoning the SCC); a budget fault just bypasses the insert.
            if plan.trip(FaultSite::SummaryCache, i as u64) {
                cache_ok = false;
            }
        }
        if cache_ok {
            cache.insert(hashes[i], arc.clone());
            // Stream the clean result to the shared store so concurrent
            // shard workers can fetch it instead of recomputing.
            if let Some(r) = restrict {
                (r.publish)(i, hashes[i], &arc);
            }
        }
        let _ = slots[i].set((arc, dep_tainted));
        None
    };
    let task_results = run_dag_isolated_observed(jobs, &deps, &pool_stats, |i| {
        let t0 = Instant::now();
        let out = scc_body(i);
        metrics.observe("summary.scc_ns", t0.elapsed().as_nanos() as u64);
        out
    });
    metrics.add_many(
        Class::Sched,
        &[
            ("pool.summary.tasks", pool_stats.tasks.load(Ordering::Relaxed)),
            ("pool.summary.steals", pool_stats.steals.load(Ordering::Relaxed)),
            ("pool.summary.max_queue_depth", pool_stats.max_queue_depth.load(Ordering::Relaxed)),
        ],
    );
    metrics.record_ns("pool.summary.busy_ns", pool_stats.busy_ns.load(Ordering::Relaxed));

    // Degradation records: one per SCC that panicked (contained) or ran
    // out of budget. These SCCs also get the conservative re-collection
    // sweep below.
    let mut degradations: Vec<Degradation> = Vec::new();
    let mut degraded_sccs: Vec<usize> = Vec::new();
    let member_names = |i: usize| -> Vec<String> {
        callgraph.sccs[i].iter().map(|&f| module.function(f).name.clone()).collect()
    };
    for (i, r) in task_results.iter().enumerate() {
        match r {
            Err(p) => {
                degraded_sccs.push(i);
                degradations.push(Degradation {
                    kind: DegradationKind::InternalError,
                    functions: member_names(i),
                    detail: format!("summary analysis panicked: {}", p.message),
                });
            }
            Ok(Some(detail)) => {
                degraded_sccs.push(i);
                degradations.push(Degradation {
                    kind: DegradationKind::BudgetExhausted,
                    functions: member_names(i),
                    detail: detail.clone(),
                });
            }
            Ok(None) => {}
        }
    }

    SummarizeOutcome {
        callgraph,
        notes,
        assumed_of,
        results: slots.into_iter().map(OnceLock::into_inner).collect(),
        degradations,
        degraded_sccs,
    }
}

/// The report half of [`analyze_summaries`]: module-wide object taint,
/// root evaluation, the conservative degraded-scope sweep, and assembly of
/// [`TaintResults`] from a [`SummarizeOutcome`].
fn build_report(
    module: &Module,
    regions: &RegionMap,
    shm: &ShmPointers,
    pt: &PointsTo,
    config: &AnalysisConfig,
    table: &LabelTable,
    outcome: SummarizeOutcome,
) -> TaintResults {
    let SummarizeOutcome {
        callgraph,
        mut notes,
        assumed_of,
        results,
        degradations,
        degraded_sccs,
        ..
    } = outcome;

    let mut summaries: HashMap<FuncId, Summary> = HashMap::new();
    for (i, scc) in callgraph.sccs.iter().enumerate() {
        match &results[i] {
            Some((arc, _)) => {
                for (k, &fid) in scc.iter().enumerate() {
                    summaries.insert(fid, arc[k].clone());
                }
            }
            // Panicked task: conservative top for every member.
            None => {
                for &fid in scc {
                    summaries.insert(fid, Summary::top());
                }
            }
        }
    }

    // Module-wide object taint: fixpoint over aggregated object writes.
    // An object is unsafe if a non-parameter unsafe source flows into it
    // anywhere (roots have clean parameters).
    let mut obj_writes: BTreeMap<ObjId, SymSet> = BTreeMap::new();
    for s in summaries.values() {
        for (o, set) in &s.obj_writes {
            obj_writes.entry(*o).or_default().extend(set.iter().copied());
        }
    }
    // Degraded members have top summaries with *no* obj_writes — their
    // actual stores vanished with the panicked/over-budget analysis. Scan
    // their raw IR and mark every store target (and configured receive
    // buffer) as written with Unknown, so objects they may have tainted
    // stay unsafe for every other reader.
    let degraded_fns: BTreeSet<FuncId> = degraded_sccs
        .iter()
        .flat_map(|&i| callgraph.sccs[i].iter().copied())
        .filter(|&fid| {
            let f = module.function(fid);
            f.is_definition && !f.is_shminit() && !f.blocks.is_empty()
        })
        .collect();
    for &fid in &degraded_fns {
        for (_, inst) in module.function(fid).iter_insts() {
            let targets: Vec<&Value> = match &inst.kind {
                InstKind::Store { ptr, .. } => vec![ptr],
                InstKind::Call { callee, args } => match module.external_callee_name(callee) {
                    Some(name) => config
                        .recv_functions
                        .iter()
                        .filter(|spec| spec.name == *name)
                        .filter_map(|spec| args.get(spec.buf_arg))
                        .collect(),
                    None => Vec::new(),
                },
                _ => Vec::new(),
            };
            for ptr in targets {
                for o in pt.points_to(fid, ptr) {
                    obj_writes.entry(o).or_default().insert(data_fact(Sym::Unknown));
                }
            }
        }
    }
    // Per-source label evaluation shared between the object fixpoint and
    // the sink checks below: a fact's value is its (possibly declassified)
    // label mask as explicit taint, demoted to implicit when the flow is
    // control-only. Under the default policy every surviving source reads
    // as the two-point ⊤, reproducing the historical unsafe/ctl-only pair.
    let declared_mask =
        |r: RegionId| -> u64 { table.region_source_mask(r.0, regions.region(r).noncore) };
    let source_val = |f: &Fact, objs: &BTreeMap<ObjId, TaintVal>| -> TaintVal {
        let v = match f.sym {
            Sym::Region(r) => TaintVal::explicit_at(f.relabel.unwrap_or_else(|| declared_mask(r))),
            Sym::Recv | Sym::Unknown => TaintVal::explicit_at(table.top()),
            Sym::Obj(src) => objs.get(&src).copied().unwrap_or_default(),
            Sym::Param(_) => TaintVal::bot(),
        };
        if f.ctl {
            v.as_implicit()
        } else {
            v
        }
    };
    let mut unsafe_objs: BTreeMap<ObjId, TaintVal> = BTreeMap::new();
    let mut changed = true;
    let mut guard = 0;
    while changed && guard < 64 {
        changed = false;
        guard += 1;
        for (o, set) in &obj_writes {
            let mut v = unsafe_objs.get(o).copied().unwrap_or_default();
            for f in set {
                v = v.join(source_val(f, &unsafe_objs));
            }
            if v.is_bot() {
                continue;
            }
            if unsafe_objs.get(o).copied().unwrap_or_default() != v {
                unsafe_objs.insert(*o, v);
                changed = true;
            }
        }
    }

    // Per-sink clearance masks: flows at or below a critical call's
    // declared clearance label are permitted to reach it. Assert anchors
    // always have clearance ⊥ (their key is the asserted variable name,
    // never present in this map).
    let clearance_of: BTreeMap<String, u64> = config
        .implicit_critical_calls
        .iter()
        .map(|c| {
            let mask = c.clearance.as_deref().and_then(|n| table.mask_of(n)).unwrap_or(0);
            (format!("{}:arg{}", c.name, c.arg), mask)
        })
        .collect();

    // Evaluate sinks and collect warnings at *roots* only: the entry point
    // plus every defined function not reachable from it. Sites inside
    // helpers reached exclusively through monitors were filtered out while
    // inlining, exactly like the context-sensitive engine's contexts.
    let mut roots: BTreeSet<FuncId> = BTreeSet::new();
    let reachable = module
        .function_by_name(&config.entry)
        .filter(|e| module.function(*e).is_definition)
        .map(|e| {
            roots.insert(e);
            callgraph.reachable_from(e)
        })
        .unwrap_or_default();
    for fid in module.definitions() {
        if !reachable.contains(&fid) && !module.function(fid).is_shminit() {
            roots.insert(fid);
        }
    }

    let mut warnings: BTreeMap<(String, u32, u32, RegionId), Warning> = BTreeMap::new();
    let mut errors: BTreeMap<(String, u32, u32, String), ErrorDependency> = BTreeMap::new();
    for fid in roots {
        let func = module.function(fid);
        if func.is_shminit() {
            continue;
        }
        let Some(s) = summaries.get(&fid) else { continue };
        // Warnings: only count from "root" summaries (the function itself);
        // inlined callee reads are attributed to the callee's own summary,
        // so iterate every function rather than only entry roots.
        for (span, rid, in_func, relabel) in &s.region_reads {
            let effective = relabel.unwrap_or_else(|| declared_mask(*rid));
            if effective == 0 {
                continue;
            }
            let region_name = regions.region(*rid).name.clone();
            warnings.entry((in_func.clone(), span.lo, span.hi, *rid)).or_insert_with(|| Warning {
                function: in_func.clone(),
                region: *rid,
                region_name,
                span: *span,
                label: finding_label(table, effective),
            });
        }
        for sink in &s.sinks {
            // Parameters of roots are clean; other sources decide.
            let clear = clearance_of.get(&sink.critical).copied().unwrap_or(0);
            let mut worst: Option<(bool, Option<RegionId>, u64)> = None; // (ctl_only, region, leak)
            for f in &sink.sources {
                let v = source_val(f, &unsafe_objs);
                let leak = TaintVal::new(v.explicit() & !clear, v.implicit() & !clear);
                if leak.is_bot() {
                    continue;
                }
                let ctl_only = leak.explicit() == 0;
                let reg = match f.sym {
                    Sym::Region(r) => Some(r),
                    _ => None,
                };
                let mask = leak.explicit() | leak.implicit();
                worst = Some(match worst {
                    None => (ctl_only, reg, mask),
                    Some((prev_ctl, prev_reg, prev_mask)) => {
                        if prev_ctl && !ctl_only {
                            (false, reg, mask)
                        } else {
                            (prev_ctl, prev_reg, prev_mask)
                        }
                    }
                });
            }
            if let Some((ctl_only, reg, leak_mask)) = worst {
                let key =
                    (sink.function.clone(), sink.span.lo, sink.span.hi, sink.critical.clone());
                let source_desc = match reg {
                    Some(r) => {
                        let name = &regions.region(r).name;
                        if table.is_default() {
                            format!("unmonitored read of non-core region `{name}`")
                        } else {
                            format!(
                                "read of non-core region `{name}` (label `{}`)",
                                table.name_of(declared_mask(r))
                            )
                        }
                    }
                    None => "unmonitored non-core input".to_string(),
                };
                let e = ErrorDependency {
                    critical: sink.critical.clone(),
                    function: sink.function.clone(),
                    span: sink.span,
                    kind: if ctl_only { DependencyKind::ControlOnly } else { DependencyKind::Data },
                    label: finding_label(table, leak_mask),
                    flow: Some(FlowNode::step(
                        format!("reaches critical `{}`", sink.critical),
                        sink.span,
                        FlowNode::source(source_desc, sink.span),
                    )),
                };
                match errors.get_mut(&key) {
                    Some(prev) => {
                        if e.kind > prev.kind {
                            *prev = e;
                        }
                    }
                    None => {
                        errors.insert(key, e);
                    }
                }
            }
        }
    }

    // Conservative sweep over degraded scopes: findings inlined *through*
    // a degraded function vanished with its summary (sinks and reads flow
    // to roots only by bottom-up inlining). Re-collect them directly from
    // the IR of every function reachable from a degraded member —
    // unfiltered by caller assume scopes and with every sink treated as
    // reached by unsafe data. Strictly a superset of what a clean run
    // reports for those scopes: degraded runs add findings, never lose
    // them.
    let mut swept: BTreeSet<FuncId> = BTreeSet::new();
    for &fid in &degraded_fns {
        swept.extend(callgraph.reachable_from(fid));
    }
    for fid in swept {
        let func = module.function(fid);
        if !func.is_definition || func.is_shminit() || func.blocks.is_empty() {
            continue;
        }
        let assumed = assumed_of.get(&fid).cloned().unwrap_or_default();
        let local_assumed_params: BTreeSet<u32> = func
            .annotations
            .iter()
            .filter_map(|a| match a {
                Annotation::AssumeCore { ptr, .. } | Annotation::AssumeDeclassify { ptr, .. } => {
                    func.params.iter().position(|p| p.name == *ptr).map(|i| i as u32)
                }
                _ => None,
            })
            .collect();
        for (_, inst) in func.iter_insts() {
            match &inst.kind {
                InstKind::Load { ptr } => {
                    if derives_from_assumed_param(func, ptr, &local_assumed_params, 0) {
                        continue;
                    }
                    for fact in shm.regions_of(fid, ptr) {
                        let region = regions.region(fact.region);
                        let declared = table.region_source_mask(fact.region.0, region.noncore);
                        let effective =
                            assumed.get(&fact.region).map(|&m| declared & m).unwrap_or(declared);
                        if effective == 0 {
                            continue;
                        }
                        warnings
                            .entry((func.name.clone(), inst.span.lo, inst.span.hi, fact.region))
                            .or_insert_with(|| Warning {
                                function: func.name.clone(),
                                region: fact.region,
                                region_name: region.name.clone(),
                                span: inst.span,
                                label: finding_label(table, effective),
                            });
                    }
                }
                InstKind::AssertSafe { var, .. } => {
                    push_conservative_error(
                        &mut errors,
                        var.clone(),
                        func,
                        inst.span,
                        finding_label(table, table.top()),
                    );
                }
                InstKind::Call { callee, args } => {
                    if let Some(name) = module.external_callee_name(callee) {
                        for call in &config.implicit_critical_calls {
                            let (cname, argi) = (&call.name, &call.arg);
                            if cname == name && args.get(*argi).is_some() {
                                // Even conservative top is no leak when the
                                // sink's clearance covers the whole lattice.
                                let clear = clearance_of
                                    .get(&format!("{cname}:arg{argi}"))
                                    .copied()
                                    .unwrap_or(0);
                                let leak = table.top() & !clear;
                                if leak == 0 {
                                    continue;
                                }
                                push_conservative_error(
                                    &mut errors,
                                    format!("{name}:arg{argi}"),
                                    func,
                                    inst.span,
                                    finding_label(table, leak),
                                );
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    notes.sort();
    notes.dedup();
    TaintResults {
        warnings: warnings.into_values().collect(),
        errors: errors.into_values().collect(),
        notes,
        contexts_analyzed: summaries.len(),
        degradations,
    }
}

/// Records a worst-case (`Data`) error for a sink inside a degraded scope:
/// the analysis that would have decided whether unsafe data reaches it is
/// gone, so it is reported as reached — loud, never a silent pass.
fn push_conservative_error(
    errors: &mut BTreeMap<(String, u32, u32, String), ErrorDependency>,
    critical: String,
    func: &safeflow_ir::Function,
    span: Span,
    label: Option<String>,
) {
    let key = (func.name.clone(), span.lo, span.hi, critical.clone());
    let e = ErrorDependency {
        critical,
        function: func.name.clone(),
        span,
        kind: DependencyKind::Data,
        label,
        flow: Some(FlowNode::source(
            format!("analysis of `{}` (or a function it reaches) degraded; conservatively assumed unsafe", func.name),
            span,
        )),
    };
    match errors.get_mut(&key) {
        Some(prev) => {
            if e.kind > prev.kind {
                *prev = e;
            }
        }
        None => {
            errors.insert(key, e);
        }
    }
}

fn summary_eq(a: &Summary, b: &Summary) -> bool {
    a.ret == b.ret
        && a.region_reads == b.region_reads
        && a.obj_writes == b.obj_writes
        && a.sinks.len() == b.sinks.len()
        && a.sinks
            .iter()
            .zip(b.sinks.iter())
            .all(|(x, y)| x.sources == y.sources && x.critical == y.critical && x.span == y.span)
}

fn find_noncore_sockets(module: &Module, regions: &RegionMap) -> BTreeSet<safeflow_ir::GlobalId> {
    let mut out = BTreeSet::new();
    for fid in module.definitions() {
        for ann in &module.function(fid).annotations {
            if let Annotation::Noncore { target, .. } = ann {
                if let Some(g) = module.global_by_name(target) {
                    if regions.by_global(g).is_none() {
                        out.insert(g);
                    }
                }
            }
        }
    }
    out
}

/// Label attached to report findings: `None` under the default two-point
/// policy (keeps the v1 report byte-identical), the mask's joined label
/// name otherwise.
fn finding_label(table: &LabelTable, mask: u64) -> Option<String> {
    if table.is_default() {
        None
    } else {
        Some(table.name_of(mask))
    }
}

/// The declassification scope a function's own `assume(core(...))` and
/// `assume(declassify(...))` annotations establish: region → the mask its
/// reads carry inside this scope (`0` = fully monitored). Multiple
/// annotations on one region meet (`&`) — monitoring only ever narrows.
/// Must stay in lock-step with `Engine::base_ctx` in [`crate::taint`]:
/// note strings and licensing checks feed both engines' reports.
fn own_declass(
    module: &Module,
    regions: &RegionMap,
    shm: &ShmPointers,
    table: &LabelTable,
    fid: FuncId,
    notes: &mut Vec<String>,
) -> BTreeMap<RegionId, u64> {
    let mut declass = BTreeMap::new();
    let func = module.function(fid);
    for ann in &func.annotations {
        let (fact, ptr, offset, size, to) = match ann {
            Annotation::AssumeCore { ptr, offset, size, .. } => ("core", ptr, offset, size, None),
            Annotation::AssumeDeclassify { ptr, offset, size, to, .. } => {
                ("declassify", ptr, offset, size, Some(to.as_str()))
            }
            _ => continue,
        };
        let mut rids: BTreeSet<RegionId> = BTreeSet::new();
        if let Some(g) = module.global_by_name(ptr) {
            if let Some(r) = regions.by_global(g) {
                rids.insert(r);
            } else {
                rids.extend(shm.global_regions(g).into_iter().map(|p| p.region));
            }
        } else if let Some(i) = func.params.iter().position(|p| p.name == *ptr) {
            rids.extend(shm.regions_of(fid, &Value::Param(i as u32)).into_iter().map(|p| p.region));
        }
        if rids.is_empty() {
            notes.push(format!(
                "assume({fact}({ptr}, ...)) in `{}` names no known shared-memory pointer; ignored",
                func.name
            ));
            continue;
        }
        let to_mask = match to {
            None => 0,
            Some(name) => match table.mask_of(name) {
                Some(m) => m,
                None => {
                    notes.push(format!(
                        "assume(declassify({ptr}, ..., {name})) in `{}` names unknown label `{name}`; ignored",
                        func.name
                    ));
                    continue;
                }
            },
        };
        let off = crate::regions::eval_ann_expr(module, offset);
        let sz = crate::regions::eval_ann_expr(module, size);
        for rid in rids {
            let region = regions.region(rid);
            match (off, sz) {
                (Some(0), Some(s)) if s as u64 == region.size => {
                    let from = table.region_source_mask(rid.0, region.noncore);
                    let licensed = region.label.is_none() && to_mask == 0
                        || table.may_declassify(from, to_mask);
                    if !licensed {
                        notes.push(format!(
                            "assume({fact}({ptr}, ...)) in `{}`: policy has no declassifier({}, {}); annotation is ineffective",
                            func.name,
                            table.name_of(from),
                            table.name_of(to_mask)
                        ));
                        continue;
                    }
                    let e = declass.entry(rid).or_insert(to_mask);
                    *e &= to_mask;
                }
                _ => notes.push(format!(
                    "assume({fact}({ptr}, ...)) in `{}` does not span the whole region `{}` ({} bytes); annotation is ineffective",
                    func.name, region.name, region.size
                )),
            }
        }
    }
    declass
}

/// Loop-invariant per-function inputs to summarization.
struct FnGraphs {
    cfg: Cfg,
    cd: ControlDeps,
    assumed: BTreeMap<RegionId, u64>,
}

fn build_fn_graphs(
    module: &Module,
    assumed_of: &HashMap<FuncId, BTreeMap<RegionId, u64>>,
    fid: FuncId,
) -> FnGraphs {
    let func = module.function(fid);
    let cfg = Cfg::build(func);
    let pdom = PostDomTree::build(func, &cfg);
    let cd = ControlDeps::build(func, &cfg, &pdom);
    FnGraphs { cfg, cd, assumed: assumed_of.get(&fid).cloned().unwrap_or_default() }
}

/// Callee-summary lookup for [`summarize_function`]: in-SCC members come
/// from the task-local fixpoint state, everything below from the published
/// per-SCC slots (complete before this task started, by DAG order).
///
/// The two "missing" cases are deliberately different: an in-SCC member
/// not yet in `local` is *pending* and reads as bottom (the usual
/// fixpoint seed), while an unset slot of a *dependency* SCC means its
/// task panicked — that callee reads as [`Summary::top`], never silently
/// as bottom.
struct SummaryView<'a> {
    callgraph: &'a CallGraph,
    slots: &'a [SccSlot],
    local: &'a HashMap<FuncId, Summary>,
    /// Index of the SCC this view's task is computing.
    own_scc: usize,
}

impl SummaryView<'_> {
    fn get(&self, f: FuncId) -> Option<Summary> {
        if let Some(s) = self.local.get(&f) {
            return Some(s.clone());
        }
        let &scc = self.callgraph.scc_of.get(&f)?;
        if scc == self.own_scc {
            // Same SCC, not yet computed this round: bottom seed.
            return None;
        }
        match self.slots[scc].get() {
            Some((published, _)) => {
                let pos = self.callgraph.sccs[scc].iter().position(|&m| m == f)?;
                published.get(pos).cloned()
            }
            // Dependency SCC poisoned by a contained panic.
            None => Some(Summary::top()),
        }
    }
}

/// Summarizes one function body, iterating its local dataflow to a
/// fixpoint (capped at `rounds_cap`). The second return value is `false`
/// when the cap stopped the iteration before convergence — callers with
/// an explicit [`crate::config::Budget::fixpoint_rounds`] degrade the SCC.
#[allow(clippy::too_many_arguments)]
fn summarize_function(
    module: &Module,
    regions: &RegionMap,
    shm: &ShmPointers,
    pt: &PointsTo,
    config: &AnalysisConfig,
    table: &LabelTable,
    noncore_sockets: &BTreeSet<safeflow_ir::GlobalId>,
    summaries: &SummaryView<'_>,
    fid: FuncId,
    graphs: &FnGraphs,
    rounds_cap: usize,
) -> (Summary, bool) {
    let func = module.function(fid);
    let mut s = Summary::default();
    if func.blocks.is_empty() {
        return (s, true);
    }
    let FnGraphs { cfg, cd, assumed } = graphs;

    // Parameters covered by a local assume(core(param, ...)) or
    // assume(declassify(param, ...)) — §3.4.3's received-buffer monitoring
    // form: loads through them are monitored.
    let local_assumed_params: BTreeSet<u32> = func
        .annotations
        .iter()
        .filter_map(|a| match a {
            Annotation::AssumeCore { ptr, .. } | Annotation::AssumeDeclassify { ptr, .. } => {
                func.params.iter().position(|p| p.name == *ptr).map(|i| i as u32)
            }
            _ => None,
        })
        .collect();

    let mut vals: HashMap<InstId, SymSet> = HashMap::new();
    let mut block_ctl: HashMap<BlockId, SymSet> = HashMap::new();

    let value_set = |v: &Value, vals: &HashMap<InstId, SymSet>| -> SymSet {
        match v {
            Value::Inst(id) => vals.get(id).cloned().unwrap_or_default(),
            Value::Param(i) => std::iter::once(data_fact(Sym::Param(*i))).collect(),
            _ => SymSet::new(),
        }
    };

    let mut converged = false;
    for _round in 0..rounds_cap {
        let mut changed = false;
        s = Summary::default();

        // Control facts from branches over symbolic values.
        if config.track_control_dependence {
            let mut new_ctl: HashMap<BlockId, SymSet> = HashMap::new();
            for (bid, block) in func.iter_blocks() {
                if !cfg.is_reachable(bid) {
                    continue;
                }
                let cond = match &block.terminator {
                    Terminator::CondBr { cond, .. } => Some(cond),
                    Terminator::Switch { value, .. } => Some(value),
                    _ => None,
                };
                let Some(cond) = cond else { continue };
                let mut set = value_set(cond, &vals);
                if let Some(c) = block_ctl.get(&bid) {
                    set.extend(c.iter().copied());
                }
                if set.is_empty() {
                    continue;
                }
                let ctl_set = promote_ctl(&set);
                for &dep in cd.controlled_by(bid) {
                    new_ctl.entry(dep).or_default().extend(ctl_set.iter().copied());
                }
            }
            for (b, set) in new_ctl {
                let e = block_ctl.entry(b).or_default();
                let before = e.len();
                e.extend(set);
                if e.len() != before {
                    changed = true;
                }
            }
        }

        for (bid, block) in func.iter_blocks() {
            let ctl_here = block_ctl.get(&bid).cloned().unwrap_or_default();
            for &iid in &block.insts {
                let inst = func.inst(iid);
                let mut set = SymSet::new();
                match &inst.kind {
                    InstKind::Load { ptr } => {
                        let locally_assumed =
                            derives_from_assumed_param(func, ptr, &local_assumed_params, 0);
                        for fact in shm.regions_of(fid, ptr) {
                            let region = regions.region(fact.region);
                            let declared = table.region_source_mask(fact.region.0, region.noncore);
                            if declared == 0 || locally_assumed {
                                continue;
                            }
                            let effective = assumed
                                .get(&fact.region)
                                .map(|&m| declared & m)
                                .unwrap_or(declared);
                            if effective == 0 {
                                continue;
                            }
                            let relabel = (effective != declared).then_some(effective);
                            s.region_reads.push((
                                inst.span,
                                fact.region,
                                func.name.clone(),
                                relabel,
                            ));
                            set.insert(Fact { sym: Sym::Region(fact.region), ctl: false, relabel });
                        }
                        set.extend(value_set(ptr, &vals));
                        if !locally_assumed {
                            for o in pt.points_to(fid, ptr) {
                                set.insert(data_fact(Sym::Obj(o)));
                                let base = pt.base_of(o);
                                if base != o {
                                    set.insert(data_fact(Sym::Obj(base)));
                                }
                            }
                        }
                    }
                    InstKind::Store { ptr, value } => {
                        let mut vset = value_set(value, &vals);
                        vset.extend(ctl_here.iter().copied());
                        if !vset.is_empty() {
                            for o in pt.points_to(fid, ptr) {
                                s.obj_writes.entry(o).or_default().extend(vset.iter().copied());
                            }
                        }
                    }
                    InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                        set.extend(value_set(lhs, &vals));
                        set.extend(value_set(rhs, &vals));
                    }
                    InstKind::Cast { value, .. } => set.extend(value_set(value, &vals)),
                    InstKind::FieldAddr { base, .. } => set.extend(value_set(base, &vals)),
                    InstKind::ElemAddr { base, index } => {
                        set.extend(value_set(base, &vals));
                        set.extend(value_set(index, &vals));
                    }
                    InstKind::Phi { incoming } => {
                        // Values plus implicit flow from the branches that
                        // decided which predecessor ran.
                        for (pred, v) in incoming {
                            set.extend(value_set(v, &vals));
                            if let Some(ctl) = block_ctl.get(pred) {
                                set.extend(promote_ctl(ctl));
                            }
                        }
                    }
                    InstKind::Call { callee, args } => {
                        if let Some(name) = module.external_callee_name(callee) {
                            let name = name.to_string();
                            for call in &config.implicit_critical_calls {
                                let (cname, argi) = (&call.name, &call.arg);
                                if *cname == name {
                                    if let Some(arg) = args.get(*argi) {
                                        let mut aset = value_set(arg, &vals);
                                        aset.extend(ctl_here.iter().copied());
                                        if !aset.is_empty() {
                                            s.sinks.push(Sink {
                                                critical: format!("{name}:arg{argi}"),
                                                function: func.name.clone(),
                                                span: inst.span,
                                                sources: aset,
                                            });
                                        }
                                    }
                                }
                            }
                            for spec in &config.recv_functions {
                                if spec.name == name {
                                    let sock_noncore = args.get(spec.sock_arg).is_some_and(|a| {
                                        socket_is_noncore(func, a, noncore_sockets)
                                    });
                                    if sock_noncore {
                                        if let Some(buf) = args.get(spec.buf_arg) {
                                            for o in pt.points_to(fid, buf) {
                                                s.obj_writes
                                                    .entry(o)
                                                    .or_default()
                                                    .insert(data_fact(Sym::Recv));
                                            }
                                        }
                                    }
                                }
                            }
                        } else if let safeflow_ir::Callee::Local(target) = callee {
                            // Inline the callee summary. `None` only for
                            // in-SCC members pending this fixpoint round
                            // (bottom seed); a poisoned dependency comes
                            // back as `Summary::top()` from the view.
                            let callee_sum = summaries.get(*target).unwrap_or_default();
                            // Meets a region fact's label with the mask the
                            // caller's assume scope declassifies it to;
                            // `None` when nothing survives (fully monitored).
                            let scope_relabel = |r: RegionId, relabel: Option<u64>| {
                                let m = match assumed.get(&r) {
                                    Some(&m) => m,
                                    None => return Some(relabel),
                                };
                                let declared =
                                    table.region_source_mask(r.0, regions.region(r).noncore);
                                let eff = relabel.unwrap_or(declared) & m;
                                if eff == 0 {
                                    None
                                } else {
                                    Some((eff != declared).then_some(eff))
                                }
                            };
                            let subst = |set: &SymSet| -> SymSet {
                                let mut out = SymSet::new();
                                for f in set {
                                    match f.sym {
                                        Sym::Param(i) => {
                                            if let Some(arg) = args.get(i as usize) {
                                                for af in value_set(arg, &vals) {
                                                    out.insert(Fact { ctl: af.ctl || f.ctl, ..af });
                                                }
                                            }
                                        }
                                        // Monitored or declassified by this
                                        // caller's assume scope (recursive,
                                        // §3.1).
                                        Sym::Region(r) => {
                                            if let Some(relabel) = scope_relabel(r, f.relabel) {
                                                out.insert(Fact { relabel, ..*f });
                                            }
                                        }
                                        _ => {
                                            out.insert(*f);
                                        }
                                    }
                                }
                                out
                            };
                            // Region reads surviving this caller's scope.
                            for (span, r, in_func, relabel) in &callee_sum.region_reads {
                                if let Some(relabel) = scope_relabel(*r, *relabel) {
                                    s.region_reads.push((*span, *r, in_func.clone(), relabel));
                                }
                            }
                            // Note: the call site's own control dependence
                            // does NOT taint sinks or memory writes inside
                            // the callee — only values passed as arguments
                            // carry taint across the call (matching the
                            // context-sensitive engine's §3.3 semantics).
                            for sink in &callee_sum.sinks {
                                s.sinks.push(Sink {
                                    critical: sink.critical.clone(),
                                    function: sink.function.clone(),
                                    span: sink.span,
                                    sources: subst(&sink.sources),
                                });
                            }
                            for (o, wset) in &callee_sum.obj_writes {
                                let sub = subst(wset);
                                s.obj_writes.entry(*o).or_default().extend(sub);
                            }
                            set.extend(subst(&callee_sum.ret));
                            set.extend(promote_ctl(&ctl_here));
                        }
                    }
                    InstKind::AssertSafe { var, value } => {
                        let mut aset = value_set(value, &vals);
                        aset.extend(ctl_here.iter().copied());
                        if !aset.is_empty() {
                            s.sinks.push(Sink {
                                critical: var.clone(),
                                function: func.name.clone(),
                                span: inst.span,
                                sources: aset,
                            });
                        }
                    }
                    InstKind::Alloca { .. } => {}
                }
                if !set.is_empty() {
                    let e = vals.entry(iid).or_default();
                    let before = e.len();
                    e.extend(set);
                    if e.len() != before {
                        changed = true;
                    }
                }
            }
        }

        // Return set.
        for (bid, block) in func.iter_blocks() {
            if let Terminator::Ret(Some(v)) = &block.terminator {
                s.ret.extend(value_set(v, &vals));
                if let Some(ctl) = block_ctl.get(&bid) {
                    s.ret.extend(ctl.iter().copied());
                }
            }
        }

        if !changed {
            converged = true;
            break;
        }
    }
    (s, converged)
}

/// Whether a pointer value derives (through field/element/cast chains)
/// from a parameter covered by a local `assume(core(param, ...))`.
fn derives_from_assumed_param(
    func: &safeflow_ir::Function,
    v: &Value,
    assumed: &BTreeSet<u32>,
    depth: usize,
) -> bool {
    if depth > 16 {
        return false;
    }
    match v {
        Value::Param(i) => assumed.contains(i),
        Value::Inst(id) => match &func.inst(*id).kind {
            InstKind::FieldAddr { base, .. }
            | InstKind::ElemAddr { base, .. }
            | InstKind::Cast { value: base, .. } => {
                derives_from_assumed_param(func, base, assumed, depth + 1)
            }
            _ => false,
        },
        _ => false,
    }
}

fn socket_is_noncore(
    func: &safeflow_ir::Function,
    sock: &Value,
    noncore_sockets: &BTreeSet<safeflow_ir::GlobalId>,
) -> bool {
    match sock {
        Value::Inst(id) => match &func.inst(*id).kind {
            InstKind::Load { ptr: Value::Global(g) } => noncore_sockets.contains(g),
            InstKind::Cast { value, .. } => socket_is_noncore(func, value, noncore_sockets),
            _ => false,
        },
        _ => false,
    }
}
