//! Multi-translation-unit analysis sessions with incremental re-analysis.
//!
//! An [`AnalysisSession`] wraps an [`Analyzer`] and (optionally) a
//! persistent [`crate::store`] directory, and drives whole-program checks
//! over a set of input files:
//!
//! 1. **Exact replay** — when every input file, the root, and the
//!    configuration hash to a stored manifest, the session replays the
//!    stored report without parsing anything (`run == Replayed`, zero SCCs
//!    re-analyzed).
//! 2. **Incremental re-analysis** — otherwise the in-memory summary cache
//!    is seeded from the store's per-SCC table and the full pipeline runs;
//!    unchanged SCCs hit the cache, the dirty region (edited SCCs plus
//!    their transitive dependents in the call graph) recomputes, and the
//!    re-linked whole-program report is saved back.
//!
//! Replayed and analyzed runs produce byte-identical reports (stripped per
//! the observability contract): the manifest stores the cold run's
//! rendered output and `Counter`-class metrics verbatim, and store
//! bookkeeping lands in `Work`-class metrics, which the warm/cold
//! comparison strips by definition. Degraded runs (exit code ≥ 3) are
//! never persisted, and an armed fault plan disables the store entirely.

use crate::store::{config_hash, manifest_key, ReplayEntry, SummaryStore};
use crate::{AnalysisConfig, AnalysisError, AnalysisResult, Analyzer, Json, MetricsSnapshot};
use safeflow_syntax::VirtualFs;
use std::path::Path;
use std::time::Instant;

/// How a [`SessionOutcome`] was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionRun {
    /// The full pipeline ran (possibly with summary-cache hits).
    Analyzed,
    /// The whole-program manifest matched; the stored report was replayed
    /// without parsing or analyzing anything.
    Replayed,
}

/// The result of one [`AnalysisSession::check`] call.
#[derive(Debug)]
pub struct SessionOutcome {
    /// Whether the run analyzed or replayed.
    pub run: SessionRun,
    /// The report's exit code (degradation contract, 0–4).
    pub exit_code: u8,
    /// The rendered human-readable report.
    pub rendered: String,
    /// The full report document (`safeflow-report-v1` under the default
    /// two-point policy, `safeflow-report-v2` when labels are declared).
    pub report_json: Json,
    /// The run's metrics (including `store.*` bookkeeping in the `work`
    /// section when a store is attached).
    pub metrics: MetricsSnapshot,
    /// The underlying analysis result — `None` for replayed runs, which
    /// never build a module.
    pub result: Option<AnalysisResult>,
}

/// A multi-file analysis session: an analyzer plus an optional persistent
/// summary store. See the module docs for the incremental protocol.
#[derive(Debug)]
pub struct AnalysisSession {
    analyzer: Analyzer,
    store: Option<SummaryStore>,
    replay_enabled: bool,
    strict: bool,
}

impl AnalysisSession {
    /// A session without persistence: every check is a cold run (modulo
    /// the in-memory summary cache, which persists across checks).
    pub fn new(config: AnalysisConfig) -> AnalysisSession {
        AnalysisSession {
            analyzer: Analyzer::new(config),
            store: None,
            replay_enabled: true,
            strict: false,
        }
    }

    /// A session persisting to `dir` (created if missing). An existing
    /// store file that fails validation is ignored — the first check
    /// degrades to a cold run and rewrites it.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Store`] when the directory cannot be created.
    pub fn with_store(
        config: AnalysisConfig,
        dir: &Path,
    ) -> Result<AnalysisSession, AnalysisError> {
        let store = SummaryStore::open(dir)?;
        let mut session = AnalysisSession::new(config);
        // Seed the in-memory cache immediately: stale entries are keyed by
        // content hashes that will simply never match again.
        if session.store_usable() {
            session.analyzer.cache_seed(store.scc_entries());
        }
        session.store = Some(store);
        Ok(session)
    }

    /// Disables (or re-enables) whole-program manifest replay; summaries
    /// still seed the cache. Used when the caller needs a real
    /// [`AnalysisResult`] every time (e.g. `--dot` output).
    pub fn set_replay(&mut self, on: bool) {
        self.replay_enabled = on;
    }

    /// In strict mode, degraded runs (exit codes 3/4) return
    /// [`AnalysisError::Budget`] / [`AnalysisError::Fault`] instead of a
    /// degraded outcome.
    pub fn set_strict(&mut self, on: bool) {
        self.strict = on;
    }

    /// Sets (or clears) the wall-clock deadline for subsequent checks.
    ///
    /// This is the per-request deadline hook used by `safeflow serve`: a
    /// check that overruns degrades conservatively through the budget
    /// machinery (exit code 4) instead of hanging. Deadlines never key the
    /// store — they can only degrade a run, and degraded runs are not
    /// persisted — so varying this between checks cannot defeat warm
    /// replay.
    pub fn set_deadline_ms(&mut self, ms: Option<u64>) {
        self.analyzer.config_mut().budget.deadline_ms = ms;
    }

    /// Whether another live process held the store's writer lock when this
    /// session opened it. A lock-busy store is detached: the session runs
    /// cold and persists nothing, rather than racing the concurrent writer
    /// (typically a resident `safeflow serve` daemon).
    pub fn store_lock_busy(&self) -> bool {
        self.store.as_ref().is_some_and(|s| s.lock_busy())
    }

    /// The wrapped analyzer.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Whether [`AnalysisSession::check`] on these exact inputs would
    /// replay a stored whole-program manifest without analyzing anything.
    /// The sharded coordinator (see [`crate::shard`]) probes this before
    /// spawning workers — on a warm manifest they would be pure overhead.
    pub fn manifest_hit(&self, root: &str, fs: &VirtualFs) -> bool {
        if !self.replay_enabled || !self.store_usable() || self.store_lock_busy() {
            return false;
        }
        let Some(store) = self.store.as_ref() else { return false };
        let files: Vec<(String, String)> = fs
            .names()
            .iter()
            .map(|n| (n.to_string(), fs.get(n).unwrap_or_default().to_string()))
            .collect();
        store.manifest(manifest_key(config_hash(self.analyzer.config()), root, &files)).is_some()
    }

    /// An armed fault plan makes results non-reproducible, so it disables
    /// persistence wholesale (replay and save).
    fn store_usable(&self) -> bool {
        self.analyzer.config().fault_plan.is_none()
    }

    /// Checks the files at `paths` (first path is the root translation
    /// unit), reading them from disk into a virtual file system.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Io`] for unreadable inputs, plus everything
    /// [`AnalysisSession::check`] returns.
    pub fn check_files(&mut self, paths: &[String]) -> Result<SessionOutcome, AnalysisError> {
        let mut fs = VirtualFs::new();
        for p in paths {
            let text = std::fs::read_to_string(p)
                .map_err(|e| AnalysisError::Io { path: std::path::PathBuf::from(p), source: e })?;
            fs.add(p.as_str(), text);
        }
        let root = paths.first().map(String::as_str).unwrap_or_default().to_string();
        self.check(&root, &fs)
    }

    /// Checks `root` (resolving `#include`s against `fs`), replaying or
    /// incrementally re-analyzing per the store state.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Parse`] when the input fails to parse or lower,
    /// [`AnalysisError::Store`] when the store cannot be written, and in
    /// strict mode [`AnalysisError::Budget`] / [`AnalysisError::Fault`]
    /// for degraded runs.
    pub fn check(&mut self, root: &str, fs: &VirtualFs) -> Result<SessionOutcome, AnalysisError> {
        let t0 = Instant::now();
        let usable = self.store_usable() && self.store.is_some() && !self.store_lock_busy();
        let key = usable.then(|| {
            let files: Vec<(String, String)> = fs
                .names()
                .iter()
                .map(|n| (n.to_string(), fs.get(n).unwrap_or_default().to_string()))
                .collect();
            manifest_key(config_hash(self.analyzer.config()), root, &files)
        });

        // 1. Exact whole-program replay.
        if self.replay_enabled {
            if let (Some(key), Some(store)) = (key, self.store.as_ref()) {
                if let Some(entry) = store.manifest(key) {
                    if let Ok(report) = Json::parse(&entry.report_json) {
                        return Ok(self.replay(entry.clone(), report, t0));
                    }
                    // A stored subtree that fails to re-parse means the
                    // entry is unusable; fall through to a full run that
                    // will overwrite it. (Unreachable in practice — the
                    // file is checksummed — but never trust the disk.)
                }
            }
        }

        // 2. Full run over a store-seeded cache.
        let result = self.analyzer.analyze_program(root, fs)?;
        let exit_code = result.report.exit_code();
        let mut metrics = self.analyzer.last_metrics();
        if usable {
            if let Some(store) = &self.store {
                metrics.work.insert("store.manifest_hits".to_string(), 0);
                metrics.work.insert("store.manifest_misses".to_string(), 1);
                metrics.work.insert("store.sccs_loaded".to_string(), store.scc_count() as u64);
                if store.load_rejected() {
                    metrics.work.insert("store.load_rejected".to_string(), 1);
                }
                // How many of the loaded SCCs came from worker segment
                // files. Sched-class: segment contents depend on how
                // concurrent workers interleaved, never on the program.
                if store.segment_entries() > 0 {
                    metrics.sched.insert(
                        "store.segment_entries".to_string(),
                        store.segment_entries() as u64,
                    );
                }
            }
        } else if self.store_lock_busy() {
            // A concurrent writer owns the store directory: this run was
            // deliberately cold (no replay, no seed, no save).
            metrics.work.insert("store.lock_busy".to_string(), 1);
        }

        // 3. Persist clean results (degraded ones are never stored: their
        // output is not a pure function of the inputs).
        if exit_code < 3 {
            if let (Some(key), Some(store)) = (key, self.store.as_mut()) {
                let entry = ReplayEntry {
                    exit_code,
                    counters: metrics.counters.clone(),
                    report_json: result.report.to_json(&result.sources).render(),
                    rendered: result.render(),
                    schema: result.report.schema().to_string(),
                };
                let stats = store.save(key, entry, self.analyzer.cache_export_live())?;
                metrics.work.insert("store.sccs_saved".to_string(), stats.sccs_saved as u64);
                metrics
                    .work
                    .insert("store.sccs_invalidated".to_string(), stats.sccs_invalidated as u64);
            }
        } else if self.strict {
            let degradations = result.report.degradations.clone();
            return Err(if exit_code == 4 {
                AnalysisError::Budget { degradations }
            } else {
                AnalysisError::Fault { degradations }
            });
        }
        metrics.timings_ns.insert("session.check_ns".to_string(), t0.elapsed().as_nanos() as u64);

        let report_json = self.analyzer.report_json_with(&result, &metrics);
        Ok(SessionOutcome {
            run: SessionRun::Analyzed,
            exit_code,
            rendered: result.render(),
            report_json,
            metrics,
            result: Some(result),
        })
    }

    /// Builds a replayed outcome from a stored manifest entry: counters
    /// verbatim (they are cache-state-invariant by definition), store
    /// bookkeeping as `Work`, empty schedule sections.
    fn replay(&self, entry: ReplayEntry, report: Json, t0: Instant) -> SessionOutcome {
        let mut metrics = MetricsSnapshot { counters: entry.counters, ..Default::default() };
        metrics.work.insert("store.manifest_hits".to_string(), 1);
        metrics.work.insert("store.manifest_misses".to_string(), 0);
        let loaded = self.store.as_ref().map(|s| s.scc_count()).unwrap_or(0) as u64;
        metrics.work.insert("store.sccs_loaded".to_string(), loaded);
        metrics.timings_ns.insert("session.check_ns".to_string(), t0.elapsed().as_nanos() as u64);

        let mut doc = Json::obj();
        doc.set("schema", entry.schema.as_str());
        doc.set("exit_code", u64::from(entry.exit_code));
        doc.set("report", report);
        doc.set("budget", self.analyzer.budget_json());
        doc.set("cache", self.analyzer.cache_json());
        doc.set("metrics", metrics.to_json());
        SessionOutcome {
            run: SessionRun::Replayed,
            exit_code: entry.exit_code,
            rendered: entry.rendered,
            report_json: doc,
            metrics,
            result: None,
        }
    }
}
