//! Parallel-engine support: content-hashed caching of function summaries.
//!
//! The summary engine ([`crate::summary`]) computes one symbolic summary
//! per function, bottom-up over call-graph SCCs. Both the schedule and the
//! cache live at SCC granularity:
//!
//! * **Scheduling** — [`safeflow_ir::CallGraph::scc_dependencies`] gives
//!   the bottom-up DAG; [`safeflow_util::pool::run_dag`] runs independent
//!   SCCs concurrently. Results are stored indexed by SCC, so the output
//!   is identical for any worker count.
//! * **Caching** — each SCC gets a *content hash* chaining (Merkle-style)
//!   the member functions' IR, their shm/points-to facts, their assume
//!   scopes, the analysis environment, and the hashes of every callee SCC.
//!   A hit replays the stored member summaries without re-running the
//!   fixpoint; editing one function invalidates exactly its own SCC and
//!   the SCCs of its (transitive) callers, so a warm re-analysis
//!   re-summarizes nothing and an incremental one re-summarizes only the
//!   affected chain. [`CacheStats`] counts hits/misses per member function
//!   so tests can assert both properties.
//!
//! The hash deliberately covers everything `summarize_function` reads:
//! instruction kinds/types/spans, terminators, annotations, parameters,
//! per-value region facts and points-to sets, the caller-scope assume
//! sets, and the config knobs that steer summarization. Spans are
//! included, so shifting a function within its file re-hashes it — sound
//! (never stale), merely conservative.

use crate::config::AnalysisConfig;
use crate::regions::{RegionId, RegionMap};
use crate::shmptr::ShmPointers;
use crate::summary::Summary;
use safeflow_ir::{CallGraph, FuncId, GlobalId, Module, Value};
use safeflow_points_to::PointsTo;
use safeflow_util::hash::Fnv64;
use safeflow_util::metrics::{Class, Metrics};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::Hasher;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Summary-cache effectiveness counters, cumulative over every analysis
/// run through one [`crate::Analyzer`].
///
/// Counts are per *function*: replaying a cached SCC of three members
/// records three hits. A fully warm re-analysis of an unchanged program
/// therefore shows `hits` grow by exactly the previous run's `misses`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Function summaries replayed from the cache.
    pub hits: usize,
    /// Function summaries that had to be computed.
    pub misses: usize,
}

/// Content-addressed store of per-SCC summary vectors (member order), keyed
/// by the chained content hash. Shared across worker threads and across
/// repeated `analyze_*` calls on one `Analyzer`.
#[derive(Debug, Default)]
pub(crate) struct SummaryCache {
    map: Mutex<HashMap<u64, Arc<Vec<Summary>>>>,
    /// Keys of the most recent run's SCCs — the *live* set. The session
    /// persists exactly these ([`SummaryCache::export_live`]); entries
    /// outside it are history (stale content hashes) and are dropped from
    /// the on-disk store at save time.
    live: Mutex<Vec<u64>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl SummaryCache {
    /// Pre-populates the cache from a persistent store without touching
    /// the hit/miss counters: seeded entries only count when a run
    /// actually probes them.
    pub(crate) fn seed(&self, entries: Vec<(u64, Arc<Vec<Summary>>)>) {
        let mut map = self.map.lock().unwrap();
        for (key, summaries) in entries {
            map.entry(key).or_insert(summaries);
        }
    }

    /// Declares the current run's SCC hash set as live (replacing the
    /// previous set). Called once per summary-engine run.
    pub(crate) fn set_live(&self, keys: &[u64]) {
        *self.live.lock().unwrap() = keys.to_vec();
    }

    /// The cached entries for the live key set, in live-set order — what a
    /// clean run may persist. SCCs whose computation degraded were never
    /// inserted, so they are simply absent.
    pub(crate) fn export_live(&self) -> Vec<(u64, Arc<Vec<Summary>>)> {
        let map = self.map.lock().unwrap();
        let mut seen = std::collections::HashSet::new();
        self.live
            .lock()
            .unwrap()
            .iter()
            .filter(|&&k| seen.insert(k))
            .filter_map(|&k| map.get(&k).map(|v| (k, v.clone())))
            .collect()
    }

    /// Probes for an SCC's summaries, tallying `members` hits or misses.
    pub(crate) fn get(&self, key: u64, members: usize) -> Option<Arc<Vec<Summary>>> {
        let found = self.map.lock().unwrap().get(&key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(members, Ordering::Relaxed),
            None => self.misses.fetch_add(members, Ordering::Relaxed),
        };
        found
    }

    /// Stores a freshly computed SCC result.
    pub(crate) fn insert(&self, key: u64, summaries: Arc<Vec<Summary>>) {
        self.map.lock().unwrap().insert(key, summaries);
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// One content hash per SCC of `callgraph`, chained bottom-up: `deps` must
/// be `callgraph.scc_dependencies()` (every dependency index precedes its
/// dependent, which the bottom-up SCC order guarantees).
///
/// Records the Merkle-hashing wall-clock under `engine.scc_hash_ns` and
/// the SCC/function totals as deterministic counters.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scc_hashes(
    module: &Module,
    regions: &RegionMap,
    shm: &ShmPointers,
    pt: &PointsTo,
    config: &AnalysisConfig,
    noncore_sockets: &BTreeSet<GlobalId>,
    callgraph: &CallGraph,
    deps: &[Vec<usize>],
    assumed_of: &HashMap<FuncId, BTreeMap<RegionId, u64>>,
    metrics: &Metrics,
) -> Vec<u64> {
    let t0 = std::time::Instant::now();
    let env = env_hash(module, regions, config, noncore_sockets);
    let mut out: Vec<u64> = Vec::with_capacity(callgraph.sccs.len());
    let mut functions = 0u64;
    for (i, scc) in callgraph.sccs.iter().enumerate() {
        let mut h = Fnv64::new();
        h.write_u64(env);
        h.write_usize(scc.len());
        for &fid in scc {
            h.write_u64(function_sig(module, shm, pt, fid, assumed_of.get(&fid)));
            functions += 1;
        }
        for &d in &deps[i] {
            h.write_u64(out[d]);
        }
        out.push(h.finish());
    }
    metrics.add_many(
        Class::Counter,
        &[("engine.sccs_hashed", out.len() as u64), ("engine.functions_hashed", functions)],
    );
    metrics.record_ns("engine.scc_hash_ns", t0.elapsed().as_nanos() as u64);
    out
}

/// Hash of the analysis-wide inputs every summary depends on: the region
/// table, the non-core socket set, and the config knobs `summarize_function`
/// consults. Region/global/function *ids* appear throughout the per-function
/// signatures, so any renumbering (e.g. a declaration added above) changes
/// those hashes too — again conservative, never stale.
fn env_hash(
    module: &Module,
    regions: &RegionMap,
    config: &AnalysisConfig,
    noncore_sockets: &BTreeSet<GlobalId>,
) -> u64 {
    let mut h = Fnv64::new();
    for r in regions.iter() {
        h.write_u32(r.id.0);
        h.write_str(&r.name);
        h.write_u32(r.global.0);
        h.write_u64(r.size);
        h.write_u64(r.elem_size);
        h.write_u64(r.len);
        h.write_u8(r.noncore as u8);
        h.write_str(r.label.as_deref().unwrap_or(""));
        h.write_i64(r.offset.unwrap_or(i64::MIN));
    }
    for g in noncore_sockets {
        h.write_u32(g.0);
    }
    // Global names pin GlobalId assignments (socket detection reads loads
    // of globals by id).
    for g in &module.globals {
        h.write_str(&g.name);
    }
    h.write_u8(config.track_control_dependence as u8);
    // Sorted: list order is not semantic, and summary content hashes must
    // agree between configs that differ only in flag order.
    let mut calls: Vec<_> = config.implicit_critical_calls.iter().collect();
    calls.sort();
    for call in calls {
        h.write_str(&call.name);
        h.write_usize(call.arg);
        h.write_str(call.clearance.as_deref().unwrap_or(""));
    }
    let mut recvs: Vec<_> = config.recv_functions.iter().collect();
    recvs.sort();
    for spec in recvs {
        h.write_str(&spec.name);
        h.write_usize(spec.sock_arg);
        h.write_usize(spec.buf_arg);
    }
    // The normalized label policy: declaration order is not semantic, but
    // the compiled lattice (and therefore every summary) depends on the
    // label set, the declassifier pairs, and the implicit-flow mode.
    let mut policy_bytes = Vec::new();
    config.policy.clone().normalized().encode_into(&mut policy_bytes);
    h.write(&policy_bytes);
    h.write_str(&config.entry);
    h.finish()
}

/// Content signature of one function: everything `summarize_function`
/// reads from it. The IR walk uses the stable `Debug` renderings of
/// instruction kinds, types, terminators and annotations — these embed
/// operand ids, so structural changes always surface.
fn function_sig(
    module: &Module,
    shm: &ShmPointers,
    pt: &PointsTo,
    fid: FuncId,
    assumed: Option<&BTreeMap<RegionId, u64>>,
) -> u64 {
    let func = module.function(fid);
    let mut h = Fnv64::new();
    h.write_str(&func.name);
    h.write_str(&format!("{:?}", func.ret));
    h.write_u8(func.is_definition as u8);
    for p in &func.params {
        h.write_str(&p.name);
        h.write_str(&format!("{:?}", p.ty));
    }
    for ann in &func.annotations {
        h.write_str(&format!("{ann:?}"));
    }
    if let Some(assumed) = assumed {
        for (r, mask) in assumed {
            h.write_u32(r.0);
            h.write_u64(*mask);
        }
    }
    // Per-value analysis facts for parameters...
    for i in 0..func.params.len() {
        let v = Value::Param(i as u32);
        hash_value_facts(&mut h, shm, pt, fid, &v);
    }
    // ...and the IR itself, block by block, with per-result facts.
    for (bid, block) in func.iter_blocks() {
        h.write_u32(bid.0);
        for &iid in &block.insts {
            let inst = func.inst(iid);
            h.write_u32(iid.0);
            h.write_str(&format!("{:?}", inst.kind));
            h.write_str(&format!("{:?}", inst.ty));
            h.write_u32(inst.span.file.0);
            h.write_u32(inst.span.lo);
            h.write_u32(inst.span.hi);
            hash_value_facts(&mut h, shm, pt, fid, &Value::Inst(iid));
            // Store/load targets have facts on their operands too.
            for op in inst.kind.operands() {
                hash_value_facts(&mut h, shm, pt, fid, op);
            }
        }
        h.write_str(&format!("{:?}", block.terminator));
    }
    h.finish()
}

/// Folds in the shm-region facts and points-to set of one value.
fn hash_value_facts(h: &mut Fnv64, shm: &ShmPointers, pt: &PointsTo, fid: FuncId, v: &Value) {
    let regions = shm.regions_of(fid, v);
    h.write_usize(regions.len());
    for rp in regions {
        h.write_u32(rp.region.0);
        h.write_i64(rp.offset.unwrap_or(i64::MIN));
    }
    let objs = pt.points_to(fid, v);
    h.write_usize(objs.len());
    for o in objs {
        h.write_u32(o.0);
        h.write_u32(pt.base_of(o).0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::extract_regions;
    use crate::shmptr::identify_shm_pointers;
    use safeflow_ir::build_module;
    use safeflow_syntax::diag::Diagnostics;
    use safeflow_syntax::parse_source;

    fn hashes_for(src: &str) -> (Vec<String>, Vec<u64>) {
        let pr = parse_source("t.c", src);
        assert!(!pr.diags.has_errors(), "{:?}", pr.diags);
        let mut diags = Diagnostics::new();
        let m = build_module(&pr.unit, &mut diags);
        assert!(!diags.has_errors(), "{diags:?}");
        let regions = extract_regions(&m, &["shmat".to_string()], &mut diags);
        let shm = identify_shm_pointers(&m, &regions);
        let pt = PointsTo::analyze(&m);
        let cg = CallGraph::build(&m);
        let config = AnalysisConfig::default();
        let deps = cg.scc_dependencies();
        let assumed: HashMap<FuncId, BTreeMap<RegionId, u64>> = HashMap::new();
        let metrics = Metrics::new();
        let hs = scc_hashes(
            &m,
            &regions,
            &shm,
            &pt,
            &config,
            &BTreeSet::new(),
            &cg,
            &deps,
            &assumed,
            &metrics,
        );
        let names = cg
            .sccs
            .iter()
            .map(|scc| {
                scc.iter().map(|&f| m.function(f).name.clone()).collect::<Vec<_>>().join("+")
            })
            .collect();
        (names, hs)
    }

    const PROG: &str = r#"
        int leaf(int x) { return x + 1; }
        int mid(int x) { return leaf(x) * 2; }
        int other(int x) { return x - 3; }
        int main() { return mid(4) + other(5); }
    "#;

    #[test]
    fn hashes_are_reproducible() {
        let (_, a) = hashes_for(PROG);
        let (_, b) = hashes_for(PROG);
        assert_eq!(a, b);
    }

    #[test]
    fn editing_a_function_invalidates_exactly_its_caller_chain() {
        let (names, before) = hashes_for(PROG);
        // Change a constant inside `leaf` only.
        let (names2, after) = hashes_for(&PROG.replace("x + 1", "x + 2"));
        assert_eq!(names, names2);
        for (i, name) in names.iter().enumerate() {
            let should_change = name == "leaf" || name == "mid" || name == "main";
            assert_eq!(
                before[i] != after[i],
                should_change,
                "scc `{name}`: before={:#x} after={:#x}",
                before[i],
                after[i]
            );
        }
    }

    /// Regression: the whole front half of the pipeline (parse → lower →
    /// SSA → regions → shm → points-to) must be reproducible, or identical
    /// sources hash differently and the cache never hits across analyses.
    /// Loops + φ nodes + field accesses through shm pointers once exposed
    /// HashMap-iteration-order nondeterminism in SSA φ placement and in the
    /// points-to solver's lazy `Obj::Field` interning.
    #[test]
    fn hashes_are_reproducible_with_loops_and_shm() {
        let src =
            safeflow_corpus::synthetic::generate_wide(safeflow_corpus::synthetic::WideParams {
                families: 3,
                depth: 2,
                regions: 2,
                branches: 2,
            });
        let (names_a, a) = hashes_for(&src);
        let (names_b, b) = hashes_for(&src);
        assert_eq!(names_a, names_b);
        assert_eq!(a, b);
    }

    #[test]
    fn config_knobs_change_the_env_hash() {
        let pr = parse_source("t.c", PROG);
        let mut diags = Diagnostics::new();
        let m = build_module(&pr.unit, &mut diags);
        let regions = extract_regions(&m, &["shmat".to_string()], &mut diags);
        let base = AnalysisConfig::default();
        let mut flipped = base.clone();
        flipped.track_control_dependence = !base.track_control_dependence;
        let a = env_hash(&m, &regions, &base, &BTreeSet::new());
        let b = env_hash(&m, &regions, &flipped, &BTreeSet::new());
        assert_ne!(a, b);
    }

    #[test]
    fn env_hash_ignores_list_order() {
        // Same configuration, lists spelled in a different order: summary
        // content hashes must agree or warm-cache runs recompute every SCC.
        let pr = parse_source("t.c", PROG);
        let mut diags = Diagnostics::new();
        let m = build_module(&pr.unit, &mut diags);
        let regions = extract_regions(&m, &["shmat".to_string()], &mut diags);
        let mut base = AnalysisConfig::default();
        base.implicit_critical_calls.push(crate::CriticalCall::new("reboot", 1));
        let mut shuffled = base.clone();
        shuffled.implicit_critical_calls.reverse();
        shuffled.recv_functions.reverse();
        let a = env_hash(&m, &regions, &base, &BTreeSet::new());
        let b = env_hash(&m, &regions, &shuffled, &BTreeSet::new());
        assert_eq!(a, b);
    }

    #[test]
    fn env_hash_sees_policy_but_not_its_declaration_order() {
        use crate::policy::Policy;
        let pr = parse_source("t.c", PROG);
        let mut diags = Diagnostics::new();
        let m = build_module(&pr.unit, &mut diags);
        let regions = extract_regions(&m, &["shmat".to_string()], &mut diags);
        let base = AnalysisConfig::default();
        let mut labeled = base.clone();
        labeled.policy = Policy::builder().label("sensor_a").label("sensor_b").build();
        let mut reordered = base.clone();
        reordered.policy = Policy::builder().label("sensor_b").label("sensor_a").build();
        let a = env_hash(&m, &regions, &base, &BTreeSet::new());
        let b = env_hash(&m, &regions, &labeled, &BTreeSet::new());
        let c = env_hash(&m, &regions, &reordered, &BTreeSet::new());
        assert_ne!(a, b, "a declared policy must invalidate summaries");
        assert_eq!(b, c, "declaration order must not");
    }
}
