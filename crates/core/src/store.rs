//! Persistent on-disk summary store for incremental analysis.
//!
//! One store directory holds one file, `safeflow-store.bin`, a versioned,
//! checksummed, hand-rolled binary image with two tables:
//!
//! * **Replay manifests** — whole-program entries keyed by a hash over the
//!   store version, the analysis configuration, the root file name, and
//!   every input file's name + content hash. An exact match means *nothing*
//!   changed, so the session replays the stored report (text, JSON subtree,
//!   exit code, `Counter`-class metrics) without parsing a single file —
//!   zero SCCs re-analyzed.
//! * **SCC summaries** — per-SCC function-summary vectors keyed by the
//!   engine's Merkle content hashes ([`crate::engine::scc_hashes`]). When
//!   some inputs changed, the session seeds the in-memory
//!   [`crate::engine::SummaryCache`] from this table before analyzing;
//!   unchanged SCCs hit, the dirty region (the edited SCCs plus their
//!   transitive dependents, whose chained hashes moved) recomputes.
//!
//! The invalidation rule is entirely carried by the keys: an edit changes a
//! content hash, the stale entry simply never matches again and is dropped
//! at the next save. Staleness is therefore impossible by construction;
//! the failure mode of a damaged store is a **cold run**, never a wrong
//! one. The reader is fully defensive: a bad magic, version, checksum, or
//! any truncated/overlong field makes [`SummaryStore::open`] come up
//! empty (and report `load_rejected`), while *writing* problems surface as
//! [`AnalysisError::Store`].
//!
//! Degraded results (contained panics, exhausted budgets, injected faults)
//! are never written: the summary engine already refuses to cache tainted
//! SCCs, and the session skips the manifest save for any run whose exit
//! code signals degradation.

use crate::summary::Summary;
use crate::AnalysisError;
use safeflow_util::hash::Fnv64;
use std::collections::BTreeMap;
use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::sync::Arc;

// Binary encoding helpers live in `safeflow_util::wire` (shared with the
// `safeflow serve` protocol); re-exported here for the summary codec.
pub(crate) use safeflow_util::wire::{put_str, put_u32, put_u64, put_u8, ByteReader};

/// Store format version; bumped on any encoding change. A file with a
/// different version is ignored wholesale (everything invalidates).
/// v2: label-lattice policies — summary facts carry relabel masks,
/// replay manifests carry the report schema, and the config hash covers
/// the normalized policy and critical-call clearances.
pub const STORE_VERSION: u32 = 2;

const MAGIC: &[u8; 8] = b"SFSTORE\0";
const STORE_FILE: &str = "safeflow-store.bin";
const LOCK_FILE: &str = "safeflow-store.lock";

/// Caps on table sizes, enforced on save so one store directory cannot
/// grow without bound across alternating roots/configs.
const MAX_MANIFESTS: usize = 64;

/// A whole-program replay entry: everything needed to reproduce a cold
/// run's user-visible output without re-analyzing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ReplayEntry {
    /// The run's exit code (always `< 3`: degraded runs are not stored).
    pub exit_code: u8,
    /// The run's `Counter`-class metrics — cache-state-invariant by
    /// definition, so replaying them verbatim preserves the warm/cold
    /// metrics contract.
    pub counters: BTreeMap<String, u64>,
    /// The rendered `report` subtree of the report document.
    pub report_json: String,
    /// The rendered human-readable report.
    pub rendered: String,
    /// The schema identifier of the stored document (`safeflow-report-v1`
    /// or `safeflow-report-v2`): per program, not per config — annotations
    /// can declare labels — so replay must restore it verbatim.
    pub schema: String,
}

/// Statistics from the most recent [`SummaryStore::save`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SaveStats {
    /// SCC entries written.
    pub sccs_saved: usize,
    /// Previously loaded SCC entries dropped because no longer live.
    pub sccs_invalidated: usize,
}

/// The persistent store bound to one directory.
#[derive(Debug)]
pub(crate) struct SummaryStore {
    path: PathBuf,
    manifests: Vec<(u64, ReplayEntry)>,
    sccs: Vec<(u64, Arc<Vec<Summary>>)>,
    /// `true` when a store file existed but failed validation (bad magic /
    /// version / checksum / truncation) and was ignored.
    load_rejected: bool,
    /// Advisory writer lock on the directory, held for the store's
    /// lifetime (released by the OS on drop *and* on process death, so a
    /// SIGKILLed daemon never leaves a stale lock). `None` means another
    /// live process holds it — this store is detached.
    lock: Option<std::fs::File>,
}

impl SummaryStore {
    /// Opens (or initializes) the store in `dir`, creating the directory
    /// if needed. A present-but-invalid store file is ignored — the
    /// session degrades to a cold run — and only *directory creation*
    /// failures are errors.
    ///
    /// An exclusive advisory lock is taken on `dir`'s lock file before
    /// reading. If another live process (a resident `safeflow serve`
    /// daemon, a concurrent `check`) already holds it, the store comes up
    /// **detached**: empty tables, [`SummaryStore::lock_busy`] set, and
    /// every save a no-op — the caller degrades to a cold run instead of
    /// racing the writer.
    pub(crate) fn open(dir: &Path) -> Result<SummaryStore, AnalysisError> {
        std::fs::create_dir_all(dir).map_err(|e| AnalysisError::Store {
            context: format!("creating store directory `{}`", dir.display()),
            source: Some(e),
        })?;
        let path = dir.join(STORE_FILE);
        let lock = acquire_lock(&dir.join(LOCK_FILE));
        let mut store = SummaryStore {
            path,
            manifests: Vec::new(),
            sccs: Vec::new(),
            load_rejected: false,
            lock,
        };
        if store.lock_busy() {
            // A concurrent writer owns the directory: do not even read the
            // file (a torn read is impossible — writes are atomic renames —
            // but replaying while the owner invalidates is still a
            // coherence hazard). Detached = cold.
            return Ok(store);
        }
        match std::fs::read(&store.path) {
            Ok(bytes) => match decode_store(&bytes) {
                Some((manifests, sccs)) => {
                    store.manifests = manifests;
                    store.sccs = sccs;
                }
                None => store.load_rejected = true,
            },
            // No file yet: a fresh store. Any other read error also
            // degrades to cold rather than failing the run.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(_) => store.load_rejected = true,
        }
        Ok(store)
    }

    /// Whether an existing store file was ignored as invalid.
    pub(crate) fn load_rejected(&self) -> bool {
        self.load_rejected
    }

    /// Whether another live process held the directory lock at open time
    /// (this store is detached: reads came up empty, saves are no-ops).
    pub(crate) fn lock_busy(&self) -> bool {
        self.lock.is_none()
    }

    /// Number of SCC entries loaded from disk.
    pub(crate) fn scc_count(&self) -> usize {
        self.sccs.len()
    }

    /// The replay entry under `key`, if any.
    pub(crate) fn manifest(&self, key: u64) -> Option<&ReplayEntry> {
        self.manifests.iter().find(|(k, _)| *k == key).map(|(_, e)| e)
    }

    /// All loaded SCC entries, for seeding the in-memory cache.
    pub(crate) fn scc_entries(&self) -> Vec<(u64, Arc<Vec<Summary>>)> {
        self.sccs.clone()
    }

    /// Records a finished clean run and writes the store file atomically
    /// (temp file + rename). `live_sccs` is the current run's live summary
    /// set — it *replaces* the SCC table, dropping entries the run no
    /// longer reaches (the invalidation count in the returned stats).
    pub(crate) fn save(
        &mut self,
        manifest_key: u64,
        entry: ReplayEntry,
        live_sccs: Vec<(u64, Arc<Vec<Summary>>)>,
    ) -> Result<SaveStats, AnalysisError> {
        if self.lock_busy() {
            // Detached store: another live process owns the directory.
            // Persisting here would race its atomic rename; skip silently
            // (the caller's run was cold anyway).
            return Ok(SaveStats::default());
        }
        let live: std::collections::HashSet<u64> = live_sccs.iter().map(|(k, _)| *k).collect();
        let stats = SaveStats {
            sccs_saved: live_sccs.len(),
            sccs_invalidated: self.sccs.iter().filter(|(k, _)| !live.contains(k)).count(),
        };
        self.manifests.retain(|(k, _)| *k != manifest_key);
        self.manifests.push((manifest_key, entry));
        if self.manifests.len() > MAX_MANIFESTS {
            let excess = self.manifests.len() - MAX_MANIFESTS;
            self.manifests.drain(..excess);
        }
        self.sccs = live_sccs;

        let bytes = encode_store(&self.manifests, &self.sccs);
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, &bytes).map_err(|e| AnalysisError::Store {
            context: format!("writing `{}`", tmp.display()),
            source: Some(e),
        })?;
        std::fs::rename(&tmp, &self.path).map_err(|e| AnalysisError::Store {
            context: format!("renaming into `{}`", self.path.display()),
            source: Some(e),
        })?;
        Ok(stats)
    }
}

/// Tries to take an exclusive advisory lock on `path` without blocking.
///
/// `Some(file)` = this process owns the store directory until the handle
/// drops. `None` = another live process holds the lock (a daemon or a
/// concurrent `check`); the caller must treat the store as detached.
/// Filesystems without lock support fall back to "acquired": the lock is
/// a coherence optimization, and the checksummed reader plus atomic
/// renames already make torn reads impossible.
fn acquire_lock(path: &Path) -> Option<std::fs::File> {
    let file = std::fs::OpenOptions::new().create(true).append(true).open(path).ok()?;
    match file.try_lock() {
        Ok(()) => Some(file),
        Err(std::fs::TryLockError::WouldBlock) => None,
        // Unsupported filesystem etc.: proceed unlocked (best effort).
        Err(std::fs::TryLockError::Error(_)) => Some(file),
    }
}

// ------------------------------------------------------------------ keys

/// Hash of every configuration knob that can change analysis *results*.
/// `jobs` is deliberately excluded (reports are identical for every worker
/// count — the byte-identity contract), as is `fault_plan` — the session
/// disables the store entirely when a plan is armed, because injected
/// faults make results non-reproducible. `budget.deadline_ms` is also
/// excluded: a deadline can only *degrade* a run, degraded runs are never
/// persisted, so every stored entry is identical to the unlimited-deadline
/// result — and `safeflow serve` varies the deadline per request, which
/// must not defeat warm replay.
pub(crate) fn config_hash(config: &crate::AnalysisConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_u32(STORE_VERSION);
    h.write_u8(match config.engine {
        crate::Engine::ContextSensitive => 0,
        crate::Engine::Summary => 1,
    });
    h.write_str(&config.entry);
    h.write_usize(config.max_contexts);
    h.write_u8(config.track_control_dependence as u8);
    // Hash the external-function lists in sorted order: configurations
    // that differ only in list order are the same configuration, and a
    // warm `safeflow check` must not miss replay over flag order. The
    // builder normalizes too, but hand-built configs reach here unsorted.
    let mut calls: Vec<_> = config.implicit_critical_calls.iter().collect();
    calls.sort();
    for call in calls {
        h.write_str(&call.name);
        h.write_usize(call.arg);
        h.write_str(call.clearance.as_deref().unwrap_or(""));
    }
    let mut recvs: Vec<_> = config.recv_functions.iter().collect();
    recvs.sort();
    for spec in recvs {
        h.write_str(&spec.name);
        h.write_usize(spec.sock_arg);
        h.write_usize(spec.buf_arg);
    }
    // The label policy, in normalized form: two policies differing only in
    // declaration order are the same policy and must warm-replay against
    // each other's stored entries (the flag-order rule, extended).
    let mut policy_bytes = Vec::new();
    config.policy.clone().normalized().encode_into(&mut policy_bytes);
    h.write(&policy_bytes);
    let mut deallocs: Vec<_> = config.dealloc_functions.iter().collect();
    deallocs.sort();
    for name in deallocs {
        h.write_str(name);
    }
    let mut attaches: Vec<_> = config.shm_attach_functions.iter().collect();
    attaches.sort();
    for name in attaches {
        h.write_str(name);
    }
    let b = &config.budget;
    h.write_u64(b.solver_steps.map(|v| v + 1).unwrap_or(0));
    h.write_u64(b.fixpoint_rounds.map(|v| v as u64 + 1).unwrap_or(0));
    h.write_u64(b.max_function_insts.map(|v| v as u64 + 1).unwrap_or(0));
    // b.deadline_ms deliberately not hashed — see the doc comment.
    h.finish()
}

/// Whole-program replay key: configuration + root + every input file's
/// name and content. `files` need not be sorted — the key sorts by name.
pub(crate) fn manifest_key(config_hash: u64, root: &str, files: &[(String, String)]) -> u64 {
    let mut named: Vec<(&str, &str)> =
        files.iter().map(|(n, c)| (n.as_str(), c.as_str())).collect();
    named.sort();
    let mut h = Fnv64::new();
    h.write_u64(config_hash);
    h.write_str(root);
    h.write_usize(named.len());
    for (name, content) in named {
        h.write_str(name);
        h.write_u64(safeflow_util::hash::hash_str(content));
    }
    h.finish()
}

// --------------------------------------------------------------- encoding

fn encode_store(manifests: &[(u64, ReplayEntry)], sccs: &[(u64, Arc<Vec<Summary>>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, STORE_VERSION);
    put_u32(&mut out, manifests.len() as u32);
    for (key, e) in manifests {
        put_u64(&mut out, *key);
        put_u8(&mut out, e.exit_code);
        put_u32(&mut out, e.counters.len() as u32);
        for (k, v) in &e.counters {
            put_str(&mut out, k);
            put_u64(&mut out, *v);
        }
        put_str(&mut out, &e.report_json);
        put_str(&mut out, &e.rendered);
        put_str(&mut out, &e.schema);
    }
    put_u32(&mut out, sccs.len() as u32);
    for (key, summaries) in sccs {
        put_u64(&mut out, *key);
        put_u32(&mut out, summaries.len() as u32);
        for s in summaries.iter() {
            s.encode(&mut out);
        }
    }
    let checksum = safeflow_util::hash::hash_bytes(&out);
    put_u64(&mut out, checksum);
    out
}

type Tables = (Vec<(u64, ReplayEntry)>, Vec<(u64, Arc<Vec<Summary>>)>);

fn decode_store(bytes: &[u8]) -> Option<Tables> {
    // Checksum covers everything before the trailing 8 bytes.
    if bytes.len() < MAGIC.len() + 8 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    if safeflow_util::hash::hash_bytes(body) != stored {
        return None;
    }
    let mut r = ByteReader::new(body);
    if r.take(MAGIC.len())? != MAGIC {
        return None;
    }
    if r.u32()? != STORE_VERSION {
        return None;
    }
    let mut manifests = Vec::new();
    for _ in 0..r.seq_len()? {
        let key = r.u64()?;
        let exit_code = r.u8()?;
        let mut counters = BTreeMap::new();
        for _ in 0..r.seq_len()? {
            let k = r.str()?;
            let v = r.u64()?;
            counters.insert(k, v);
        }
        let report_json = r.str()?;
        let rendered = r.str()?;
        let schema = r.str()?;
        manifests.push((key, ReplayEntry { exit_code, counters, report_json, rendered, schema }));
    }
    let mut sccs = Vec::new();
    for _ in 0..r.seq_len()? {
        let key = r.u64()?;
        let members = r.seq_len()?;
        let mut vec = Vec::with_capacity(members);
        for _ in 0..members {
            vec.push(Summary::decode(&mut r)?);
        }
        sccs.push((key, Arc::new(vec)));
    }
    if !r.done() {
        return None; // trailing garbage
    }
    Some((manifests, sccs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalysisConfig;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("safeflow-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_entry() -> ReplayEntry {
        let mut counters = BTreeMap::new();
        counters.insert("report.errors".to_string(), 2);
        ReplayEntry {
            exit_code: 2,
            counters,
            report_json: "{\"errors\": []}".to_string(),
            rendered: "SafeFlow report\n".to_string(),
            schema: "safeflow-report-v1".to_string(),
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = tmp_dir("roundtrip");
        let mut store = SummaryStore::open(&dir).unwrap();
        assert!(!store.load_rejected());
        assert_eq!(store.manifest(7), None);
        store.save(7, sample_entry(), Vec::new()).unwrap();
        drop(store); // release the writer lock before reopening

        let store2 = SummaryStore::open(&dir).unwrap();
        assert!(!store2.load_rejected());
        assert_eq!(store2.manifest(7), Some(&sample_entry()));
        assert_eq!(store2.manifest(8), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_truncated_files_are_rejected_not_fatal() {
        let dir = tmp_dir("corrupt");
        let mut store = SummaryStore::open(&dir).unwrap();
        store.save(7, sample_entry(), Vec::new()).unwrap();
        drop(store); // release the writer lock before reopening
        let path = dir.join(STORE_FILE);
        let good = std::fs::read(&path).unwrap();

        // Flip one byte anywhere: the checksum must catch it.
        for i in [0usize, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[i] ^= 0x5a;
            std::fs::write(&path, &bad).unwrap();
            let s = SummaryStore::open(&dir).unwrap();
            assert!(s.load_rejected(), "flipped byte {i} must reject");
            assert_eq!(s.manifest(7), None);
        }
        // Truncations at every prefix length.
        for cut in [0usize, 3, MAGIC.len(), good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            let s = SummaryStore::open(&dir).unwrap();
            assert!(s.manifest(7).is_none(), "truncation to {cut} bytes must come up empty");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_invalidates_everything() {
        let dir = tmp_dir("version");
        let mut store = SummaryStore::open(&dir).unwrap();
        store.save(7, sample_entry(), Vec::new()).unwrap();
        drop(store); // release the writer lock before reopening
        let path = dir.join(STORE_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Patch the version field (right after the magic) and re-checksum
        // so only the version differs.
        let v = STORE_VERSION + 1;
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&v.to_le_bytes());
        let body_len = bytes.len() - 8;
        let sum = safeflow_util::hash::hash_bytes(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let s = SummaryStore::open(&dir).unwrap();
        assert!(s.load_rejected());
        assert_eq!(s.manifest(7), None);
        assert_eq!(s.scc_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_replaces_sccs_and_counts_invalidations() {
        let dir = tmp_dir("invalidate");
        let mut store = SummaryStore::open(&dir).unwrap();
        let one = vec![(1u64, Arc::new(vec![Summary::default()]))];
        store.save(7, sample_entry(), one).unwrap();
        drop(store); // release the writer lock before reopening

        let mut store = SummaryStore::open(&dir).unwrap();
        assert_eq!(store.scc_count(), 1);
        let two = vec![
            (2u64, Arc::new(vec![Summary::default()])),
            (3u64, Arc::new(vec![Summary::default()])),
        ];
        let stats = store.save(8, sample_entry(), two).unwrap();
        assert_eq!(stats.sccs_saved, 2);
        assert_eq!(stats.sccs_invalidated, 1, "key 1 is no longer live");
        drop(store); // release the writer lock before reopening

        let store = SummaryStore::open(&dir).unwrap();
        assert_eq!(store.scc_count(), 2);
        // Both manifests are retained (bounded by MAX_MANIFESTS).
        assert!(store.manifest(7).is_some());
        assert!(store.manifest(8).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_key_tracks_contents_and_config() {
        let base = config_hash(&AnalysisConfig::default());
        let files =
            vec![("a.c".to_string(), "int x;".to_string()), ("b.h".to_string(), "".to_string())];
        let k = manifest_key(base, "a.c", &files);
        // Order-insensitive in the file list…
        let mut rev = files.clone();
        rev.reverse();
        assert_eq!(k, manifest_key(base, "a.c", &rev));
        // …but sensitive to contents, names, root, and config.
        let edited =
            vec![("a.c".to_string(), "int y;".to_string()), ("b.h".to_string(), "".to_string())];
        assert_ne!(k, manifest_key(base, "a.c", &edited));
        assert_ne!(k, manifest_key(base, "b.h", &files));
        let other = config_hash(&AnalysisConfig::builder().entry("start").build_config());
        assert_ne!(k, manifest_key(other, "a.c", &files));
    }

    #[test]
    fn config_hash_ignores_jobs_but_sees_budget() {
        let a = config_hash(&AnalysisConfig::default());
        let b = config_hash(&AnalysisConfig::default().with_jobs(8));
        assert_eq!(a, b, "jobs must not key the store (byte-identity across --jobs)");
        let c = config_hash(
            &AnalysisConfig::default()
                .with_budget(crate::Budget { solver_steps: Some(10), ..Default::default() }),
        );
        assert_ne!(a, c);
    }

    #[test]
    fn config_hash_ignores_deadline() {
        // Per-request deadlines (safeflow serve) can only degrade a run,
        // and degraded runs are never persisted — so two configs differing
        // only in deadline must share stored entries (warm replay).
        let a = config_hash(&AnalysisConfig::default());
        let b = config_hash(
            &AnalysisConfig::default()
                .with_budget(crate::Budget { deadline_ms: Some(50), ..Default::default() }),
        );
        assert_eq!(a, b, "deadline_ms must not key the store");
    }

    #[test]
    fn second_opener_detaches_while_lock_held() {
        let dir = tmp_dir("lock");
        let mut owner = SummaryStore::open(&dir).unwrap();
        assert!(!owner.lock_busy());
        owner.save(7, sample_entry(), Vec::new()).unwrap();

        // Same process, second open file description: the advisory lock
        // is still exclusive, so the racer comes up detached and cold.
        let mut racer = SummaryStore::open(&dir).unwrap();
        assert!(racer.lock_busy(), "concurrent opener must detect the held lock");
        assert_eq!(racer.manifest(7), None, "detached store reads nothing");
        assert_eq!(racer.scc_count(), 0);
        // Detached saves are silent no-ops: the owner's file is untouched.
        let stats = racer.save(8, sample_entry(), Vec::new()).unwrap();
        assert_eq!(stats, SaveStats::default());

        drop(owner);
        let reopened = SummaryStore::open(&dir).unwrap();
        assert!(!reopened.lock_busy(), "lock must release with the owner");
        assert_eq!(reopened.manifest(7), Some(&sample_entry()));
        assert_eq!(reopened.manifest(8), None, "the detached save must not have landed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_hash_ignores_list_order() {
        // Regression: external-function lists used to be hashed in the
        // order given, so the same configuration spelled with flags in a
        // different order missed warm replay.
        use crate::{CriticalCall, RecvSpec};
        let a = AnalysisConfig {
            implicit_critical_calls: vec![CriticalCall::new("kill", 0), CriticalCall::new("rb", 1)],
            recv_functions: vec![RecvSpec::new("recv", 0, 1), RecvSpec::new("read", 0, 1)],
            dealloc_functions: vec!["shmdt".into(), "shmctl".into()],
            shm_attach_functions: vec!["shmat".into(), "attach2".into()],
            ..Default::default()
        };
        let mut b = a.clone();
        b.implicit_critical_calls.reverse();
        b.recv_functions.reverse();
        b.dealloc_functions.reverse();
        b.shm_attach_functions.reverse();
        assert_eq!(config_hash(&a), config_hash(&b), "list order must not key the store");
        // Different *contents* still change the key.
        b.implicit_critical_calls.push(CriticalCall::new("abort", 0));
        assert_ne!(config_hash(&a), config_hash(&b));
    }

    #[test]
    fn config_hash_ignores_policy_declaration_order() {
        // Same rule as the flag-order regression above, extended to the
        // label policy: two policies differing only in the order labels or
        // declassifier pairs were declared are the same policy, and must
        // warm-replay against each other's stored entries.
        use crate::policy::Policy;
        let a = AnalysisConfig {
            policy: Policy::builder()
                .label("sensor_a")
                .label("sensor_b")
                .declassifier("sensor_a", "trusted")
                .declassifier("sensor_b", "trusted")
                .build(),
            ..Default::default()
        };
        let b = AnalysisConfig {
            policy: Policy::builder()
                .label("sensor_b")
                .label("sensor_a")
                .declassifier("sensor_b", "trusted")
                .declassifier("sensor_a", "trusted")
                .build(),
            ..Default::default()
        };
        assert_eq!(
            config_hash(&a),
            config_hash(&b),
            "policy declaration order must not key the store"
        );
        // A genuinely different policy still changes the key.
        let c = AnalysisConfig {
            policy: Policy::builder().label("sensor_a").build(),
            ..Default::default()
        };
        assert_ne!(config_hash(&a), config_hash(&c));
        // And the default (two-point) policy differs from any declared one.
        assert_ne!(config_hash(&c), config_hash(&AnalysisConfig::default()));
    }

    #[test]
    fn config_hash_sees_critical_call_clearance() {
        use crate::CriticalCall;
        let a = AnalysisConfig {
            implicit_critical_calls: vec![CriticalCall::new("kill", 0)],
            ..Default::default()
        };
        let b = AnalysisConfig {
            implicit_critical_calls: vec![CriticalCall::with_clearance("kill", 0, "fused")],
            ..Default::default()
        };
        assert_ne!(config_hash(&a), config_hash(&b), "clearance must key the store");
    }
}
