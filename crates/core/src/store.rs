//! Persistent on-disk summary store for incremental analysis.
//!
//! One store directory holds one file, `safeflow-store.bin`, a versioned,
//! checksummed, hand-rolled binary image with two tables:
//!
//! * **Replay manifests** — whole-program entries keyed by a hash over the
//!   store version, the analysis configuration, the root file name, and
//!   every input file's name + content hash. An exact match means *nothing*
//!   changed, so the session replays the stored report (text, JSON subtree,
//!   exit code, `Counter`-class metrics) without parsing a single file —
//!   zero SCCs re-analyzed.
//! * **SCC summaries** — per-SCC function-summary vectors keyed by the
//!   engine's Merkle content hashes ([`crate::engine::scc_hashes`]). When
//!   some inputs changed, the session seeds the in-memory
//!   [`crate::engine::SummaryCache`] from this table before analyzing;
//!   unchanged SCCs hit, the dirty region (the edited SCCs plus their
//!   transitive dependents, whose chained hashes moved) recomputes.
//!
//! The invalidation rule is entirely carried by the keys: an edit changes a
//! content hash, the stale entry simply never matches again and is dropped
//! at the next save. Staleness is therefore impossible by construction;
//! the failure mode of a damaged store is a **cold run**, never a wrong
//! one. The reader is fully defensive: a bad magic, version, checksum, or
//! any truncated/overlong field makes [`SummaryStore::open`] come up
//! empty (and report `load_rejected`), while *writing* problems surface as
//! [`AnalysisError::Store`].
//!
//! Degraded results (contained panics, exhausted budgets, injected faults)
//! are never written: the summary engine already refuses to cache tainted
//! SCCs, and the session skips the manifest save for any run whose exit
//! code signals degradation.

use crate::summary::Summary;
use crate::AnalysisError;
use safeflow_util::hash::Fnv64;
use std::collections::{BTreeMap, HashSet};
use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::sync::Arc;

// Binary encoding helpers live in `safeflow_util::wire` (shared with the
// `safeflow serve` protocol); re-exported here for the summary codec.
pub(crate) use safeflow_util::wire::{put_str, put_u32, put_u64, put_u8, ByteReader};

/// Store format version; bumped on any encoding change. A file with a
/// different version is ignored wholesale (everything invalidates).
/// v2: label-lattice policies — summary facts carry relabel masks,
/// replay manifests carry the report schema, and the config hash covers
/// the normalized policy and critical-call clearances.
pub const STORE_VERSION: u32 = 2;

const MAGIC: &[u8; 8] = b"SFSTORE\0";
const STORE_FILE: &str = "safeflow-store.bin";
const LOCK_FILE: &str = "safeflow-store.lock";

/// Magic for append-only segment files (`seg-<pid>-<n>.bin`), the
/// multi-writer half of the store: each shard worker appends freshly
/// computed SCC summaries to its own segment, peers poll the directory for
/// them mid-run, and the next exclusive [`SummaryStore::save`] folds the
/// surviving entries into the main file and compacts the segments away.
const SEG_MAGIC: &[u8; 8] = b"SFSEG\0\0\0";
const SEG_PREFIX: &str = "seg-";
const SEG_SUFFIX: &str = ".bin";

/// Cap on one segment record's payload. A length field beyond this is a
/// corrupt frame, not an allocation request.
const MAX_SEG_RECORD: u32 = 256 * 1024 * 1024;

/// Caps on table sizes, enforced on save so one store directory cannot
/// grow without bound across alternating roots/configs.
const MAX_MANIFESTS: usize = 64;

/// A whole-program replay entry: everything needed to reproduce a cold
/// run's user-visible output without re-analyzing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ReplayEntry {
    /// The run's exit code (always `< 3`: degraded runs are not stored).
    pub exit_code: u8,
    /// The run's `Counter`-class metrics — cache-state-invariant by
    /// definition, so replaying them verbatim preserves the warm/cold
    /// metrics contract.
    pub counters: BTreeMap<String, u64>,
    /// The rendered `report` subtree of the report document.
    pub report_json: String,
    /// The rendered human-readable report.
    pub rendered: String,
    /// The schema identifier of the stored document (`safeflow-report-v1`
    /// or `safeflow-report-v2`): per program, not per config — annotations
    /// can declare labels — so replay must restore it verbatim.
    pub schema: String,
}

/// Statistics from the most recent [`SummaryStore::save`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SaveStats {
    /// SCC entries written.
    pub sccs_saved: usize,
    /// Previously loaded SCC entries dropped because no longer live.
    pub sccs_invalidated: usize,
    /// Segment files deleted by the post-save compaction pass.
    pub segments_compacted: usize,
}

/// The persistent store bound to one directory.
#[derive(Debug)]
pub(crate) struct SummaryStore {
    path: PathBuf,
    manifests: Vec<(u64, ReplayEntry)>,
    sccs: Vec<(u64, Arc<Vec<Summary>>)>,
    /// `true` when a store file existed but failed validation (bad magic /
    /// version / checksum / truncation) and was ignored.
    load_rejected: bool,
    /// Advisory writer lock on the directory, held for the store's
    /// lifetime (released by the OS on drop *and* on process death, so a
    /// SIGKILLed daemon never leaves a stale lock). `None` means another
    /// live process holds it — this store is detached.
    lock: Option<std::fs::File>,
    /// `true` for stores opened via [`SummaryStore::open_shared`]: readers
    /// that coexist with other shard workers. Shared stores never write
    /// the main file — publication goes through [`SegmentWriter`]s.
    shared: bool,
    /// SCC entries folded in from segment files at open time (crash
    /// recovery for the exclusive open, peer pickup for the shared one).
    segment_entries: usize,
}

impl SummaryStore {
    /// Opens (or initializes) the store in `dir`, creating the directory
    /// if needed. A present-but-invalid store file is ignored — the
    /// session degrades to a cold run — and only *directory creation*
    /// failures are errors.
    ///
    /// An exclusive advisory lock is taken on `dir`'s lock file before
    /// reading. If another live process (a resident `safeflow serve`
    /// daemon, a concurrent `check`) already holds it, the store comes up
    /// **detached**: empty tables, [`SummaryStore::lock_busy`] set, and
    /// every save a no-op — the caller degrades to a cold run instead of
    /// racing the writer.
    pub(crate) fn open(dir: &Path) -> Result<SummaryStore, AnalysisError> {
        std::fs::create_dir_all(dir).map_err(|e| AnalysisError::Store {
            context: format!("creating store directory `{}`", dir.display()),
            source: Some(e),
        })?;
        let path = dir.join(STORE_FILE);
        let lock = acquire_lock(&dir.join(LOCK_FILE));
        let mut store = SummaryStore {
            path,
            manifests: Vec::new(),
            sccs: Vec::new(),
            load_rejected: false,
            lock,
            shared: false,
            segment_entries: 0,
        };
        if store.lock_busy() {
            // A concurrent writer owns the directory: do not even read the
            // file (a torn read is impossible — writes are atomic renames —
            // but replaying while the owner invalidates is still a
            // coherence hazard). Detached = cold.
            return Ok(store);
        }
        store.read_main_file();
        // Fold in whatever segment files previous (possibly killed) shard
        // workers left behind: every complete checksummed record is a
        // valid content-addressed entry, so crash recovery is simply
        // "absorb the valid prefixes". The next save compacts them away.
        store.absorb_segments();
        Ok(store)
    }

    /// Opens the store in `dir` for **shared** reading: a shard worker
    /// that coexists with other workers under a coordinator. Takes the
    /// directory lock *shared* — any number of workers attach together,
    /// while an exclusive owner (a resident daemon, a plain `check`)
    /// forces detachment exactly like [`SummaryStore::open`]. Shared
    /// stores read the main file plus every valid segment prefix, and
    /// never write the main file ([`SummaryStore::save`] is a no-op);
    /// workers publish through their own [`SegmentWriter`] instead.
    pub(crate) fn open_shared(dir: &Path) -> Result<SummaryStore, AnalysisError> {
        std::fs::create_dir_all(dir).map_err(|e| AnalysisError::Store {
            context: format!("creating store directory `{}`", dir.display()),
            source: Some(e),
        })?;
        let path = dir.join(STORE_FILE);
        let lock = acquire_shared_lock(&dir.join(LOCK_FILE));
        let mut store = SummaryStore {
            path,
            manifests: Vec::new(),
            sccs: Vec::new(),
            load_rejected: false,
            lock,
            shared: true,
            segment_entries: 0,
        };
        if store.lock_busy() {
            return Ok(store);
        }
        store.read_main_file();
        store.absorb_segments();
        Ok(store)
    }

    /// Reads and decodes the main store file into the tables (defensive:
    /// any validation failure comes up empty with `load_rejected` set).
    fn read_main_file(&mut self) {
        match std::fs::read(&self.path) {
            Ok(bytes) => match decode_store(&bytes) {
                Some((manifests, sccs)) => {
                    self.manifests = manifests;
                    self.sccs = sccs;
                }
                None => self.load_rejected = true,
            },
            // No file yet: a fresh store. Any other read error also
            // degrades to cold rather than failing the run.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(_) => self.load_rejected = true,
        }
    }

    /// Folds every valid segment record in the directory into the SCC
    /// table. Keys are content hashes, so duplicates are interchangeable;
    /// the main file's entry wins ties purely for determinism of the
    /// in-memory order.
    fn absorb_segments(&mut self) {
        let Some(dir) = self.path.parent().map(Path::to_path_buf) else { return };
        let mut scanner = SegmentScanner::new(&dir, None);
        let mut seen: HashSet<u64> = self.sccs.iter().map(|(k, _)| *k).collect();
        for (key, summaries) in scanner.poll() {
            if seen.insert(key) {
                self.sccs.push((key, summaries));
                self.segment_entries += 1;
            }
        }
    }

    /// SCC entries folded in from segment files at open time.
    pub(crate) fn segment_entries(&self) -> usize {
        self.segment_entries
    }

    /// Whether an existing store file was ignored as invalid.
    pub(crate) fn load_rejected(&self) -> bool {
        self.load_rejected
    }

    /// Whether another live process held the directory lock at open time
    /// (this store is detached: reads came up empty, saves are no-ops).
    pub(crate) fn lock_busy(&self) -> bool {
        self.lock.is_none()
    }

    /// Number of SCC entries loaded from disk.
    pub(crate) fn scc_count(&self) -> usize {
        self.sccs.len()
    }

    /// The replay entry under `key`, if any.
    pub(crate) fn manifest(&self, key: u64) -> Option<&ReplayEntry> {
        self.manifests.iter().find(|(k, _)| *k == key).map(|(_, e)| e)
    }

    /// All loaded SCC entries, for seeding the in-memory cache.
    pub(crate) fn scc_entries(&self) -> Vec<(u64, Arc<Vec<Summary>>)> {
        self.sccs.clone()
    }

    /// Records a finished clean run and writes the store file atomically
    /// (temp file + rename). `live_sccs` is the current run's live summary
    /// set — it *replaces* the SCC table, dropping entries the run no
    /// longer reaches (the invalidation count in the returned stats).
    pub(crate) fn save(
        &mut self,
        manifest_key: u64,
        entry: ReplayEntry,
        live_sccs: Vec<(u64, Arc<Vec<Summary>>)>,
    ) -> Result<SaveStats, AnalysisError> {
        if self.lock_busy() || self.shared {
            // Detached store: another live process owns the directory.
            // Persisting here would race its atomic rename; skip silently
            // (the caller's run was cold anyway). Shared stores are
            // readers by construction — workers publish via segments.
            return Ok(SaveStats::default());
        }
        let live: HashSet<u64> = live_sccs.iter().map(|(k, _)| *k).collect();
        let mut stats = SaveStats {
            sccs_saved: live_sccs.len(),
            sccs_invalidated: self.sccs.iter().filter(|(k, _)| !live.contains(k)).count(),
            segments_compacted: 0,
        };
        self.manifests.retain(|(k, _)| *k != manifest_key);
        self.manifests.push((manifest_key, entry));
        if self.manifests.len() > MAX_MANIFESTS {
            let excess = self.manifests.len() - MAX_MANIFESTS;
            self.manifests.drain(..excess);
        }
        self.sccs = live_sccs;

        let bytes = encode_store(&self.manifests, &self.sccs);
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, &bytes).map_err(|e| AnalysisError::Store {
            context: format!("writing `{}`", tmp.display()),
            source: Some(e),
        })?;
        std::fs::rename(&tmp, &self.path).map_err(|e| AnalysisError::Store {
            context: format!("renaming into `{}`", self.path.display()),
            source: Some(e),
        })?;
        // Compaction: the rename above persisted everything this run
        // keeps, so segment files are now redundant *unless* a live
        // writer is still appending to one. Each writer holds an
        // exclusive advisory lock on its own segment for its lifetime —
        // probe it: acquirable means the writer is gone (finished or
        // SIGKILLed, either way the lock died with it) and the file can
        // go; `WouldBlock` means live, leave it for the next save.
        stats.segments_compacted = compact_segments(self.path.parent());
        Ok(stats)
    }
}

/// Deletes every segment file in `dir` whose writer no longer holds its
/// exclusive lock. Returns the number of files removed; all I/O errors
/// are swallowed (compaction is best-effort garbage collection).
fn compact_segments(dir: Option<&Path>) -> usize {
    let Some(dir) = dir else { return 0 };
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    let mut removed = 0;
    for entry in entries.filter_map(|e| e.ok()) {
        let name = entry.file_name();
        let s = name.to_string_lossy();
        if !s.starts_with(SEG_PREFIX) || !s.ends_with(SEG_SUFFIX) {
            continue;
        }
        let path = entry.path();
        let Ok(file) = std::fs::OpenOptions::new().read(true).open(&path) else { continue };
        match file.try_lock() {
            Ok(()) | Err(std::fs::TryLockError::Error(_)) => {
                if std::fs::remove_file(&path).is_ok() {
                    removed += 1;
                }
            }
            Err(std::fs::TryLockError::WouldBlock) => {} // live writer
        }
    }
    removed
}

/// Tries to take an exclusive advisory lock on `path` without blocking.
///
/// `Some(file)` = this process owns the store directory until the handle
/// drops. `None` = another live process holds the lock (a daemon or a
/// concurrent `check`); the caller must treat the store as detached.
/// Filesystems without lock support fall back to "acquired": the lock is
/// a coherence optimization, and the checksummed reader plus atomic
/// renames already make torn reads impossible.
fn acquire_lock(path: &Path) -> Option<std::fs::File> {
    let file = std::fs::OpenOptions::new().create(true).append(true).open(path).ok()?;
    match file.try_lock() {
        Ok(()) => Some(file),
        Err(std::fs::TryLockError::WouldBlock) => None,
        // Unsupported filesystem etc.: proceed unlocked (best effort).
        Err(std::fs::TryLockError::Error(_)) => Some(file),
    }
}

/// The shared-mode counterpart of [`acquire_lock`]: any number of shard
/// workers hold this together, while an exclusive holder (daemon, plain
/// `check`, the coordinator outside its worker window) forces `None`.
fn acquire_shared_lock(path: &Path) -> Option<std::fs::File> {
    let file = std::fs::OpenOptions::new().create(true).append(true).open(path).ok()?;
    match file.try_lock_shared() {
        Ok(()) => Some(file),
        Err(std::fs::TryLockError::WouldBlock) => None,
        Err(std::fs::TryLockError::Error(_)) => Some(file),
    }
}

// -------------------------------------------------------------- segments

/// One shard worker's append-only output file.
///
/// The file is created `create_new` under a unique `seg-<pid>-<n>.bin`
/// name, so writers never contend for a file, and an exclusive advisory
/// lock is held on it for the writer's lifetime: that lock is the
/// liveness signal compaction probes (released by the OS on drop and on
/// process death, so SIGKILLed workers leave reclaimable segments, never
/// stale locks). Records are framed `[u32 len][payload][u64 fnv64]` after
/// an 12-byte magic+version header; readers accept any valid prefix, so a
/// worker killed mid-append loses at most its last record.
#[derive(Debug)]
pub(crate) struct SegmentWriter {
    file: std::fs::File,
    path: PathBuf,
    records: usize,
}

impl SegmentWriter {
    /// Creates a fresh segment in `dir` (which must already exist — it is
    /// the store directory the worker attached to).
    pub(crate) fn create(dir: &Path) -> Result<SegmentWriter, AnalysisError> {
        let pid = std::process::id();
        for seq in 0u32.. {
            let path = dir.join(format!("{SEG_PREFIX}{pid}-{seq}{SEG_SUFFIX}"));
            match std::fs::OpenOptions::new().create_new(true).append(true).open(&path) {
                Ok(file) => {
                    // Liveness lock (see type docs). Uncontended: the file
                    // did not exist a moment ago. Best-effort on
                    // filesystems without lock support — compaction then
                    // reclaims the segment at the *next* save, which is
                    // still correct, just later.
                    let _ = file.try_lock();
                    let mut writer = SegmentWriter { file, path, records: 0 };
                    let mut header = Vec::with_capacity(SEG_MAGIC.len() + 4);
                    header.extend_from_slice(SEG_MAGIC);
                    put_u32(&mut header, STORE_VERSION);
                    writer.append(&header)?;
                    return Ok(writer);
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => {
                    return Err(AnalysisError::Store {
                        context: format!("creating segment `{}`", path.display()),
                        source: Some(e),
                    })
                }
            }
        }
        unreachable!("u32 sequence space exhausted")
    }

    /// Appends one checksummed SCC record and flushes it to the OS, so
    /// peers polling the directory observe it promptly.
    pub(crate) fn publish(&mut self, key: u64, summaries: &[Summary]) -> Result<(), AnalysisError> {
        let mut payload = Vec::new();
        put_u64(&mut payload, key);
        put_u32(&mut payload, summaries.len() as u32);
        for s in summaries {
            s.encode(&mut payload);
        }
        let mut frame = Vec::with_capacity(payload.len() + 12);
        put_u32(&mut frame, payload.len() as u32);
        frame.extend_from_slice(&payload);
        put_u64(&mut frame, safeflow_util::hash::hash_bytes(&payload));
        self.append(&frame)?;
        self.records += 1;
        Ok(())
    }

    /// Number of records published so far.
    pub(crate) fn records(&self) -> usize {
        self.records
    }

    /// This segment's file path (excluded from the owner's own scans).
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), AnalysisError> {
        use std::io::Write;
        self.file.write_all(bytes).and_then(|()| self.file.flush()).map_err(|e| {
            AnalysisError::Store {
                context: format!("appending to segment `{}`", self.path.display()),
                source: Some(e),
            }
        })
    }
}

/// Incremental reader over every segment file in a store directory.
///
/// Each `poll` re-scans the directory and returns only the records that
/// appeared since the previous poll (per-file byte offsets). Semantics
/// per file are *valid prefix*: an incomplete tail frame is simply not
/// there yet (the offset stays put and the next poll retries), while a
/// checksum mismatch, an implausible length, a bad header, or a shrunk
/// file marks that segment **dead** — records decoded before the damage
/// remain valid, nothing after it is trusted.
#[derive(Debug)]
pub(crate) struct SegmentScanner {
    dir: PathBuf,
    /// The caller's own segment file name, skipped during scans.
    skip: Option<std::ffi::OsString>,
    files: BTreeMap<std::ffi::OsString, SegFileState>,
}

#[derive(Debug, Default)]
struct SegFileState {
    offset: usize,
    dead: bool,
}

impl SegmentScanner {
    /// A scanner over `dir`, ignoring `own` (the caller's own segment).
    pub(crate) fn new(dir: &Path, own: Option<&Path>) -> SegmentScanner {
        SegmentScanner {
            dir: dir.to_path_buf(),
            skip: own.and_then(Path::file_name).map(|n| n.to_os_string()),
            files: BTreeMap::new(),
        }
    }

    /// Returns every record appended (in any segment) since the last
    /// poll, in deterministic (file name, file order) order.
    pub(crate) fn poll(&mut self) -> Vec<(u64, Arc<Vec<Summary>>)> {
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return out };
        let mut names: Vec<std::ffi::OsString> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name())
            .filter(|n| {
                let s = n.to_string_lossy();
                s.starts_with(SEG_PREFIX) && s.ends_with(SEG_SUFFIX)
            })
            .collect();
        names.sort();
        for name in names {
            if self.skip.as_deref() == Some(name.as_os_str()) {
                continue;
            }
            let state = self.files.entry(name.clone()).or_default();
            if state.dead {
                continue;
            }
            let Ok(bytes) = std::fs::read(self.dir.join(&name)) else { continue };
            scan_segment(&bytes, state, &mut out);
        }
        out
    }
}

/// Decodes the complete, checksummed records between `state.offset` and
/// the end of `bytes` (see [`SegmentScanner`] for the prefix semantics).
fn scan_segment(bytes: &[u8], state: &mut SegFileState, out: &mut Vec<(u64, Arc<Vec<Summary>>)>) {
    if bytes.len() < state.offset {
        state.dead = true; // the file shrank: not append-only, distrust it
        return;
    }
    if state.offset == 0 {
        let header_len = SEG_MAGIC.len() + 4;
        if bytes.len() < header_len {
            return; // header still in flight
        }
        if &bytes[..SEG_MAGIC.len()] != SEG_MAGIC
            || bytes[SEG_MAGIC.len()..header_len] != STORE_VERSION.to_le_bytes()
        {
            state.dead = true;
            return;
        }
        state.offset = header_len;
    }
    loop {
        let rest = &bytes[state.offset..];
        if rest.len() < 4 {
            return;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        if len > MAX_SEG_RECORD {
            state.dead = true;
            return;
        }
        let total = 4 + len as usize + 8;
        if rest.len() < total {
            return; // incomplete tail: the writer is mid-append, retry
        }
        let payload = &rest[4..4 + len as usize];
        let stored = u64::from_le_bytes(rest[4 + len as usize..total].try_into().unwrap());
        if safeflow_util::hash::hash_bytes(payload) != stored {
            state.dead = true;
            return;
        }
        let decoded = (|| {
            let mut r = ByteReader::new(payload);
            let key = r.u64()?;
            let members = r.seq_len()?;
            let mut vec = Vec::with_capacity(members);
            for _ in 0..members {
                vec.push(Summary::decode(&mut r)?);
            }
            r.done().then(|| (key, Arc::new(vec)))
        })();
        let Some(entry) = decoded else {
            state.dead = true; // checksum passed but the payload is garbage
            return;
        };
        out.push(entry);
        state.offset += total;
    }
}

// ------------------------------------------------------------------ keys

/// Hash of every configuration knob that can change analysis *results*.
/// `jobs` is deliberately excluded (reports are identical for every worker
/// count — the byte-identity contract), as is `fault_plan` — the session
/// disables the store entirely when a plan is armed, because injected
/// faults make results non-reproducible. `budget.deadline_ms` is also
/// excluded: a deadline can only *degrade* a run, degraded runs are never
/// persisted, so every stored entry is identical to the unlimited-deadline
/// result — and `safeflow serve` varies the deadline per request, which
/// must not defeat warm replay.
pub(crate) fn config_hash(config: &crate::AnalysisConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_u32(STORE_VERSION);
    h.write_u8(match config.engine {
        crate::Engine::ContextSensitive => 0,
        crate::Engine::Summary => 1,
    });
    h.write_str(&config.entry);
    h.write_usize(config.max_contexts);
    h.write_u8(config.track_control_dependence as u8);
    // Hash the external-function lists in sorted order: configurations
    // that differ only in list order are the same configuration, and a
    // warm `safeflow check` must not miss replay over flag order. The
    // builder normalizes too, but hand-built configs reach here unsorted.
    let mut calls: Vec<_> = config.implicit_critical_calls.iter().collect();
    calls.sort();
    for call in calls {
        h.write_str(&call.name);
        h.write_usize(call.arg);
        h.write_str(call.clearance.as_deref().unwrap_or(""));
    }
    let mut recvs: Vec<_> = config.recv_functions.iter().collect();
    recvs.sort();
    for spec in recvs {
        h.write_str(&spec.name);
        h.write_usize(spec.sock_arg);
        h.write_usize(spec.buf_arg);
    }
    // The label policy, in normalized form: two policies differing only in
    // declaration order are the same policy and must warm-replay against
    // each other's stored entries (the flag-order rule, extended).
    let mut policy_bytes = Vec::new();
    config.policy.clone().normalized().encode_into(&mut policy_bytes);
    h.write(&policy_bytes);
    let mut deallocs: Vec<_> = config.dealloc_functions.iter().collect();
    deallocs.sort();
    for name in deallocs {
        h.write_str(name);
    }
    let mut attaches: Vec<_> = config.shm_attach_functions.iter().collect();
    attaches.sort();
    for name in attaches {
        h.write_str(name);
    }
    let b = &config.budget;
    h.write_u64(b.solver_steps.map(|v| v + 1).unwrap_or(0));
    h.write_u64(b.fixpoint_rounds.map(|v| v as u64 + 1).unwrap_or(0));
    h.write_u64(b.max_function_insts.map(|v| v as u64 + 1).unwrap_or(0));
    // b.deadline_ms deliberately not hashed — see the doc comment.
    h.finish()
}

/// Whole-program replay key: configuration + root + every input file's
/// name and content. `files` need not be sorted — the key sorts by name.
pub(crate) fn manifest_key(config_hash: u64, root: &str, files: &[(String, String)]) -> u64 {
    let mut named: Vec<(&str, &str)> =
        files.iter().map(|(n, c)| (n.as_str(), c.as_str())).collect();
    named.sort();
    let mut h = Fnv64::new();
    h.write_u64(config_hash);
    h.write_str(root);
    h.write_usize(named.len());
    for (name, content) in named {
        h.write_str(name);
        h.write_u64(safeflow_util::hash::hash_str(content));
    }
    h.finish()
}

// --------------------------------------------------------------- encoding

fn encode_store(manifests: &[(u64, ReplayEntry)], sccs: &[(u64, Arc<Vec<Summary>>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, STORE_VERSION);
    put_u32(&mut out, manifests.len() as u32);
    for (key, e) in manifests {
        put_u64(&mut out, *key);
        put_u8(&mut out, e.exit_code);
        put_u32(&mut out, e.counters.len() as u32);
        for (k, v) in &e.counters {
            put_str(&mut out, k);
            put_u64(&mut out, *v);
        }
        put_str(&mut out, &e.report_json);
        put_str(&mut out, &e.rendered);
        put_str(&mut out, &e.schema);
    }
    put_u32(&mut out, sccs.len() as u32);
    for (key, summaries) in sccs {
        put_u64(&mut out, *key);
        put_u32(&mut out, summaries.len() as u32);
        for s in summaries.iter() {
            s.encode(&mut out);
        }
    }
    let checksum = safeflow_util::hash::hash_bytes(&out);
    put_u64(&mut out, checksum);
    out
}

type Tables = (Vec<(u64, ReplayEntry)>, Vec<(u64, Arc<Vec<Summary>>)>);

fn decode_store(bytes: &[u8]) -> Option<Tables> {
    // Checksum covers everything before the trailing 8 bytes.
    if bytes.len() < MAGIC.len() + 8 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    if safeflow_util::hash::hash_bytes(body) != stored {
        return None;
    }
    let mut r = ByteReader::new(body);
    if r.take(MAGIC.len())? != MAGIC {
        return None;
    }
    if r.u32()? != STORE_VERSION {
        return None;
    }
    let mut manifests = Vec::new();
    for _ in 0..r.seq_len()? {
        let key = r.u64()?;
        let exit_code = r.u8()?;
        let mut counters = BTreeMap::new();
        for _ in 0..r.seq_len()? {
            let k = r.str()?;
            let v = r.u64()?;
            counters.insert(k, v);
        }
        let report_json = r.str()?;
        let rendered = r.str()?;
        let schema = r.str()?;
        manifests.push((key, ReplayEntry { exit_code, counters, report_json, rendered, schema }));
    }
    let mut sccs = Vec::new();
    for _ in 0..r.seq_len()? {
        let key = r.u64()?;
        let members = r.seq_len()?;
        let mut vec = Vec::with_capacity(members);
        for _ in 0..members {
            vec.push(Summary::decode(&mut r)?);
        }
        sccs.push((key, Arc::new(vec)));
    }
    if !r.done() {
        return None; // trailing garbage
    }
    Some((manifests, sccs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalysisConfig;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("safeflow-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_entry() -> ReplayEntry {
        let mut counters = BTreeMap::new();
        counters.insert("report.errors".to_string(), 2);
        ReplayEntry {
            exit_code: 2,
            counters,
            report_json: "{\"errors\": []}".to_string(),
            rendered: "SafeFlow report\n".to_string(),
            schema: "safeflow-report-v1".to_string(),
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = tmp_dir("roundtrip");
        let mut store = SummaryStore::open(&dir).unwrap();
        assert!(!store.load_rejected());
        assert_eq!(store.manifest(7), None);
        store.save(7, sample_entry(), Vec::new()).unwrap();
        drop(store); // release the writer lock before reopening

        let store2 = SummaryStore::open(&dir).unwrap();
        assert!(!store2.load_rejected());
        assert_eq!(store2.manifest(7), Some(&sample_entry()));
        assert_eq!(store2.manifest(8), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_truncated_files_are_rejected_not_fatal() {
        let dir = tmp_dir("corrupt");
        let mut store = SummaryStore::open(&dir).unwrap();
        store.save(7, sample_entry(), Vec::new()).unwrap();
        drop(store); // release the writer lock before reopening
        let path = dir.join(STORE_FILE);
        let good = std::fs::read(&path).unwrap();

        // Flip one byte anywhere: the checksum must catch it.
        for i in [0usize, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[i] ^= 0x5a;
            std::fs::write(&path, &bad).unwrap();
            let s = SummaryStore::open(&dir).unwrap();
            assert!(s.load_rejected(), "flipped byte {i} must reject");
            assert_eq!(s.manifest(7), None);
        }
        // Truncations at every prefix length.
        for cut in [0usize, 3, MAGIC.len(), good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            let s = SummaryStore::open(&dir).unwrap();
            assert!(s.manifest(7).is_none(), "truncation to {cut} bytes must come up empty");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_invalidates_everything() {
        let dir = tmp_dir("version");
        let mut store = SummaryStore::open(&dir).unwrap();
        store.save(7, sample_entry(), Vec::new()).unwrap();
        drop(store); // release the writer lock before reopening
        let path = dir.join(STORE_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Patch the version field (right after the magic) and re-checksum
        // so only the version differs.
        let v = STORE_VERSION + 1;
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&v.to_le_bytes());
        let body_len = bytes.len() - 8;
        let sum = safeflow_util::hash::hash_bytes(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let s = SummaryStore::open(&dir).unwrap();
        assert!(s.load_rejected());
        assert_eq!(s.manifest(7), None);
        assert_eq!(s.scc_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_replaces_sccs_and_counts_invalidations() {
        let dir = tmp_dir("invalidate");
        let mut store = SummaryStore::open(&dir).unwrap();
        let one = vec![(1u64, Arc::new(vec![Summary::default()]))];
        store.save(7, sample_entry(), one).unwrap();
        drop(store); // release the writer lock before reopening

        let mut store = SummaryStore::open(&dir).unwrap();
        assert_eq!(store.scc_count(), 1);
        let two = vec![
            (2u64, Arc::new(vec![Summary::default()])),
            (3u64, Arc::new(vec![Summary::default()])),
        ];
        let stats = store.save(8, sample_entry(), two).unwrap();
        assert_eq!(stats.sccs_saved, 2);
        assert_eq!(stats.sccs_invalidated, 1, "key 1 is no longer live");
        drop(store); // release the writer lock before reopening

        let store = SummaryStore::open(&dir).unwrap();
        assert_eq!(store.scc_count(), 2);
        // Both manifests are retained (bounded by MAX_MANIFESTS).
        assert!(store.manifest(7).is_some());
        assert!(store.manifest(8).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_key_tracks_contents_and_config() {
        let base = config_hash(&AnalysisConfig::default());
        let files =
            vec![("a.c".to_string(), "int x;".to_string()), ("b.h".to_string(), "".to_string())];
        let k = manifest_key(base, "a.c", &files);
        // Order-insensitive in the file list…
        let mut rev = files.clone();
        rev.reverse();
        assert_eq!(k, manifest_key(base, "a.c", &rev));
        // …but sensitive to contents, names, root, and config.
        let edited =
            vec![("a.c".to_string(), "int y;".to_string()), ("b.h".to_string(), "".to_string())];
        assert_ne!(k, manifest_key(base, "a.c", &edited));
        assert_ne!(k, manifest_key(base, "b.h", &files));
        let other = config_hash(&AnalysisConfig::builder().entry("start").build_config());
        assert_ne!(k, manifest_key(other, "a.c", &files));
    }

    #[test]
    fn config_hash_ignores_jobs_but_sees_budget() {
        let a = config_hash(&AnalysisConfig::default());
        let b = config_hash(&AnalysisConfig::default().with_jobs(8));
        assert_eq!(a, b, "jobs must not key the store (byte-identity across --jobs)");
        let c = config_hash(
            &AnalysisConfig::default()
                .with_budget(crate::Budget { solver_steps: Some(10), ..Default::default() }),
        );
        assert_ne!(a, c);
    }

    #[test]
    fn config_hash_ignores_deadline() {
        // Per-request deadlines (safeflow serve) can only degrade a run,
        // and degraded runs are never persisted — so two configs differing
        // only in deadline must share stored entries (warm replay).
        let a = config_hash(&AnalysisConfig::default());
        let b = config_hash(
            &AnalysisConfig::default()
                .with_budget(crate::Budget { deadline_ms: Some(50), ..Default::default() }),
        );
        assert_eq!(a, b, "deadline_ms must not key the store");
    }

    #[test]
    fn second_opener_detaches_while_lock_held() {
        let dir = tmp_dir("lock");
        let mut owner = SummaryStore::open(&dir).unwrap();
        assert!(!owner.lock_busy());
        owner.save(7, sample_entry(), Vec::new()).unwrap();

        // Same process, second open file description: the advisory lock
        // is still exclusive, so the racer comes up detached and cold.
        let mut racer = SummaryStore::open(&dir).unwrap();
        assert!(racer.lock_busy(), "concurrent opener must detect the held lock");
        assert_eq!(racer.manifest(7), None, "detached store reads nothing");
        assert_eq!(racer.scc_count(), 0);
        // Detached saves are silent no-ops: the owner's file is untouched.
        let stats = racer.save(8, sample_entry(), Vec::new()).unwrap();
        assert_eq!(stats, SaveStats::default());

        drop(owner);
        let reopened = SummaryStore::open(&dir).unwrap();
        assert!(!reopened.lock_busy(), "lock must release with the owner");
        assert_eq!(reopened.manifest(7), Some(&sample_entry()));
        assert_eq!(reopened.manifest(8), None, "the detached save must not have landed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_hash_ignores_list_order() {
        // Regression: external-function lists used to be hashed in the
        // order given, so the same configuration spelled with flags in a
        // different order missed warm replay.
        use crate::{CriticalCall, RecvSpec};
        let a = AnalysisConfig {
            implicit_critical_calls: vec![CriticalCall::new("kill", 0), CriticalCall::new("rb", 1)],
            recv_functions: vec![RecvSpec::new("recv", 0, 1), RecvSpec::new("read", 0, 1)],
            dealloc_functions: vec!["shmdt".into(), "shmctl".into()],
            shm_attach_functions: vec!["shmat".into(), "attach2".into()],
            ..Default::default()
        };
        let mut b = a.clone();
        b.implicit_critical_calls.reverse();
        b.recv_functions.reverse();
        b.dealloc_functions.reverse();
        b.shm_attach_functions.reverse();
        assert_eq!(config_hash(&a), config_hash(&b), "list order must not key the store");
        // Different *contents* still change the key.
        b.implicit_critical_calls.push(CriticalCall::new("abort", 0));
        assert_ne!(config_hash(&a), config_hash(&b));
    }

    #[test]
    fn config_hash_ignores_policy_declaration_order() {
        // Same rule as the flag-order regression above, extended to the
        // label policy: two policies differing only in the order labels or
        // declassifier pairs were declared are the same policy, and must
        // warm-replay against each other's stored entries.
        use crate::policy::Policy;
        let a = AnalysisConfig {
            policy: Policy::builder()
                .label("sensor_a")
                .label("sensor_b")
                .declassifier("sensor_a", "trusted")
                .declassifier("sensor_b", "trusted")
                .build(),
            ..Default::default()
        };
        let b = AnalysisConfig {
            policy: Policy::builder()
                .label("sensor_b")
                .label("sensor_a")
                .declassifier("sensor_b", "trusted")
                .declassifier("sensor_a", "trusted")
                .build(),
            ..Default::default()
        };
        assert_eq!(
            config_hash(&a),
            config_hash(&b),
            "policy declaration order must not key the store"
        );
        // A genuinely different policy still changes the key.
        let c = AnalysisConfig {
            policy: Policy::builder().label("sensor_a").build(),
            ..Default::default()
        };
        assert_ne!(config_hash(&a), config_hash(&c));
        // And the default (two-point) policy differs from any declared one.
        assert_ne!(config_hash(&c), config_hash(&AnalysisConfig::default()));
    }

    #[test]
    fn segments_round_trip_incrementally() {
        let dir = tmp_dir("seg-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = SegmentWriter::create(&dir).unwrap();
        w.publish(11, &[Summary::default()]).unwrap();
        w.publish(22, &[Summary::default(), Summary::default()]).unwrap();
        assert_eq!(w.records(), 2);

        let mut scanner = SegmentScanner::new(&dir, None);
        let got = scanner.poll();
        assert_eq!(got.iter().map(|(k, v)| (*k, v.len())).collect::<Vec<_>>(), [(11, 1), (22, 2)]);
        // Nothing new: the next poll is empty, not a re-read.
        assert!(scanner.poll().is_empty());
        // A later append surfaces on the following poll.
        w.publish(33, &[Summary::default()]).unwrap();
        let got = scanner.poll();
        assert_eq!(got.iter().map(|(k, _)| *k).collect::<Vec<_>>(), [33]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scanner_skips_own_segment_and_reads_peers() {
        let dir = tmp_dir("seg-own");
        std::fs::create_dir_all(&dir).unwrap();
        let mut mine = SegmentWriter::create(&dir).unwrap();
        let mut peer = SegmentWriter::create(&dir).unwrap();
        mine.publish(1, &[Summary::default()]).unwrap();
        peer.publish(2, &[Summary::default()]).unwrap();
        let mut scanner = SegmentScanner::new(&dir, Some(mine.path()));
        let got = scanner.poll();
        assert_eq!(got.iter().map(|(k, _)| *k).collect::<Vec<_>>(), [2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_segment_tail_waits_then_completes() {
        let dir = tmp_dir("seg-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = SegmentWriter::create(&dir).unwrap();
        w.publish(7, &[Summary::default()]).unwrap();
        let full = std::fs::read(w.path()).unwrap();
        drop(w);

        // Re-create the segment cut mid-frame: the scanner must treat the
        // tail as in-flight (not dead) and pick the record up once the
        // remaining bytes land.
        let torn = dir.join("seg-99999-0.bin");
        let cut = full.len() - 5;
        std::fs::write(&torn, &full[..cut]).unwrap();
        let mut scanner = SegmentScanner::new(&dir, None);
        let keys =
            |v: Vec<(u64, Arc<Vec<Summary>>)>| v.into_iter().map(|(k, _)| k).collect::<Vec<_>>();
        assert_eq!(keys(scanner.poll()), [7], "the intact sibling segment still reads");
        assert!(scanner.poll().is_empty());
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&torn).unwrap();
        f.write_all(&full[cut..]).unwrap();
        drop(f);
        assert_eq!(keys(scanner.poll()), [7], "the completed tail must surface");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_segment_frame_keeps_prefix_kills_rest() {
        let dir = tmp_dir("seg-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = SegmentWriter::create(&dir).unwrap();
        w.publish(1, &[Summary::default()]).unwrap();
        let prefix_len = std::fs::read(w.path()).unwrap().len();
        w.publish(2, &[Summary::default()]).unwrap();
        let path = w.path().to_path_buf();
        drop(w);
        // Flip a byte inside the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[prefix_len + 6] ^= 0x5a;
        std::fs::write(&path, &bytes).unwrap();

        let mut scanner = SegmentScanner::new(&dir, None);
        let got = scanner.poll();
        assert_eq!(got.iter().map(|(k, _)| *k).collect::<Vec<_>>(), [1], "valid prefix survives");
        // The file is dead: even further valid appends are distrusted.
        let mut w2 = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        use std::io::Write;
        w2.write_all(&bytes[12..prefix_len]).unwrap();
        drop(w2);
        assert!(scanner.poll().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_segment_header_is_dead_on_arrival() {
        let dir = tmp_dir("seg-header");
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"NOTSEG\0\0");
        put_u32(&mut bytes, STORE_VERSION);
        std::fs::write(dir.join("seg-1-0.bin"), &bytes).unwrap();
        // Version mismatch with a correct magic is equally dead.
        let mut vbytes = Vec::new();
        vbytes.extend_from_slice(SEG_MAGIC);
        put_u32(&mut vbytes, STORE_VERSION + 1);
        std::fs::write(dir.join("seg-1-1.bin"), &vbytes).unwrap();
        let mut scanner = SegmentScanner::new(&dir, None);
        assert!(scanner.poll().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_absorbs_leftover_segments_and_save_compacts_them() {
        let dir = tmp_dir("seg-absorb");
        let mut store = SummaryStore::open(&dir).unwrap();
        store.save(7, sample_entry(), vec![(1u64, Arc::new(vec![Summary::default()]))]).unwrap();
        drop(store);
        // A worker crashed after publishing: its segment survives it.
        let mut w = SegmentWriter::create(&dir).unwrap();
        w.publish(2, &[Summary::default()]).unwrap();
        drop(w);

        let mut store = SummaryStore::open(&dir).unwrap();
        assert_eq!(store.scc_count(), 2, "main entry + absorbed segment entry");
        assert_eq!(store.segment_entries(), 1);
        let live = store.scc_entries();
        let stats = store.save(8, sample_entry(), live).unwrap();
        assert_eq!(stats.segments_compacted, 1, "the dead segment must be reclaimed");
        drop(store);
        let seg_files = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(SEG_PREFIX))
            .count();
        assert_eq!(seg_files, 0);
        // And the absorbed entry persisted into the main file.
        let store = SummaryStore::open(&dir).unwrap();
        assert_eq!(store.scc_count(), 2);
        assert_eq!(store.segment_entries(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_spares_live_writers() {
        let dir = tmp_dir("seg-live");
        let mut store = SummaryStore::open(&dir).unwrap();
        let mut live_writer = SegmentWriter::create(&dir).unwrap();
        live_writer.publish(5, &[Summary::default()]).unwrap();
        let stats = store.save(7, sample_entry(), Vec::new()).unwrap();
        assert_eq!(stats.segments_compacted, 0, "a locked segment is a live writer's");
        assert!(live_writer.path().exists());
        drop(live_writer);
        let stats = store.save(8, sample_entry(), Vec::new()).unwrap();
        assert_eq!(stats.segments_compacted, 1, "released segments are reclaimed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_openers_coexist_and_never_write() {
        let dir = tmp_dir("seg-shared");
        let mut store = SummaryStore::open(&dir).unwrap();
        store.save(7, sample_entry(), vec![(1u64, Arc::new(vec![Summary::default()]))]).unwrap();
        drop(store); // release the exclusive lock

        let mut a = SummaryStore::open_shared(&dir).unwrap();
        let b = SummaryStore::open_shared(&dir).unwrap();
        assert!(!a.lock_busy() && !b.lock_busy(), "shared locks must coexist");
        assert_eq!(a.manifest(7), Some(&sample_entry()));
        assert_eq!(b.scc_count(), 1);
        // A shared store's save is a silent no-op.
        let stats = a.save(8, sample_entry(), Vec::new()).unwrap();
        assert_eq!(stats, SaveStats::default());
        // An exclusive opener detaches while readers hold the lock...
        let excl = SummaryStore::open(&dir).unwrap();
        assert!(excl.lock_busy());
        drop((a, b, excl));
        // ...and attaches again once they are gone.
        let excl = SummaryStore::open(&dir).unwrap();
        assert!(!excl.lock_busy());
        assert_eq!(excl.manifest(8), None, "the shared no-op save must not have landed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_opener_detaches_under_exclusive_owner() {
        let dir = tmp_dir("seg-shared-detach");
        let owner = SummaryStore::open(&dir).unwrap();
        assert!(!owner.lock_busy());
        let reader = SummaryStore::open_shared(&dir).unwrap();
        assert!(reader.lock_busy(), "shared open under an exclusive owner must detach");
        assert_eq!(reader.scc_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_hash_sees_critical_call_clearance() {
        use crate::CriticalCall;
        let a = AnalysisConfig {
            implicit_critical_calls: vec![CriticalCall::new("kill", 0)],
            ..Default::default()
        };
        let b = AnalysisConfig {
            implicit_critical_calls: vec![CriticalCall::with_clearance("kill", 0, "fused")],
            ..Default::default()
        };
        assert_ne!(config_hash(&a), config_hash(&b), "clearance must key the store");
    }
}
