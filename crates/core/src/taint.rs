//! Phase 3: unmonitored-access warnings and the interprocedural,
//! context-sensitive value-flow analysis of critical data (paper §3.3,
//! third phase) — generalized over a label-lattice policy.
//!
//! * Reads of non-core shared memory outside an `assume(core(...))` /
//!   `assume(declassify(...))` context produce **warnings** — exact, per
//!   the paper ("without any false positives or false negatives").
//! * Labels propagate along SSA edges, through memory objects (via the
//!   points-to analysis), across calls (context-sensitively: the
//!   declassification scope and parameter labels form the context, so a
//!   callee shared by a monitor and a non-monitor is analyzed separately
//!   for each — the paper's "analyzed multiple times for different call
//!   sequences", with its exponential worst case), and through **control
//!   dependence** (branches over labeled values taint what they control
//!   — tracked separately as *implicit* flow, the paper's false-positive
//!   source, reported as `ControlOnly`).
//! * `assert(safe(x))` anchors and implicitly-critical call arguments
//!   (e.g. `kill`'s pid) produce **errors** when a label above the sink's
//!   clearance reaches them, each carrying a value-flow path for manual
//!   triage.
//!
//! Under the default two-point policy every label is `untrusted` (⊤) and
//! every clearance is `trusted` (⊥), which collapses [`TaintVal`] to the
//! paper's three-point `Clean < Control < Data` lattice byte-for-byte.

use crate::config::{AnalysisConfig, CriticalCall};
use crate::policy::LabelTable;
use crate::regions::{RegionId, RegionMap};
use crate::report::{
    Degradation, DegradationKind, DependencyKind, ErrorDependency, FlowNode, Warning,
};
use crate::shmptr::ShmPointers;
use safeflow_dataflow::{ControlDeps, PostDomTree};
use safeflow_ir::{
    BlockId, Callee, Cfg, FuncId, Function, InstId, InstKind, Module, Terminator, Value,
};
use safeflow_points_to::{ObjId, PointsTo};
use safeflow_syntax::annot::Annotation;
use safeflow_util::metrics::{Class, Metrics};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// The historical two-point taint lattice: `Clean < Control < Data`.
/// Kept as a compatibility view of [`TaintVal`]; the engine itself now
/// tracks label masks.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TaintKind {
    /// Not influenced by unmonitored non-core values.
    Clean,
    /// Influenced only via control dependence.
    Control,
    /// Data-dependent on an unmonitored non-core value.
    Data,
}

/// A point of the label lattice with explicit and implicit flow tracked
/// separately: `explicit` is the join of labels that flowed into the
/// value through data edges, `implicit` the join of labels that only
/// steered control deciding it. Normalized so `implicit` never repeats
/// an atom already in `explicit` ("data beats control"); under the
/// two-point default policy the reachable values are exactly
/// `Clean = (0,0) < Control = (0,⊤) < Data = (⊤,0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaintVal {
    explicit: u64,
    implicit: u64,
}

impl TaintVal {
    /// ⊥ — no label influence at all.
    pub fn bot() -> TaintVal {
        TaintVal::default()
    }

    /// A normalized value from explicit and implicit label masks.
    pub fn new(explicit: u64, implicit: u64) -> TaintVal {
        TaintVal { explicit, implicit: implicit & !explicit }
    }

    /// Data-dependence on the given label mask.
    pub fn explicit_at(mask: u64) -> TaintVal {
        TaintVal { explicit: mask, implicit: 0 }
    }

    /// Control-dependence-only on the given label mask.
    pub fn implicit_at(mask: u64) -> TaintVal {
        TaintVal { explicit: 0, implicit: mask }
    }

    /// The explicit (data-flow) label mask.
    pub fn explicit(&self) -> u64 {
        self.explicit
    }

    /// The implicit (control-flow) label mask.
    pub fn implicit(&self) -> u64 {
        self.implicit
    }

    /// `true` iff ⊥.
    pub fn is_bot(&self) -> bool {
        self.explicit == 0 && self.implicit == 0
    }

    /// Pointwise join (bitwise OR, then re-normalize).
    pub fn join(self, other: TaintVal) -> TaintVal {
        TaintVal::new(self.explicit | other.explicit, self.implicit | other.implicit)
    }

    /// This value demoted to pure implicit flow: the label of a value
    /// used as a branch condition, as seen by what the branch controls.
    pub fn as_implicit(self) -> TaintVal {
        TaintVal { explicit: 0, implicit: self.explicit | self.implicit }
    }

    /// The two-point compatibility view.
    pub fn kind(&self) -> TaintKind {
        if self.explicit != 0 {
            TaintKind::Data
        } else if self.implicit != 0 {
            TaintKind::Control
        } else {
            TaintKind::Clean
        }
    }

    /// The two-point embedding of a [`TaintKind`] (⊤ = the untrusted
    /// atom of the default policy).
    #[deprecated(note = "use `TaintVal::explicit_at` / `TaintVal::implicit_at` with policy masks")]
    pub fn from_kind(kind: TaintKind) -> TaintVal {
        match kind {
            TaintKind::Clean => TaintVal::bot(),
            TaintKind::Control => TaintVal::implicit_at(1),
            TaintKind::Data => TaintVal::explicit_at(1),
        }
    }
}

/// A taint fact with provenance.
#[derive(Debug, Clone)]
pub struct Taint {
    /// Label-lattice value.
    pub val: TaintVal,
    /// Value-flow provenance (present when `val` is not ⊥).
    pub origin: Option<Arc<FlowNode>>,
}

impl Taint {
    fn clean() -> Taint {
        Taint { val: TaintVal::bot(), origin: None }
    }

    fn at(val: TaintVal, origin: Option<Arc<FlowNode>>) -> Taint {
        Taint { val, origin }
    }

    /// The two-point compatibility view of the value.
    pub fn kind(&self) -> TaintKind {
        self.val.kind()
    }

    /// A two-point taint fact (⊤ = the default policy's untrusted atom).
    #[deprecated(note = "use label-mask constructors via `TaintVal`")]
    pub fn of_kind(kind: TaintKind, origin: Option<Arc<FlowNode>>) -> Taint {
        #[allow(deprecated)]
        Taint { val: TaintVal::from_kind(kind), origin }
    }

    /// Joins `other` in, replacing the origin only when `other` strictly
    /// dominates the current value (preserving the historical
    /// worst-origin-wins provenance of the two-point engine).
    fn join(&mut self, other: &Taint) -> bool {
        let joined = self.val.join(other.val);
        if other.val > self.val {
            self.origin = other.origin.clone();
        }
        if joined != self.val {
            self.val = joined;
            true
        } else {
            false
        }
    }
}

/// Analysis context: what makes two analyses of the same function differ.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Ctx {
    /// Declassification scope, per §3.1 generalized: region → the label
    /// mask reads of it carry inside this scope (`0` = assumed core).
    declass: BTreeMap<RegionId, u64>,
    /// Label value of each parameter (masks only; origins are kept
    /// separately to keep the memo key small and the fixpoint monotone).
    params: Vec<TaintVal>,
}

/// Result of analyzing one `(function, context)` pair.
#[derive(Debug, Clone, Default)]
struct Outcome {
    ret: Option<Taint>,
    warnings: Vec<Warning>,
    errors: Vec<ErrorDependency>,
}

/// Output of the phase-3 engine.
#[derive(Debug, Default)]
pub struct TaintResults {
    /// Unmonitored non-core reads (deduplicated by site and region).
    pub warnings: Vec<Warning>,
    /// Critical-data dependency errors (deduplicated by site).
    pub errors: Vec<ErrorDependency>,
    /// Analysis notes (ineffective annotations etc.).
    pub notes: Vec<String>,
    /// Number of distinct `(function, context)` pairs analyzed — the
    /// context-sensitivity cost the paper's §3.3 discusses.
    pub contexts_analyzed: usize,
    /// Scopes analyzed in degraded (conservative) mode — empty on a clean
    /// run.
    pub degradations: Vec<Degradation>,
}

/// Runs the context-sensitive phase-3 engine under the compiled policy
/// `table`.
///
/// When `config.budget` sets explicit bounds (fixpoint rounds, function
/// size, or the wall-clock `deadline`), scopes exceeding them degrade
/// conservatively: their non-core reads all become warnings, their sinks
/// all become `Data` errors, their stores taint the written objects, and
/// the result carries a [`Degradation`] naming them.
#[allow(clippy::too_many_arguments)]
pub fn analyze_taint(
    module: &Module,
    regions: &RegionMap,
    shm: &ShmPointers,
    pt: &PointsTo,
    config: &AnalysisConfig,
    table: &LabelTable,
    deadline: Option<Instant>,
    metrics: &Metrics,
) -> TaintResults {
    let mut eng = Engine {
        module,
        regions,
        shm,
        pt,
        config,
        table,
        memo: HashMap::new(),
        in_progress: BTreeSet::new(),
        obj_taint: BTreeMap::new(),
        noncore_sockets: find_noncore_sockets(module, regions),
        notes: Vec::new(),
        cfg_cache: HashMap::new(),
        obj_dirty: false,
        deadline,
        degraded: BTreeMap::new(),
        stat_function_rounds: 0,
        stat_insts_visited: 0,
    };

    // Iterate to a module-level fixpoint: memory-object taints feed back
    // into function analyses.
    // Per-function fixpoint signature: (func, ret explicit mask, ret
    // implicit mask, warning count, error count).
    type FnSig = (u32, u64, u64, usize, usize);
    let mut rounds = 0;
    let mut prev_sig: Option<Vec<FnSig>> = None;
    loop {
        rounds += 1;
        let before: Vec<TaintVal> = eng.obj_taint.values().map(|t| t.val).collect();
        eng.memo.clear();

        // Roots: entry function plus every defined function not reachable
        // from it (so warnings cover the whole component).
        let entry = module.function_by_name(&config.entry);
        let mut analyzed_roots: BTreeSet<FuncId> = BTreeSet::new();
        if let Some(e) = entry {
            if module.function(e).is_definition {
                let ctx = eng.base_ctx(e, &BTreeMap::new(), &[]);
                eng.analyze(e, ctx);
                analyzed_roots.insert(e);
            }
        }
        for fid in module.definitions() {
            if module.function(fid).is_shminit() {
                continue;
            }
            let already = eng.memo.keys().any(|(f, _)| *f == fid);
            if !already {
                let nparams = module.function(fid).params.len();
                let ctx = eng.base_ctx(fid, &BTreeMap::new(), &vec![TaintVal::bot(); nparams]);
                eng.analyze(fid, ctx);
            }
        }

        let after: Vec<TaintVal> = eng.obj_taint.values().map(|t| t.val).collect();
        let mut sig: Vec<FnSig> = eng
            .memo
            .iter()
            .map(|((f, _), o)| {
                let ret = o.ret.as_ref().map(|t| t.val).unwrap_or_default();
                (f.0, ret.explicit(), ret.implicit(), o.warnings.len(), o.errors.len())
            })
            .collect();
        sig.sort_unstable();
        let stable = before == after && prev_sig.as_ref() == Some(&sig);
        prev_sig = Some(sig);
        if stable || rounds > 8 {
            break;
        }
    }

    // Aggregate + dedupe.
    let mut warnings: BTreeMap<(String, u32, u32, RegionId), Warning> = BTreeMap::new();
    let mut errors: BTreeMap<(String, u32, u32, String), ErrorDependency> = BTreeMap::new();
    for outcome in eng.memo.values() {
        for w in &outcome.warnings {
            warnings
                .entry((w.function.clone(), w.span.lo, w.span.hi, w.region))
                .or_insert_with(|| w.clone());
        }
        for e in &outcome.errors {
            let key = (e.function.clone(), e.span.lo, e.span.hi, e.critical.clone());
            match errors.get_mut(&key) {
                Some(prev) => {
                    // Keep the worst kind.
                    if e.kind > prev.kind {
                        *prev = e.clone();
                    }
                }
                None => {
                    errors.insert(key, e.clone());
                }
            }
        }
    }
    eng.notes.sort();
    eng.notes.dedup();
    let degradations = eng
        .degraded
        .iter()
        .map(|(name, (kind, detail))| Degradation {
            kind: *kind,
            functions: vec![name.clone()],
            detail: detail.clone(),
        })
        .collect();
    metrics.add_many(
        Class::Counter,
        &[
            ("taint.module_rounds", rounds as u64),
            ("taint.contexts", eng.memo.len() as u64),
            ("taint.function_rounds", eng.stat_function_rounds),
            ("taint.vfg_nodes_visited", eng.stat_insts_visited),
        ],
    );
    TaintResults {
        warnings: warnings.into_values().collect(),
        errors: errors.into_values().collect(),
        notes: eng.notes,
        contexts_analyzed: eng.memo.len(),
        degradations,
    }
}

/// Globals annotated `noncore(...)` that are not shm regions: socket /
/// descriptor variables for the §3.4.3 message-passing extension.
fn find_noncore_sockets(module: &Module, regions: &RegionMap) -> BTreeSet<safeflow_ir::GlobalId> {
    let mut out = BTreeSet::new();
    for fid in module.definitions() {
        for ann in &module.function(fid).annotations {
            if let Annotation::Noncore { target, .. } = ann {
                if let Some(g) = module.global_by_name(target) {
                    if regions.by_global(g).is_none() {
                        out.insert(g);
                    }
                }
            }
        }
    }
    out
}

struct Engine<'a> {
    module: &'a Module,
    regions: &'a RegionMap,
    shm: &'a ShmPointers,
    pt: &'a PointsTo,
    config: &'a AnalysisConfig,
    table: &'a LabelTable,
    memo: HashMap<(FuncId, Ctx), Outcome>,
    in_progress: BTreeSet<FuncId>,
    /// Module-wide memory-object taint (flow-insensitive, like the paper's
    /// DSA-backed memory reasoning).
    obj_taint: BTreeMap<ObjId, Taint>,
    noncore_sockets: BTreeSet<safeflow_ir::GlobalId>,
    notes: Vec<String>,
    cfg_cache: HashMap<FuncId, (Cfg, ControlDeps)>,
    /// Set when a memory-object taint was raised; forces another local
    /// round so earlier loads observe it.
    obj_dirty: bool,
    /// Wall-clock deadline for the run, from `Budget::deadline_ms`.
    deadline: Option<Instant>,
    /// Functions whose analysis degraded, with why (keyed by name so the
    /// record survives the memo clears of the module-level fixpoint).
    degraded: BTreeMap<String, (DegradationKind, String)>,
    /// Local fixpoint rounds run, across every `(function, context)` and
    /// every module-level round (the engine is single-threaded, so this is
    /// deterministic).
    stat_function_rounds: u64,
    /// Value-flow-graph nodes visited: one per instruction per local round.
    stat_insts_visited: u64,
}

impl<'a> Engine<'a> {
    /// The clearance mask of an implicitly-critical call argument:
    /// `trusted` (0) unless the config names a declared label. Unknown
    /// names resolve to `trusted` — the most conservative clearance —
    /// and are reported as notes at policy-compile time.
    fn clearance_mask(&self, call: &CriticalCall) -> u64 {
        call.clearance.as_deref().and_then(|n| self.table.mask_of(n)).unwrap_or(0)
    }

    /// The label a finding reports, under non-default policies only (the
    /// default two-point policy keeps label-free findings for byte
    /// identity with historical reports).
    fn finding_label(&self, mask: u64) -> Option<String> {
        if self.table.is_default() {
            None
        } else {
            Some(self.table.name_of(mask))
        }
    }

    /// The flow-path source description for a region read at `mask`.
    fn read_source_desc(&self, region_name: &str, func_name: &str, mask: u64) -> String {
        if self.table.is_default() {
            format!("unmonitored read of non-core region `{region_name}` in `{func_name}`")
        } else {
            format!(
                "read of non-core region `{region_name}` (label `{}`) in `{func_name}`",
                self.table.name_of(mask)
            )
        }
    }

    /// The context a function runs in, given the caller's declassification
    /// scope and argument labels: its own `assume(core(...))` /
    /// `assume(declassify(...))` annotations extend the scope (and apply
    /// recursively to callees, §3.1).
    fn base_ctx(
        &mut self,
        fid: FuncId,
        inherited: &BTreeMap<RegionId, u64>,
        params: &[TaintVal],
    ) -> Ctx {
        let mut declass = inherited.clone();
        let func = self.module.function(fid);
        for ann in &func.annotations {
            let (fact, ptr, offset, size, to) = match ann {
                Annotation::AssumeCore { ptr, offset, size, span: _ } => {
                    ("core", ptr, offset, size, None)
                }
                Annotation::AssumeDeclassify { ptr, offset, size, to, span: _ } => {
                    ("declassify", ptr, offset, size, Some(to.as_str()))
                }
                _ => continue,
            };
            let Some(rids) = self.resolve_regions_for_name(fid, ptr) else {
                self.notes.push(format!(
                    "assume({fact}({ptr}, ...)) in `{}` names no known shared-memory pointer; ignored",
                    func.name
                ));
                continue;
            };
            let to_mask = match to {
                None => 0,
                Some(name) => match self.table.mask_of(name) {
                    Some(m) => m,
                    None => {
                        self.notes.push(format!(
                            "assume(declassify({ptr}, ..., {name})) in `{}` names unknown label `{name}`; ignored",
                            func.name
                        ));
                        continue;
                    }
                },
            };
            // Extent must span the whole region, else ineffective
            // (§3.1: "Offset and size values should span an entire
            // array ... otherwise, the annotation becomes ineffective").
            let off = crate::regions::eval_ann_expr(self.module, offset);
            let sz = crate::regions::eval_ann_expr(self.module, size);
            for rid in rids {
                let region = self.regions.region(rid);
                match (off, sz) {
                    (Some(0), Some(s)) if s as u64 == region.size => {
                        // A declassification of a *labeled* region must be
                        // licensed by a declared declassifier pair; the
                        // paper's `assume(core(...))` on unlabeled regions
                        // is always allowed.
                        let from = self.table.region_source_mask(rid.0, region.noncore);
                        let licensed = region.label.is_none() && to_mask == 0
                            || self.table.may_declassify(from, to_mask);
                        if !licensed {
                            self.notes.push(format!(
                                "assume({fact}({ptr}, ...)) in `{}`: policy has no declassifier({}, {}); annotation is ineffective",
                                func.name,
                                self.table.name_of(from),
                                self.table.name_of(to_mask)
                            ));
                            continue;
                        }
                        let e = declass.entry(rid).or_insert(to_mask);
                        *e &= to_mask;
                    }
                    _ => {
                        self.notes.push(format!(
                            "assume({fact}({ptr}, ...)) in `{}` does not span the whole region `{}` ({} bytes); annotation is ineffective",
                            func.name, region.name, region.size
                        ));
                    }
                }
            }
        }
        Ctx { declass, params: params.to_vec() }
    }

    /// Regions a pointer name refers to inside `fid`: a region global, a
    /// global holding region pointers, or a parameter.
    fn resolve_regions_for_name(&self, fid: FuncId, name: &str) -> Option<BTreeSet<RegionId>> {
        if let Some(g) = self.module.global_by_name(name) {
            if let Some(r) = self.regions.by_global(g) {
                return Some(std::iter::once(r).collect());
            }
            let held: BTreeSet<RegionId> =
                self.shm.global_regions(g).into_iter().map(|p| p.region).collect();
            if !held.is_empty() {
                return Some(held);
            }
        }
        let func = self.module.function(fid);
        if let Some(i) = func.params.iter().position(|p| p.name == name) {
            let held: BTreeSet<RegionId> = self
                .shm
                .regions_of(fid, &Value::Param(i as u32))
                .into_iter()
                .map(|p| p.region)
                .collect();
            if !held.is_empty() {
                return Some(held);
            }
        }
        None
    }

    fn analyze(&mut self, fid: FuncId, ctx: Ctx) -> Taint {
        if let Some(out) = self.memo.get(&(fid, ctx.clone())) {
            return out.ret.clone().unwrap_or_else(Taint::clean);
        }
        if self.in_progress.contains(&fid) {
            // Recursion: seed with Clean; the module-level fixpoint loop
            // re-runs analyses until stable.
            return Taint::clean();
        }
        // Context-explosion guard (per function): beyond the cap, merge
        // into a single worst-case context — no inherited assumptions and
        // fully tainted parameters. Sound (only adds taint), loses
        // precision.
        let per_fn = self.memo.keys().filter(|(f, _)| *f == fid).count();
        if per_fn >= self.config.max_contexts {
            let nparams = self.module.function(fid).params.len();
            let top = TaintVal::explicit_at(self.table.top());
            let merged = self.base_ctx(fid, &BTreeMap::new(), &vec![top; nparams]);
            if merged != ctx {
                return self.analyze(fid, merged);
            }
        }
        self.in_progress.insert(fid);
        let outcome = self.run_function(fid, &ctx);
        self.in_progress.remove(&fid);
        let ret = outcome.ret.clone().unwrap_or_else(Taint::clean);
        self.memo.insert((fid, ctx), outcome);
        ret
    }

    fn run_function(&mut self, fid: FuncId, ctx: &Ctx) -> Outcome {
        let func = self.module.function(fid);
        let mut outcome = Outcome::default();
        if func.blocks.is_empty() {
            return outcome;
        }
        // Explicit budgets: scopes beyond them are not analyzed in depth —
        // they degrade to a conservative outcome instead (loud, never a
        // silent pass).
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return self.conservative_outcome(
                    fid,
                    ctx,
                    "wall-clock deadline exceeded".to_string(),
                );
            }
        }
        if let Some(cap) = self.config.budget.max_function_insts {
            if func.insts.len() > cap {
                return self.conservative_outcome(
                    fid,
                    ctx,
                    format!(
                        "function exceeds the {cap}-instruction budget ({} instructions)",
                        func.insts.len()
                    ),
                );
            }
        }
        self.cfg_cache.entry(fid).or_insert_with(|| {
            let cfg = Cfg::build(func);
            let pdom = PostDomTree::build(func, &cfg);
            let cd = ControlDeps::build(func, &cfg, &pdom);
            (cfg, cd)
        });

        // Locally-assumed objects for the §3.4.3 extension: assume core
        // (or declassify) on a *local/param* pointer exempts loads through
        // it in this function only.
        let local_assumed_params: BTreeSet<u32> = func
            .annotations
            .iter()
            .filter_map(|a| match a {
                Annotation::AssumeCore { ptr, .. } | Annotation::AssumeDeclassify { ptr, .. } => {
                    func.params.iter().position(|p| p.name == *ptr).map(|i| i as u32)
                }
                _ => None,
            })
            .collect();

        let mut taints: HashMap<InstId, Taint> = HashMap::new();
        let mut block_ctl: HashMap<BlockId, Taint> = HashMap::new();

        // Iterate the function body to a local fixpoint (φ-loops, control
        // taint feedback). The built-in bound of 16 rounds keeps its
        // historical silent behavior; an explicit `fixpoint_rounds` budget
        // degrades the function when the cap stops the iteration early.
        let rounds_cap =
            self.config.budget.fixpoint_rounds.map(|r| r.max(1) as usize).unwrap_or(16);
        let mut converged = false;
        for _round in 0..rounds_cap {
            let mut changed = false;
            self.obj_dirty = false;
            self.stat_function_rounds += 1;
            // Recompute control-taint of blocks from tainted branches.
            if self.config.track_control_dependence {
                let (cfg, cd) = self.cfg_cache.get(&fid).unwrap();
                let mut new_ctl: HashMap<BlockId, Taint> = HashMap::new();
                for (bid, block) in func.iter_blocks() {
                    if !cfg.is_reachable(bid) {
                        continue;
                    }
                    let cond = match &block.terminator {
                        Terminator::CondBr { cond, .. } => Some(cond),
                        Terminator::Switch { value, .. } => Some(value),
                        _ => None,
                    };
                    let Some(cond) = cond else { continue };
                    let t = value_taint(cond, &taints, ctx);
                    let t_all = join2(&t, block_ctl.get(&bid));
                    if t_all.val.is_bot() {
                        continue;
                    }
                    let branch_span = match cond {
                        Value::Inst(id) => func.inst(*id).span,
                        _ => func.span,
                    };
                    let ctl = Taint {
                        val: t_all.val.as_implicit(),
                        origin: Some(FlowNode::step(
                            format!("branch in `{}` decided by unsafe value", func.name),
                            branch_span,
                            t_all.origin.clone().unwrap_or_else(|| {
                                FlowNode::source("unsafe branch condition", func.span)
                            }),
                        )),
                    };
                    for &dep in cd.controlled_by(bid) {
                        new_ctl.entry(dep).or_insert_with(Taint::clean).join(&ctl);
                    }
                }
                for (b, t) in new_ctl {
                    let e = block_ctl.entry(b).or_insert_with(Taint::clean);
                    if e.join(&t) {
                        changed = true;
                    }
                }
            }

            for (bid, block) in func.iter_blocks() {
                let ctl_here = block_ctl.get(&bid).cloned().unwrap_or_else(Taint::clean);
                self.stat_insts_visited += block.insts.len() as u64;
                for &iid in &block.insts {
                    let inst = func.inst(iid);
                    let mut t = Taint::clean();
                    match &inst.kind {
                        InstKind::Load { ptr } => {
                            let locally_assumed =
                                derives_from_assumed_param(func, ptr, &local_assumed_params, 0);
                            // Region source?
                            for fact in self.shm.regions_of(fid, ptr) {
                                let region = self.regions.region(fact.region);
                                let declared =
                                    self.table.region_source_mask(fact.region.0, region.noncore);
                                if declared == 0 {
                                    continue;
                                }
                                let effective = if locally_assumed {
                                    0
                                } else {
                                    ctx.declass.get(&fact.region).copied().unwrap_or(declared)
                                };
                                if effective == 0 {
                                    continue; // monitored / declassified to ⊥ (§2 rules)
                                }
                                outcome.warnings.push(Warning {
                                    function: func.name.clone(),
                                    region: fact.region,
                                    region_name: region.name.clone(),
                                    span: inst.span,
                                    label: self.finding_label(effective),
                                });
                                t.join(&Taint {
                                    val: TaintVal::explicit_at(effective),
                                    origin: Some(FlowNode::source(
                                        self.read_source_desc(&region.name, &func.name, effective),
                                        inst.span,
                                    )),
                                });
                            }
                            // Pointer-influence + memory-object taint. A
                            // load through a locally-assumed parameter is
                            // monitored (§3.4.3's received-buffer form), so
                            // object taint does not apply.
                            t.join(&value_taint(ptr, &taints, ctx));
                            if !locally_assumed {
                                for o in self.pt.points_to(fid, ptr) {
                                    if let Some(ot) = self.obj_taint.get(&o) {
                                        t.join(ot);
                                    }
                                    let base = self.pt.base_of(o);
                                    if base != o {
                                        if let Some(ot) = self.obj_taint.get(&base) {
                                            t.join(ot);
                                        }
                                    }
                                }
                            }
                            // Loads of plain globals: global object taint via
                            // points-to is handled above when ptr is
                            // Value::Global — covered since points_to maps
                            // globals to their object.
                        }
                        InstKind::Store { ptr, value } => {
                            let mut vt = value_taint(value, &taints, ctx);
                            vt.join(&ctl_here);
                            if !vt.val.is_bot() {
                                for o in self.pt.points_to(fid, ptr) {
                                    let desc = self.pt.describe(self.module, o);
                                    let e = self.obj_taint.entry(o).or_insert_with(Taint::clean);
                                    if e.join(&Taint {
                                        val: vt.val,
                                        origin: vt.origin.clone().map(|orig| {
                                            FlowNode::step(
                                                format!("stored to {desc}"),
                                                inst.span,
                                                orig,
                                            )
                                        }),
                                    }) {
                                        self.obj_dirty = true;
                                    }
                                }
                            }
                        }
                        InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                            t.join(&value_taint(lhs, &taints, ctx));
                            t.join(&value_taint(rhs, &taints, ctx));
                        }
                        InstKind::Cast { value, .. } => {
                            t.join(&value_taint(value, &taints, ctx));
                        }
                        InstKind::FieldAddr { base, .. } => {
                            t.join(&value_taint(base, &taints, ctx));
                        }
                        InstKind::ElemAddr { base, index } => {
                            t.join(&value_taint(base, &taints, ctx));
                            t.join(&value_taint(index, &taints, ctx));
                        }
                        InstKind::Phi { incoming } => {
                            // Data from the incoming values, plus implicit
                            // flow: which predecessor ran (and therefore
                            // which value was selected) is decided by the
                            // branches controlling the predecessors.
                            for (pred, v) in incoming {
                                t.join(&value_taint(v, &taints, ctx));
                                if let Some(ctl) = block_ctl.get(pred) {
                                    t.join(ctl);
                                }
                            }
                        }
                        InstKind::Call { callee, args } => {
                            t = self.handle_call(
                                fid,
                                func,
                                iid,
                                callee,
                                args,
                                &taints,
                                ctx,
                                &ctl_here,
                                &mut outcome,
                            );
                        }
                        InstKind::AssertSafe { var, value } => {
                            let mut vt = value_taint(value, &taints, ctx);
                            vt.join(&ctl_here);
                            if !vt.val.is_bot() {
                                let leak = vt.val.explicit() | vt.val.implicit();
                                outcome.errors.push(ErrorDependency {
                                    critical: var.clone(),
                                    function: func.name.clone(),
                                    span: inst.span,
                                    kind: if vt.val.explicit() != 0 {
                                        DependencyKind::Data
                                    } else {
                                        DependencyKind::ControlOnly
                                    },
                                    label: self.finding_label(leak),
                                    flow: vt.origin.map(|orig| {
                                        FlowNode::step(
                                            format!("assert(safe({var})) reached"),
                                            inst.span,
                                            orig,
                                        )
                                    }),
                                });
                            }
                        }
                        InstKind::Alloca { .. } => {}
                    }
                    if !t.val.is_bot() {
                        let e = taints.entry(iid).or_insert_with(Taint::clean);
                        if e.join(&t) {
                            changed = true;
                        }
                    }
                }
            }

            // Return taint.
            let mut ret = Taint::clean();
            for (bid, block) in func.iter_blocks() {
                if let Terminator::Ret(Some(v)) = &block.terminator {
                    ret.join(&value_taint(v, &taints, ctx));
                    if let Some(ctl) = block_ctl.get(&bid) {
                        ret.join(ctl);
                    }
                }
            }
            match &mut outcome.ret {
                Some(prev) => {
                    if prev.join(&ret) {
                        changed = true;
                    }
                }
                None => {
                    outcome.ret = Some(ret);
                    changed = true;
                }
            }

            if !changed && !self.obj_dirty {
                converged = true;
                break;
            }
            // Findings are recollected each round; clear to avoid dupes.
            if _round + 1 < rounds_cap {
                let keep_ret = outcome.ret.clone();
                outcome = Outcome { ret: keep_ret, ..Outcome::default() };
            }
        }
        if !converged && self.config.budget.fixpoint_rounds.is_some() {
            return self.conservative_outcome(
                fid,
                ctx,
                format!("taint fixpoint did not converge within {rounds_cap} round(s)"),
            );
        }
        outcome
    }

    /// The degraded result for a function whose analysis ran out of
    /// budget: every unmonitored non-core read is a warning, every sink is
    /// a `Data` error, every store (and configured receive buffer) taints
    /// its memory objects, and the return value is ⊤-tainted — a strict
    /// superset of anything the full analysis could report.
    fn conservative_outcome(&mut self, fid: FuncId, ctx: &Ctx, reason: String) -> Outcome {
        let func = self.module.function(fid);
        self.degraded
            .entry(func.name.clone())
            .or_insert((DegradationKind::BudgetExhausted, reason));
        let origin = FlowNode::source(
            format!("analysis of `{}` degraded; conservatively assumed unsafe", func.name),
            func.span,
        );
        let top = self.table.top();
        let mut outcome = Outcome {
            ret: Some(Taint::at(TaintVal::explicit_at(top), Some(origin.clone()))),
            ..Outcome::default()
        };
        for (_, inst) in func.iter_insts() {
            match &inst.kind {
                InstKind::Load { ptr } => {
                    for fact in self.shm.regions_of(fid, ptr) {
                        let region = self.regions.region(fact.region);
                        let declared = self.table.region_source_mask(fact.region.0, region.noncore);
                        if declared == 0 {
                            continue;
                        }
                        let effective = ctx.declass.get(&fact.region).copied().unwrap_or(declared);
                        if effective == 0 {
                            continue;
                        }
                        outcome.warnings.push(Warning {
                            function: func.name.clone(),
                            region: fact.region,
                            region_name: region.name.clone(),
                            span: inst.span,
                            label: self.finding_label(effective),
                        });
                    }
                }
                InstKind::Store { ptr, .. } => {
                    for o in self.pt.points_to(fid, ptr) {
                        let e = self.obj_taint.entry(o).or_insert_with(Taint::clean);
                        if e.join(&Taint::at(TaintVal::explicit_at(top), Some(origin.clone()))) {
                            self.obj_dirty = true;
                        }
                    }
                }
                InstKind::AssertSafe { var, .. } => {
                    outcome.errors.push(ErrorDependency {
                        critical: var.clone(),
                        function: func.name.clone(),
                        span: inst.span,
                        kind: DependencyKind::Data,
                        label: self.finding_label(top),
                        flow: Some(origin.clone()),
                    });
                }
                InstKind::Call { callee, args } => {
                    // Local callees are still analyzed — in the worst-case
                    // context (no inherited assumptions, tainted
                    // parameters), so findings that a precise caller
                    // context would have produced cannot silently vanish.
                    if let Callee::Local(target) = callee {
                        if self.module.function(*target).is_definition {
                            let n = self.module.function(*target).params.len();
                            let worst = self.base_ctx(
                                *target,
                                &BTreeMap::new(),
                                &vec![TaintVal::explicit_at(top); n],
                            );
                            self.analyze(*target, worst);
                        }
                    }
                    if let Some(name) = self.module.external_callee_name(callee) {
                        for call in &self.config.implicit_critical_calls {
                            let (cname, argi) = (&call.name, &call.arg);
                            let leak = top & !self.clearance_mask(call);
                            if cname == name && args.get(*argi).is_some() && leak != 0 {
                                outcome.errors.push(ErrorDependency {
                                    critical: format!("{name}:arg{argi}"),
                                    function: func.name.clone(),
                                    span: inst.span,
                                    kind: DependencyKind::Data,
                                    label: self.finding_label(leak),
                                    flow: Some(origin.clone()),
                                });
                            }
                        }
                        for spec in &self.config.recv_functions {
                            if spec.name == *name {
                                if let Some(buf) = args.get(spec.buf_arg) {
                                    for o in self.pt.points_to(fid, buf) {
                                        let e =
                                            self.obj_taint.entry(o).or_insert_with(Taint::clean);
                                        if e.join(&Taint::at(
                                            TaintVal::explicit_at(top),
                                            Some(origin.clone()),
                                        )) {
                                            self.obj_dirty = true;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        outcome
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_call(
        &mut self,
        fid: FuncId,
        func: &Function,
        iid: InstId,
        callee: &Callee,
        args: &[Value],
        taints: &HashMap<InstId, Taint>,
        ctx: &Ctx,
        ctl_here: &Taint,
        outcome: &mut Outcome,
    ) -> Taint {
        let inst = func.inst(iid);
        // External (or prototype-only) call?
        if let Some(name) = self.module.external_callee_name(callee) {
            let name = name.to_string();
            // Implicit critical arguments (kill's pid), checked against
            // the call's clearance label (`trusted` by default).
            for call in &self.config.implicit_critical_calls {
                let (cname, argi) = (&call.name, &call.arg);
                if *cname == name {
                    if let Some(arg) = args.get(*argi) {
                        let mut at = value_taint(arg, taints, ctx);
                        at.join(ctl_here);
                        let clear = self.clearance_mask(call);
                        let leak_e = at.val.explicit() & !clear;
                        let leak_i = at.val.implicit() & !clear;
                        if leak_e | leak_i != 0 {
                            outcome.errors.push(ErrorDependency {
                                critical: format!("{name}:arg{argi}"),
                                function: func.name.clone(),
                                span: inst.span,
                                kind: if leak_e != 0 {
                                    DependencyKind::Data
                                } else {
                                    DependencyKind::ControlOnly
                                },
                                label: self.finding_label(leak_e | leak_i),
                                flow: at.origin.map(|orig| {
                                    FlowNode::step(
                                        format!("passed as critical argument {argi} of `{name}`"),
                                        inst.span,
                                        orig,
                                    )
                                }),
                            });
                        }
                    }
                }
            }
            // recv-style calls over non-core sockets taint the buffer
            // (§3.4.3 extension).
            for spec in &self.config.recv_functions {
                if spec.name == name {
                    let sock_noncore = args
                        .get(spec.sock_arg)
                        .is_some_and(|s| self.socket_is_noncore(fid, func, s, taints));
                    if sock_noncore {
                        if let Some(buf) = args.get(spec.buf_arg) {
                            let origin = FlowNode::source(
                                format!("`{name}` received non-core data in `{}`", func.name),
                                inst.span,
                            );
                            for o in self.pt.points_to(fid, buf) {
                                let e = self.obj_taint.entry(o).or_insert_with(Taint::clean);
                                if e.join(&Taint::at(
                                    TaintVal::explicit_at(self.table.top()),
                                    Some(origin.clone()),
                                )) {
                                    self.obj_dirty = true;
                                }
                            }
                        }
                    }
                }
            }
            // Unknown external functions: result considered clean (the
            // trusted-library model of §3.4.3).
            return Taint::clean();
        }
        // Local call: context-sensitive descent.
        let Callee::Local(target) = callee else { unreachable!() };
        let mut param_vals = Vec::with_capacity(args.len());
        let mut worst_arg = Taint::clean();
        for arg in args {
            let mut at = value_taint(arg, taints, ctx);
            at.join(ctl_here);
            if at.val > worst_arg.val {
                worst_arg = at.clone();
            }
            param_vals.push(at.val);
        }
        let callee_ctx = self.base_ctx(*target, &ctx.declass, &param_vals);
        let ret = self.analyze(*target, callee_ctx);
        let mut t = ret;
        // Returned taint with no better provenance inherits the worst
        // argument's origin for path reconstruction.
        if !t.val.is_bot() && t.origin.is_none() {
            t.origin = worst_arg.origin.clone();
        }
        if !t.val.is_bot() {
            t.origin = Some(match t.origin {
                Some(orig) => FlowNode::step(
                    format!("returned from `{}`", self.module.function(*target).name),
                    inst.span,
                    orig,
                ),
                None => FlowNode::source(
                    format!("unsafe value returned from `{}`", self.module.function(*target).name),
                    inst.span,
                ),
            });
        }
        t.join(ctl_here);
        t
    }

    /// Whether a socket argument reads from a `noncore(...)`-annotated
    /// descriptor global.
    fn socket_is_noncore(
        &self,
        _fid: FuncId,
        func: &Function,
        sock: &Value,
        _taints: &HashMap<InstId, Taint>,
    ) -> bool {
        match sock {
            Value::Inst(id) => match &func.inst(*id).kind {
                InstKind::Load { ptr: Value::Global(g) } => self.noncore_sockets.contains(g),
                InstKind::Cast { value, .. } => self.socket_is_noncore(_fid, func, value, _taints),
                _ => false,
            },
            _ => false,
        }
    }
}

/// Whether a pointer value derives (through field/element/cast chains)
/// from a parameter covered by a local `assume(core(param, ...))` — the
/// §3.4.3 received-buffer monitoring form.
fn derives_from_assumed_param(
    func: &Function,
    v: &Value,
    assumed: &BTreeSet<u32>,
    depth: usize,
) -> bool {
    if depth > 16 {
        return false;
    }
    match v {
        Value::Param(i) => assumed.contains(i),
        Value::Inst(id) => match &func.inst(*id).kind {
            InstKind::FieldAddr { base, .. }
            | InstKind::ElemAddr { base, .. }
            | InstKind::Cast { value: base, .. } => {
                derives_from_assumed_param(func, base, assumed, depth + 1)
            }
            _ => false,
        },
        _ => false,
    }
}

/// Taint of an operand: parameter taint comes from the context, SSA values
/// from the local map, constants are clean.
fn value_taint(v: &Value, taints: &HashMap<InstId, Taint>, ctx: &Ctx) -> Taint {
    match v {
        Value::Inst(id) => taints.get(id).cloned().unwrap_or_else(Taint::clean),
        Value::Param(i) => {
            let val = ctx.params.get(*i as usize).copied().unwrap_or_default();
            Taint {
                val,
                origin: if val.is_bot() {
                    None
                } else {
                    Some(FlowNode::source(
                        format!("tainted argument #{i}"),
                        safeflow_syntax::span::Span::dummy(),
                    ))
                },
            }
        }
        _ => Taint::clean(),
    }
}

fn join2(a: &Taint, b: Option<&Taint>) -> Taint {
    let mut t = a.clone();
    if let Some(b) = b {
        t.join(b);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taintval_collapses_to_the_two_point_lattice() {
        let clean = TaintVal::bot();
        let control = TaintVal::implicit_at(1);
        let data = TaintVal::explicit_at(1);
        assert!(clean < control && control < data);
        assert_eq!(clean.kind(), TaintKind::Clean);
        assert_eq!(control.kind(), TaintKind::Control);
        assert_eq!(data.kind(), TaintKind::Data);
        // data beats control: joining normalizes the implicit mask away.
        assert_eq!(control.join(data), data);
        assert_eq!(data.join(control), data);
        assert_eq!(clean.join(control), control);
    }

    #[test]
    fn taintval_join_is_pointwise_over_labels() {
        let a = TaintVal::explicit_at(0b010);
        let b = TaintVal::explicit_at(0b100);
        let j = a.join(b);
        assert_eq!(j.explicit(), 0b110);
        assert_eq!(j.implicit(), 0);
        let c = TaintVal::implicit_at(0b010);
        // implicit atoms already explicit are normalized away.
        assert_eq!(j.join(c), j);
        let d = TaintVal::implicit_at(0b001);
        let jd = j.join(d);
        assert_eq!(jd.explicit(), 0b110);
        assert_eq!(jd.implicit(), 0b001);
        assert_eq!(jd.as_implicit(), TaintVal::implicit_at(0b111));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_two_point_constructors_still_work() {
        assert_eq!(TaintVal::from_kind(TaintKind::Data), TaintVal::explicit_at(1));
        assert_eq!(TaintVal::from_kind(TaintKind::Control), TaintVal::implicit_at(1));
        assert_eq!(TaintVal::from_kind(TaintKind::Clean), TaintVal::bot());
        let t = Taint::of_kind(TaintKind::Data, None);
        assert_eq!(t.kind(), TaintKind::Data);
    }

    #[test]
    fn taint_join_keeps_worst_origin() {
        let mut a = Taint::at(
            TaintVal::implicit_at(1),
            Some(FlowNode::source("ctl", safeflow_syntax::span::Span::dummy())),
        );
        let b = Taint::at(
            TaintVal::explicit_at(1),
            Some(FlowNode::source("data", safeflow_syntax::span::Span::dummy())),
        );
        assert!(a.join(&b));
        assert_eq!(a.val, TaintVal::explicit_at(1));
        assert_eq!(a.origin.as_ref().unwrap().what, "data");
        // Joining something smaller changes nothing.
        let c = Taint::at(TaintVal::implicit_at(1), None);
        assert!(!a.join(&c));
        assert_eq!(a.origin.as_ref().unwrap().what, "data");
    }
}
