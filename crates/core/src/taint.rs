//! Phase 3: unmonitored-access warnings and the interprocedural,
//! context-sensitive value-flow analysis of critical data (paper §3.3,
//! third phase).
//!
//! * Reads of non-core shared memory outside an `assume(core(...))` context
//!   produce **warnings** — exact, per the paper ("without any false
//!   positives or false negatives").
//! * `unsafe` taints propagate along SSA edges, through memory objects
//!   (via the points-to analysis), across calls (context-sensitively: the
//!   assumed-core region set and parameter taints form the context, so a
//!   callee shared by a monitor and a non-monitor is analyzed separately
//!   for each — the paper's "analyzed multiple times for different call
//!   sequences", with its exponential worst case), and through **control
//!   dependence** (branches over unsafe values taint what they control —
//!   the paper's false-positive source, reported as `ControlOnly`).
//! * `assert(safe(x))` anchors and implicitly-critical call arguments
//!   (e.g. `kill`'s pid) produce **errors** when tainted, each carrying a
//!   value-flow path for manual triage.

use crate::config::AnalysisConfig;
use crate::regions::{RegionId, RegionMap};
use crate::report::{
    Degradation, DegradationKind, DependencyKind, ErrorDependency, FlowNode, Warning,
};
use crate::shmptr::ShmPointers;
use safeflow_dataflow::{ControlDeps, PostDomTree};
use safeflow_ir::{
    BlockId, Callee, Cfg, FuncId, Function, InstId, InstKind, Module, Terminator, Value,
};
use safeflow_points_to::{ObjId, PointsTo};
use safeflow_syntax::annot::Annotation;
use safeflow_util::metrics::{Class, Metrics};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// Taint lattice: `Clean < Control < Data`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TaintKind {
    /// Not influenced by unmonitored non-core values.
    Clean,
    /// Influenced only via control dependence.
    Control,
    /// Data-dependent on an unmonitored non-core value.
    Data,
}

/// A taint fact with provenance.
#[derive(Debug, Clone)]
pub struct Taint {
    /// Lattice level.
    pub kind: TaintKind,
    /// Value-flow provenance (present when `kind != Clean`).
    pub origin: Option<Arc<FlowNode>>,
}

impl Taint {
    fn clean() -> Taint {
        Taint { kind: TaintKind::Clean, origin: None }
    }

    fn join(&mut self, other: &Taint) -> bool {
        if other.kind > self.kind {
            self.kind = other.kind;
            self.origin = other.origin.clone();
            true
        } else {
            false
        }
    }
}

/// Analysis context: what makes two analyses of the same function differ.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Ctx {
    /// Regions assumed core (monitoring scope), per §3.1.
    assumed: BTreeSet<RegionId>,
    /// Taint of each parameter (kinds only; origins are kept separately to
    /// keep the memo key small and the fixpoint monotone).
    params: Vec<TaintKind>,
}

/// Result of analyzing one `(function, context)` pair.
#[derive(Debug, Clone, Default)]
struct Outcome {
    ret: Option<Taint>,
    warnings: Vec<Warning>,
    errors: Vec<ErrorDependency>,
}

/// Output of the phase-3 engine.
#[derive(Debug, Default)]
pub struct TaintResults {
    /// Unmonitored non-core reads (deduplicated by site and region).
    pub warnings: Vec<Warning>,
    /// Critical-data dependency errors (deduplicated by site).
    pub errors: Vec<ErrorDependency>,
    /// Analysis notes (ineffective annotations etc.).
    pub notes: Vec<String>,
    /// Number of distinct `(function, context)` pairs analyzed — the
    /// context-sensitivity cost the paper's §3.3 discusses.
    pub contexts_analyzed: usize,
    /// Scopes analyzed in degraded (conservative) mode — empty on a clean
    /// run.
    pub degradations: Vec<Degradation>,
}

/// Runs the context-sensitive phase-3 engine.
///
/// When `config.budget` sets explicit bounds (fixpoint rounds, function
/// size, or the wall-clock `deadline`), scopes exceeding them degrade
/// conservatively: their non-core reads all become warnings, their sinks
/// all become `Data` errors, their stores taint the written objects, and
/// the result carries a [`Degradation`] naming them.
pub fn analyze_taint(
    module: &Module,
    regions: &RegionMap,
    shm: &ShmPointers,
    pt: &PointsTo,
    config: &AnalysisConfig,
    deadline: Option<Instant>,
    metrics: &Metrics,
) -> TaintResults {
    let mut eng = Engine {
        module,
        regions,
        shm,
        pt,
        config,
        memo: HashMap::new(),
        in_progress: BTreeSet::new(),
        obj_taint: BTreeMap::new(),
        noncore_sockets: find_noncore_sockets(module, regions),
        notes: Vec::new(),
        cfg_cache: HashMap::new(),
        obj_dirty: false,
        deadline,
        degraded: BTreeMap::new(),
        stat_function_rounds: 0,
        stat_insts_visited: 0,
    };

    // Iterate to a module-level fixpoint: memory-object taints feed back
    // into function analyses.
    let mut rounds = 0;
    let mut prev_sig: Option<Vec<(u32, usize, usize, usize)>> = None;
    loop {
        rounds += 1;
        let before: Vec<TaintKind> = eng.obj_taint.values().map(|t| t.kind).collect();
        eng.memo.clear();

        // Roots: entry function plus every defined function not reachable
        // from it (so warnings cover the whole component).
        let entry = module.function_by_name(&config.entry);
        let mut analyzed_roots: BTreeSet<FuncId> = BTreeSet::new();
        if let Some(e) = entry {
            if module.function(e).is_definition {
                let ctx = eng.base_ctx(e, &BTreeSet::new(), &[]);
                eng.analyze(e, ctx);
                analyzed_roots.insert(e);
            }
        }
        for fid in module.definitions() {
            if module.function(fid).is_shminit() {
                continue;
            }
            let already = eng.memo.keys().any(|(f, _)| *f == fid);
            if !already {
                let nparams = module.function(fid).params.len();
                let ctx = eng.base_ctx(fid, &BTreeSet::new(), &vec![TaintKind::Clean; nparams]);
                eng.analyze(fid, ctx);
            }
        }

        let after: Vec<TaintKind> = eng.obj_taint.values().map(|t| t.kind).collect();
        let mut sig: Vec<(u32, usize, usize, usize)> = eng
            .memo
            .iter()
            .map(|((f, _), o)| {
                (
                    f.0,
                    o.ret.as_ref().map(|t| t.kind as usize).unwrap_or(0),
                    o.warnings.len(),
                    o.errors.len(),
                )
            })
            .collect();
        sig.sort_unstable();
        let stable = before == after && prev_sig.as_ref() == Some(&sig);
        prev_sig = Some(sig);
        if stable || rounds > 8 {
            break;
        }
    }

    // Aggregate + dedupe.
    let mut warnings: BTreeMap<(String, u32, u32, RegionId), Warning> = BTreeMap::new();
    let mut errors: BTreeMap<(String, u32, u32, String), ErrorDependency> = BTreeMap::new();
    for outcome in eng.memo.values() {
        for w in &outcome.warnings {
            warnings
                .entry((w.function.clone(), w.span.lo, w.span.hi, w.region))
                .or_insert_with(|| w.clone());
        }
        for e in &outcome.errors {
            let key = (e.function.clone(), e.span.lo, e.span.hi, e.critical.clone());
            match errors.get_mut(&key) {
                Some(prev) => {
                    // Keep the worst kind.
                    if e.kind > prev.kind {
                        *prev = e.clone();
                    }
                }
                None => {
                    errors.insert(key, e.clone());
                }
            }
        }
    }
    eng.notes.sort();
    eng.notes.dedup();
    let degradations = eng
        .degraded
        .iter()
        .map(|(name, (kind, detail))| Degradation {
            kind: *kind,
            functions: vec![name.clone()],
            detail: detail.clone(),
        })
        .collect();
    metrics.add_many(
        Class::Counter,
        &[
            ("taint.module_rounds", rounds as u64),
            ("taint.contexts", eng.memo.len() as u64),
            ("taint.function_rounds", eng.stat_function_rounds),
            ("taint.vfg_nodes_visited", eng.stat_insts_visited),
        ],
    );
    TaintResults {
        warnings: warnings.into_values().collect(),
        errors: errors.into_values().collect(),
        notes: eng.notes,
        contexts_analyzed: eng.memo.len(),
        degradations,
    }
}

/// Globals annotated `noncore(...)` that are not shm regions: socket /
/// descriptor variables for the §3.4.3 message-passing extension.
fn find_noncore_sockets(module: &Module, regions: &RegionMap) -> BTreeSet<safeflow_ir::GlobalId> {
    let mut out = BTreeSet::new();
    for fid in module.definitions() {
        for ann in &module.function(fid).annotations {
            if let Annotation::Noncore { target, .. } = ann {
                if let Some(g) = module.global_by_name(target) {
                    if regions.by_global(g).is_none() {
                        out.insert(g);
                    }
                }
            }
        }
    }
    out
}

struct Engine<'a> {
    module: &'a Module,
    regions: &'a RegionMap,
    shm: &'a ShmPointers,
    pt: &'a PointsTo,
    config: &'a AnalysisConfig,
    memo: HashMap<(FuncId, Ctx), Outcome>,
    in_progress: BTreeSet<FuncId>,
    /// Module-wide memory-object taint (flow-insensitive, like the paper's
    /// DSA-backed memory reasoning).
    obj_taint: BTreeMap<ObjId, Taint>,
    noncore_sockets: BTreeSet<safeflow_ir::GlobalId>,
    notes: Vec<String>,
    cfg_cache: HashMap<FuncId, (Cfg, ControlDeps)>,
    /// Set when a memory-object taint was raised; forces another local
    /// round so earlier loads observe it.
    obj_dirty: bool,
    /// Wall-clock deadline for the run, from `Budget::deadline_ms`.
    deadline: Option<Instant>,
    /// Functions whose analysis degraded, with why (keyed by name so the
    /// record survives the memo clears of the module-level fixpoint).
    degraded: BTreeMap<String, (DegradationKind, String)>,
    /// Local fixpoint rounds run, across every `(function, context)` and
    /// every module-level round (the engine is single-threaded, so this is
    /// deterministic).
    stat_function_rounds: u64,
    /// Value-flow-graph nodes visited: one per instruction per local round.
    stat_insts_visited: u64,
}

impl<'a> Engine<'a> {
    /// The context a function runs in, given the caller's assumed set and
    /// argument taints: its own `assume(core(...))` annotations extend the
    /// assumption scope (and apply recursively to callees, §3.1).
    fn base_ctx(
        &mut self,
        fid: FuncId,
        inherited: &BTreeSet<RegionId>,
        params: &[TaintKind],
    ) -> Ctx {
        let mut assumed = inherited.clone();
        let func = self.module.function(fid);
        for ann in &func.annotations {
            if let Annotation::AssumeCore { ptr, offset, size, span: _ } = ann {
                let Some(rids) = self.resolve_regions_for_name(fid, ptr) else {
                    self.notes.push(format!(
                        "assume(core({ptr}, ...)) in `{}` names no known shared-memory pointer; ignored",
                        func.name
                    ));
                    continue;
                };
                // Extent must span the whole region, else ineffective
                // (§3.1: "Offset and size values should span an entire
                // array ... otherwise, the annotation becomes ineffective").
                let off = crate::regions::eval_ann_expr(self.module, offset);
                let sz = crate::regions::eval_ann_expr(self.module, size);
                for rid in rids {
                    let region = self.regions.region(rid);
                    match (off, sz) {
                        (Some(0), Some(s)) if s as u64 == region.size => {
                            assumed.insert(rid);
                        }
                        _ => {
                            self.notes.push(format!(
                                "assume(core({ptr}, ...)) in `{}` does not span the whole region `{}` ({} bytes); annotation is ineffective",
                                func.name, region.name, region.size
                            ));
                        }
                    }
                }
            }
        }
        Ctx { assumed, params: params.to_vec() }
    }

    /// Regions a pointer name refers to inside `fid`: a region global, a
    /// global holding region pointers, or a parameter.
    fn resolve_regions_for_name(&self, fid: FuncId, name: &str) -> Option<BTreeSet<RegionId>> {
        if let Some(g) = self.module.global_by_name(name) {
            if let Some(r) = self.regions.by_global(g) {
                return Some(std::iter::once(r).collect());
            }
            let held: BTreeSet<RegionId> =
                self.shm.global_regions(g).into_iter().map(|p| p.region).collect();
            if !held.is_empty() {
                return Some(held);
            }
        }
        let func = self.module.function(fid);
        if let Some(i) = func.params.iter().position(|p| p.name == name) {
            let held: BTreeSet<RegionId> = self
                .shm
                .regions_of(fid, &Value::Param(i as u32))
                .into_iter()
                .map(|p| p.region)
                .collect();
            if !held.is_empty() {
                return Some(held);
            }
        }
        None
    }

    fn analyze(&mut self, fid: FuncId, ctx: Ctx) -> Taint {
        if let Some(out) = self.memo.get(&(fid, ctx.clone())) {
            return out.ret.clone().unwrap_or_else(Taint::clean);
        }
        if self.in_progress.contains(&fid) {
            // Recursion: seed with Clean; the module-level fixpoint loop
            // re-runs analyses until stable.
            return Taint::clean();
        }
        // Context-explosion guard (per function): beyond the cap, merge
        // into a single worst-case context — no inherited assumptions and
        // fully tainted parameters. Sound (only adds taint), loses
        // precision.
        let per_fn = self.memo.keys().filter(|(f, _)| *f == fid).count();
        if per_fn >= self.config.max_contexts {
            let nparams = self.module.function(fid).params.len();
            let merged = self.base_ctx(fid, &BTreeSet::new(), &vec![TaintKind::Data; nparams]);
            if merged != ctx {
                return self.analyze(fid, merged);
            }
        }
        self.in_progress.insert(fid);
        let outcome = self.run_function(fid, &ctx);
        self.in_progress.remove(&fid);
        let ret = outcome.ret.clone().unwrap_or_else(Taint::clean);
        self.memo.insert((fid, ctx), outcome);
        ret
    }

    fn run_function(&mut self, fid: FuncId, ctx: &Ctx) -> Outcome {
        let func = self.module.function(fid);
        let mut outcome = Outcome::default();
        if func.blocks.is_empty() {
            return outcome;
        }
        // Explicit budgets: scopes beyond them are not analyzed in depth —
        // they degrade to a conservative outcome instead (loud, never a
        // silent pass).
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return self.conservative_outcome(
                    fid,
                    ctx,
                    "wall-clock deadline exceeded".to_string(),
                );
            }
        }
        if let Some(cap) = self.config.budget.max_function_insts {
            if func.insts.len() > cap {
                return self.conservative_outcome(
                    fid,
                    ctx,
                    format!(
                        "function exceeds the {cap}-instruction budget ({} instructions)",
                        func.insts.len()
                    ),
                );
            }
        }
        self.cfg_cache.entry(fid).or_insert_with(|| {
            let cfg = Cfg::build(func);
            let pdom = PostDomTree::build(func, &cfg);
            let cd = ControlDeps::build(func, &cfg, &pdom);
            (cfg, cd)
        });

        // Locally-assumed objects for the §3.4.3 extension: assume core on
        // a *local/param* pointer exempts loads through it in this function
        // only.
        let local_assumed_params: BTreeSet<u32> = func
            .annotations
            .iter()
            .filter_map(|a| match a {
                Annotation::AssumeCore { ptr, .. } => {
                    func.params.iter().position(|p| p.name == *ptr).map(|i| i as u32)
                }
                _ => None,
            })
            .collect();

        let mut taints: HashMap<InstId, Taint> = HashMap::new();
        let mut block_ctl: HashMap<BlockId, Taint> = HashMap::new();

        // Iterate the function body to a local fixpoint (φ-loops, control
        // taint feedback). The built-in bound of 16 rounds keeps its
        // historical silent behavior; an explicit `fixpoint_rounds` budget
        // degrades the function when the cap stops the iteration early.
        let rounds_cap =
            self.config.budget.fixpoint_rounds.map(|r| r.max(1) as usize).unwrap_or(16);
        let mut converged = false;
        for _round in 0..rounds_cap {
            let mut changed = false;
            self.obj_dirty = false;
            self.stat_function_rounds += 1;
            // Recompute control-taint of blocks from tainted branches.
            if self.config.track_control_dependence {
                let (cfg, cd) = self.cfg_cache.get(&fid).unwrap();
                let mut new_ctl: HashMap<BlockId, Taint> = HashMap::new();
                for (bid, block) in func.iter_blocks() {
                    if !cfg.is_reachable(bid) {
                        continue;
                    }
                    let cond = match &block.terminator {
                        Terminator::CondBr { cond, .. } => Some(cond),
                        Terminator::Switch { value, .. } => Some(value),
                        _ => None,
                    };
                    let Some(cond) = cond else { continue };
                    let t = value_taint(cond, &taints, ctx);
                    let t_all = join2(&t, block_ctl.get(&bid));
                    if t_all.kind == TaintKind::Clean {
                        continue;
                    }
                    let branch_span = match cond {
                        Value::Inst(id) => func.inst(*id).span,
                        _ => func.span,
                    };
                    let ctl = Taint {
                        kind: TaintKind::Control,
                        origin: Some(FlowNode::step(
                            format!("branch in `{}` decided by unsafe value", func.name),
                            branch_span,
                            t_all.origin.clone().unwrap_or_else(|| {
                                FlowNode::source("unsafe branch condition", func.span)
                            }),
                        )),
                    };
                    for &dep in cd.controlled_by(bid) {
                        new_ctl.entry(dep).or_insert_with(Taint::clean).join(&ctl);
                    }
                }
                for (b, t) in new_ctl {
                    let e = block_ctl.entry(b).or_insert_with(Taint::clean);
                    if e.join(&t) {
                        changed = true;
                    }
                }
            }

            for (bid, block) in func.iter_blocks() {
                let ctl_here = block_ctl.get(&bid).cloned().unwrap_or_else(Taint::clean);
                self.stat_insts_visited += block.insts.len() as u64;
                for &iid in &block.insts {
                    let inst = func.inst(iid);
                    let mut t = Taint::clean();
                    match &inst.kind {
                        InstKind::Load { ptr } => {
                            let locally_assumed =
                                derives_from_assumed_param(func, ptr, &local_assumed_params, 0);
                            // Region source?
                            for fact in self.shm.regions_of(fid, ptr) {
                                let region = self.regions.region(fact.region);
                                if !region.noncore {
                                    continue;
                                }
                                if ctx.assumed.contains(&fact.region) || locally_assumed {
                                    continue; // monitored: safe (§2 rules)
                                }
                                outcome.warnings.push(Warning {
                                    function: func.name.clone(),
                                    region: fact.region,
                                    region_name: region.name.clone(),
                                    span: inst.span,
                                });
                                t.join(&Taint {
                                    kind: TaintKind::Data,
                                    origin: Some(FlowNode::source(
                                        format!(
                                            "unmonitored read of non-core region `{}` in `{}`",
                                            region.name, func.name
                                        ),
                                        inst.span,
                                    )),
                                });
                            }
                            // Pointer-influence + memory-object taint. A
                            // load through a locally-assumed parameter is
                            // monitored (§3.4.3's received-buffer form), so
                            // object taint does not apply.
                            t.join(&value_taint(ptr, &taints, ctx));
                            if !locally_assumed {
                                for o in self.pt.points_to(fid, ptr) {
                                    if let Some(ot) = self.obj_taint.get(&o) {
                                        t.join(ot);
                                    }
                                    let base = self.pt.base_of(o);
                                    if base != o {
                                        if let Some(ot) = self.obj_taint.get(&base) {
                                            t.join(ot);
                                        }
                                    }
                                }
                            }
                            // Loads of plain globals: global object taint via
                            // points-to is handled above when ptr is
                            // Value::Global — covered since points_to maps
                            // globals to their object.
                        }
                        InstKind::Store { ptr, value } => {
                            let mut vt = value_taint(value, &taints, ctx);
                            vt.join(&ctl_here);
                            if vt.kind != TaintKind::Clean {
                                for o in self.pt.points_to(fid, ptr) {
                                    let desc = self.pt.describe(self.module, o);
                                    let e = self.obj_taint.entry(o).or_insert_with(Taint::clean);
                                    if e.join(&Taint {
                                        kind: vt.kind,
                                        origin: vt.origin.clone().map(|orig| {
                                            FlowNode::step(
                                                format!("stored to {desc}"),
                                                inst.span,
                                                orig,
                                            )
                                        }),
                                    }) {
                                        self.obj_dirty = true;
                                    }
                                }
                            }
                        }
                        InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                            t.join(&value_taint(lhs, &taints, ctx));
                            t.join(&value_taint(rhs, &taints, ctx));
                        }
                        InstKind::Cast { value, .. } => {
                            t.join(&value_taint(value, &taints, ctx));
                        }
                        InstKind::FieldAddr { base, .. } => {
                            t.join(&value_taint(base, &taints, ctx));
                        }
                        InstKind::ElemAddr { base, index } => {
                            t.join(&value_taint(base, &taints, ctx));
                            t.join(&value_taint(index, &taints, ctx));
                        }
                        InstKind::Phi { incoming } => {
                            // Data from the incoming values, plus implicit
                            // flow: which predecessor ran (and therefore
                            // which value was selected) is decided by the
                            // branches controlling the predecessors.
                            for (pred, v) in incoming {
                                t.join(&value_taint(v, &taints, ctx));
                                if let Some(ctl) = block_ctl.get(pred) {
                                    t.join(ctl);
                                }
                            }
                        }
                        InstKind::Call { callee, args } => {
                            t = self.handle_call(
                                fid,
                                func,
                                iid,
                                callee,
                                args,
                                &taints,
                                ctx,
                                &ctl_here,
                                &mut outcome,
                            );
                        }
                        InstKind::AssertSafe { var, value } => {
                            let mut vt = value_taint(value, &taints, ctx);
                            vt.join(&ctl_here);
                            if vt.kind != TaintKind::Clean {
                                outcome.errors.push(ErrorDependency {
                                    critical: var.clone(),
                                    function: func.name.clone(),
                                    span: inst.span,
                                    kind: if vt.kind == TaintKind::Data {
                                        DependencyKind::Data
                                    } else {
                                        DependencyKind::ControlOnly
                                    },
                                    flow: vt.origin.map(|orig| {
                                        FlowNode::step(
                                            format!("assert(safe({var})) reached"),
                                            inst.span,
                                            orig,
                                        )
                                    }),
                                });
                            }
                        }
                        InstKind::Alloca { .. } => {}
                    }
                    if t.kind != TaintKind::Clean {
                        let e = taints.entry(iid).or_insert_with(Taint::clean);
                        if e.join(&t) {
                            changed = true;
                        }
                    }
                }
            }

            // Return taint.
            let mut ret = Taint::clean();
            for (bid, block) in func.iter_blocks() {
                if let Terminator::Ret(Some(v)) = &block.terminator {
                    ret.join(&value_taint(v, &taints, ctx));
                    if let Some(ctl) = block_ctl.get(&bid) {
                        ret.join(ctl);
                    }
                }
            }
            match &mut outcome.ret {
                Some(prev) => {
                    if prev.join(&ret) {
                        changed = true;
                    }
                }
                None => {
                    outcome.ret = Some(ret);
                    changed = true;
                }
            }

            if !changed && !self.obj_dirty {
                converged = true;
                break;
            }
            // Findings are recollected each round; clear to avoid dupes.
            if _round + 1 < rounds_cap {
                let keep_ret = outcome.ret.clone();
                outcome = Outcome { ret: keep_ret, ..Outcome::default() };
            }
        }
        if !converged && self.config.budget.fixpoint_rounds.is_some() {
            return self.conservative_outcome(
                fid,
                ctx,
                format!("taint fixpoint did not converge within {rounds_cap} round(s)"),
            );
        }
        outcome
    }

    /// The degraded result for a function whose analysis ran out of
    /// budget: every unmonitored non-core read is a warning, every sink is
    /// a `Data` error, every store (and configured receive buffer) taints
    /// its memory objects, and the return value is `Data`-tainted — a
    /// strict superset of anything the full analysis could report.
    fn conservative_outcome(&mut self, fid: FuncId, ctx: &Ctx, reason: String) -> Outcome {
        let func = self.module.function(fid);
        self.degraded
            .entry(func.name.clone())
            .or_insert((DegradationKind::BudgetExhausted, reason));
        let origin = FlowNode::source(
            format!("analysis of `{}` degraded; conservatively assumed unsafe", func.name),
            func.span,
        );
        let mut outcome = Outcome {
            ret: Some(Taint { kind: TaintKind::Data, origin: Some(origin.clone()) }),
            ..Outcome::default()
        };
        for (_, inst) in func.iter_insts() {
            match &inst.kind {
                InstKind::Load { ptr } => {
                    for fact in self.shm.regions_of(fid, ptr) {
                        let region = self.regions.region(fact.region);
                        if !region.noncore || ctx.assumed.contains(&fact.region) {
                            continue;
                        }
                        outcome.warnings.push(Warning {
                            function: func.name.clone(),
                            region: fact.region,
                            region_name: region.name.clone(),
                            span: inst.span,
                        });
                    }
                }
                InstKind::Store { ptr, .. } => {
                    for o in self.pt.points_to(fid, ptr) {
                        let e = self.obj_taint.entry(o).or_insert_with(Taint::clean);
                        if e.join(&Taint { kind: TaintKind::Data, origin: Some(origin.clone()) }) {
                            self.obj_dirty = true;
                        }
                    }
                }
                InstKind::AssertSafe { var, .. } => {
                    outcome.errors.push(ErrorDependency {
                        critical: var.clone(),
                        function: func.name.clone(),
                        span: inst.span,
                        kind: DependencyKind::Data,
                        flow: Some(origin.clone()),
                    });
                }
                InstKind::Call { callee, args } => {
                    // Local callees are still analyzed — in the worst-case
                    // context (no inherited assumptions, tainted
                    // parameters), so findings that a precise caller
                    // context would have produced cannot silently vanish.
                    if let Callee::Local(target) = callee {
                        if self.module.function(*target).is_definition {
                            let n = self.module.function(*target).params.len();
                            let worst =
                                self.base_ctx(*target, &BTreeSet::new(), &vec![TaintKind::Data; n]);
                            self.analyze(*target, worst);
                        }
                    }
                    if let Some(name) = self.module.external_callee_name(callee) {
                        for call in &self.config.implicit_critical_calls {
                            let (cname, argi) = (&call.name, &call.arg);
                            if cname == name && args.get(*argi).is_some() {
                                outcome.errors.push(ErrorDependency {
                                    critical: format!("{name}:arg{argi}"),
                                    function: func.name.clone(),
                                    span: inst.span,
                                    kind: DependencyKind::Data,
                                    flow: Some(origin.clone()),
                                });
                            }
                        }
                        for spec in &self.config.recv_functions {
                            if spec.name == *name {
                                if let Some(buf) = args.get(spec.buf_arg) {
                                    for o in self.pt.points_to(fid, buf) {
                                        let e =
                                            self.obj_taint.entry(o).or_insert_with(Taint::clean);
                                        if e.join(&Taint {
                                            kind: TaintKind::Data,
                                            origin: Some(origin.clone()),
                                        }) {
                                            self.obj_dirty = true;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        outcome
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_call(
        &mut self,
        fid: FuncId,
        func: &Function,
        iid: InstId,
        callee: &Callee,
        args: &[Value],
        taints: &HashMap<InstId, Taint>,
        ctx: &Ctx,
        ctl_here: &Taint,
        outcome: &mut Outcome,
    ) -> Taint {
        let inst = func.inst(iid);
        // External (or prototype-only) call?
        if let Some(name) = self.module.external_callee_name(callee) {
            let name = name.to_string();
            // Implicit critical arguments (kill's pid).
            for call in &self.config.implicit_critical_calls {
                let (cname, argi) = (&call.name, &call.arg);
                if *cname == name {
                    if let Some(arg) = args.get(*argi) {
                        let mut at = value_taint(arg, taints, ctx);
                        at.join(ctl_here);
                        if at.kind != TaintKind::Clean {
                            outcome.errors.push(ErrorDependency {
                                critical: format!("{name}:arg{argi}"),
                                function: func.name.clone(),
                                span: inst.span,
                                kind: if at.kind == TaintKind::Data {
                                    DependencyKind::Data
                                } else {
                                    DependencyKind::ControlOnly
                                },
                                flow: at.origin.map(|orig| {
                                    FlowNode::step(
                                        format!("passed as critical argument {argi} of `{name}`"),
                                        inst.span,
                                        orig,
                                    )
                                }),
                            });
                        }
                    }
                }
            }
            // recv-style calls over non-core sockets taint the buffer
            // (§3.4.3 extension).
            for spec in &self.config.recv_functions {
                if spec.name == name {
                    let sock_noncore = args
                        .get(spec.sock_arg)
                        .is_some_and(|s| self.socket_is_noncore(fid, func, s, taints));
                    if sock_noncore {
                        if let Some(buf) = args.get(spec.buf_arg) {
                            let origin = FlowNode::source(
                                format!("`{name}` received non-core data in `{}`", func.name),
                                inst.span,
                            );
                            for o in self.pt.points_to(fid, buf) {
                                let e = self.obj_taint.entry(o).or_insert_with(Taint::clean);
                                if e.join(&Taint {
                                    kind: TaintKind::Data,
                                    origin: Some(origin.clone()),
                                }) {
                                    self.obj_dirty = true;
                                }
                            }
                        }
                    }
                }
            }
            // Unknown external functions: result considered clean (the
            // trusted-library model of §3.4.3).
            return Taint::clean();
        }
        // Local call: context-sensitive descent.
        let Callee::Local(target) = callee else { unreachable!() };
        let mut param_kinds = Vec::with_capacity(args.len());
        let mut worst_arg = Taint::clean();
        for arg in args {
            let mut at = value_taint(arg, taints, ctx);
            at.join(ctl_here);
            if at.kind > worst_arg.kind {
                worst_arg = at.clone();
            }
            param_kinds.push(at.kind);
        }
        let callee_ctx = self.base_ctx(*target, &ctx.assumed, &param_kinds);
        let ret = self.analyze(*target, callee_ctx);
        let mut t = ret;
        // Returned taint with no better provenance inherits the worst
        // argument's origin for path reconstruction.
        if t.kind != TaintKind::Clean && t.origin.is_none() {
            t.origin = worst_arg.origin.clone();
        }
        if t.kind != TaintKind::Clean {
            t.origin = Some(match t.origin {
                Some(orig) => FlowNode::step(
                    format!("returned from `{}`", self.module.function(*target).name),
                    inst.span,
                    orig,
                ),
                None => FlowNode::source(
                    format!("unsafe value returned from `{}`", self.module.function(*target).name),
                    inst.span,
                ),
            });
        }
        t.join(ctl_here);
        t
    }

    /// Whether a socket argument reads from a `noncore(...)`-annotated
    /// descriptor global.
    fn socket_is_noncore(
        &self,
        _fid: FuncId,
        func: &Function,
        sock: &Value,
        _taints: &HashMap<InstId, Taint>,
    ) -> bool {
        match sock {
            Value::Inst(id) => match &func.inst(*id).kind {
                InstKind::Load { ptr: Value::Global(g) } => self.noncore_sockets.contains(g),
                InstKind::Cast { value, .. } => self.socket_is_noncore(_fid, func, value, _taints),
                _ => false,
            },
            _ => false,
        }
    }
}

/// Whether a pointer value derives (through field/element/cast chains)
/// from a parameter covered by a local `assume(core(param, ...))` — the
/// §3.4.3 received-buffer monitoring form.
fn derives_from_assumed_param(
    func: &Function,
    v: &Value,
    assumed: &BTreeSet<u32>,
    depth: usize,
) -> bool {
    if depth > 16 {
        return false;
    }
    match v {
        Value::Param(i) => assumed.contains(i),
        Value::Inst(id) => match &func.inst(*id).kind {
            InstKind::FieldAddr { base, .. }
            | InstKind::ElemAddr { base, .. }
            | InstKind::Cast { value: base, .. } => {
                derives_from_assumed_param(func, base, assumed, depth + 1)
            }
            _ => false,
        },
        _ => false,
    }
}

/// Taint of an operand: parameter taint comes from the context, SSA values
/// from the local map, constants are clean.
fn value_taint(v: &Value, taints: &HashMap<InstId, Taint>, ctx: &Ctx) -> Taint {
    match v {
        Value::Inst(id) => taints.get(id).cloned().unwrap_or_else(Taint::clean),
        Value::Param(i) => {
            let kind = ctx.params.get(*i as usize).copied().unwrap_or(TaintKind::Clean);
            Taint {
                kind,
                origin: if kind == TaintKind::Clean {
                    None
                } else {
                    Some(FlowNode::source(
                        format!("tainted argument #{i}"),
                        safeflow_syntax::span::Span::dummy(),
                    ))
                },
            }
        }
        _ => Taint::clean(),
    }
}

fn join2(a: &Taint, b: Option<&Taint>) -> Taint {
    let mut t = a.clone();
    if let Some(b) = b {
        t.join(b);
    }
    t
}
