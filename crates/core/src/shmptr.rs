//! Phase 1: interprocedural identification of pointers to shared memory
//! (paper §3.3, first phase).
//!
//! Starting from the region globals declared by `shminit` post-conditions,
//! region-pointer facts propagate through SSA edges, loads/stores of
//! globals, call arguments and return values — the paper's bottom-up +
//! top-down passes over call-graph SCCs, realized here as a module-wide
//! fixpoint (equivalent result; the SCC orders are an evaluation-order
//! optimization).
//!
//! Each fact is a `(region, constant element offset)` pair; the offset
//! survives constant pointer arithmetic so the array-bounds phase can
//! reason about derived pointers, and degrades to `None` otherwise.

use crate::regions::{RegionId, RegionMap};
use safeflow_ir::{Callee, FuncId, GlobalId, InstId, InstKind, Module, Terminator, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A region-pointer fact: which region, and at which constant *element*
/// offset from the region base (when known).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionPtr {
    /// The pointed-to region.
    pub region: RegionId,
    /// Constant element offset from the region base, if statically known.
    pub offset: Option<i64>,
}

impl RegionPtr {
    fn base(region: RegionId) -> RegionPtr {
        RegionPtr { region, offset: Some(0) }
    }

    fn shifted(self, delta: Option<i64>) -> RegionPtr {
        RegionPtr {
            region: self.region,
            offset: match (self.offset, delta) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            },
        }
    }

    fn unknown_offset(self) -> RegionPtr {
        RegionPtr { region: self.region, offset: None }
    }
}

/// Where a region-pointer fact can attach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Inst(FuncId, InstId),
    Param(FuncId, u32),
    Ret(FuncId),
    Global(GlobalId),
}

/// Results of phase 1.
#[derive(Debug, Default)]
pub struct ShmPointers {
    sets: HashMap<Key, BTreeSet<RegionPtr>>,
    /// Stores of region pointers into memory that is not a named global
    /// variable — collected here for the P2 check in phase 2:
    /// `(function, store inst, offending pointers)`.
    pub escaping_stores: Vec<(FuncId, InstId)>,
}

impl ShmPointers {
    /// Region pointers held by `value` inside `func`.
    pub fn regions_of(&self, func: FuncId, value: &Value) -> BTreeSet<RegionPtr> {
        match value {
            Value::Inst(id) => self.get(Key::Inst(func, *id)),
            Value::Param(i) => self.get(Key::Param(func, *i)),
            // The *address* of a region global is not itself a region
            // pointer; its contents are.
            _ => BTreeSet::new(),
        }
    }

    /// Region pointers stored in global `g`.
    pub fn global_regions(&self, g: GlobalId) -> BTreeSet<RegionPtr> {
        self.get(Key::Global(g))
    }

    /// Region pointers returned by `f`.
    pub fn return_regions(&self, f: FuncId) -> BTreeSet<RegionPtr> {
        self.get(Key::Ret(f))
    }

    /// Whether `value` may point into shared memory.
    pub fn is_shm_ptr(&self, func: FuncId, value: &Value) -> bool {
        !self.regions_of(func, value).is_empty()
    }

    fn get(&self, k: Key) -> BTreeSet<RegionPtr> {
        self.sets.get(&k).cloned().unwrap_or_default()
    }

    fn extend(&mut self, k: Key, ptrs: impl IntoIterator<Item = RegionPtr>) -> bool {
        let set = self.sets.entry(k).or_default();
        let before = set.len();
        // Collapse: keep at most one unknown-offset fact per region, and if
        // a region accumulates many distinct offsets, widen to unknown to
        // guarantee termination.
        for p in ptrs {
            set.insert(p);
        }
        let mut by_region: BTreeMap<RegionId, usize> = BTreeMap::new();
        for p in set.iter() {
            *by_region.entry(p.region).or_default() += 1;
        }
        for (r, n) in by_region {
            if n > 8 {
                set.retain(|p| p.region != r);
                set.insert(RegionPtr { region: r, offset: None });
            }
        }
        set.len() != before
    }
}

/// Runs phase 1 over the whole module.
pub fn identify_shm_pointers(module: &Module, regions: &RegionMap) -> ShmPointers {
    let mut sp = ShmPointers::default();
    // Seed: each region global holds a base pointer to its region.
    for r in regions.iter() {
        sp.extend(Key::Global(r.global), [RegionPtr::base(r.id)]);
    }

    let defs: Vec<FuncId> = module.definitions().collect();
    let mut changed = true;
    let mut rounds = 0;
    while changed {
        changed = false;
        rounds += 1;
        if rounds > 1000 {
            break; // defensive; widening above should prevent this
        }
        for &fid in &defs {
            let func = module.function(fid);
            // `shminit` bodies define the region layout (handled by the
            // region extractor); their intra-segment pointer arithmetic
            // must not leak cross-region aliases into the analysis.
            if func.is_shminit() {
                continue;
            }
            for (iid, inst) in func.iter_insts() {
                let this = Key::Inst(fid, iid);
                match &inst.kind {
                    InstKind::Load { ptr } => match ptr {
                        Value::Global(g) => {
                            let facts = sp.get(Key::Global(*g));
                            if sp.extend(this, facts) {
                                changed = true;
                            }
                        }
                        Value::Inst(pid)
                            if matches!(func.inst(*pid).kind, InstKind::Alloca { .. }) =>
                        {
                            // Address-taken local variable slot: facts were
                            // attached to the alloca by the Store case.
                            let facts = sp.get(Key::Inst(fid, *pid));
                            if !facts.is_empty() && sp.extend(this, facts) {
                                changed = true;
                            }
                        }
                        _ => {
                            // A load through a region pointer yields shm
                            // *data*; if that data is itself a pointer it is
                            // NOT a region pointer (storing pointers in
                            // shared memory is a P2 concern, not a region
                            // fact).
                        }
                    },
                    InstKind::Store { ptr, value } => {
                        let vfacts = match value {
                            Value::Inst(id) => sp.get(Key::Inst(fid, *id)),
                            Value::Param(i) => sp.get(Key::Param(fid, *i)),
                            _ => BTreeSet::new(),
                        };
                        if vfacts.is_empty() {
                            continue;
                        }
                        match ptr {
                            Value::Global(g) => {
                                if sp.extend(Key::Global(*g), vfacts) {
                                    changed = true;
                                }
                            }
                            Value::Inst(pid)
                                if matches!(func.inst(*pid).kind, InstKind::Alloca { .. }) =>
                            {
                                // Address-taken local holding a shm pointer:
                                // still a named variable; propagate through
                                // the slot by attaching facts to the alloca's
                                // loads via the alloca key itself.
                                if sp.extend(Key::Inst(fid, *pid), vfacts) {
                                    changed = true;
                                }
                            }
                            _ => {
                                // Region pointer stored into arbitrary
                                // memory: P2 violation candidate.
                                if !sp.escaping_stores.contains(&(fid, iid)) {
                                    sp.escaping_stores.push((fid, iid));
                                    changed = true;
                                }
                            }
                        }
                    }
                    InstKind::ElemAddr { base, index } => {
                        let facts = sp.regions_of(fid, base);
                        if facts.is_empty() {
                            continue;
                        }
                        let delta = index.as_const_int();
                        let shifted: Vec<RegionPtr> =
                            facts.into_iter().map(|p| p.shifted(delta)).collect();
                        if sp.extend(this, shifted) {
                            changed = true;
                        }
                    }
                    InstKind::FieldAddr { base, .. } => {
                        // A field pointer stays inside the region; the
                        // element offset no longer tracks whole elements.
                        let facts: Vec<RegionPtr> = sp
                            .regions_of(fid, base)
                            .into_iter()
                            .map(|p| if p.offset == Some(0) { p } else { p.unknown_offset() })
                            .collect();
                        if !facts.is_empty() && sp.extend(this, facts) {
                            changed = true;
                        }
                    }
                    InstKind::Cast { value, .. } if inst.ty.is_ptr() => {
                        let facts = sp.regions_of(fid, value);
                        if !facts.is_empty() && sp.extend(this, facts) {
                            changed = true;
                        }
                    }
                    InstKind::Phi { incoming } => {
                        let mut facts = BTreeSet::new();
                        for (_, v) in incoming {
                            facts.extend(sp.regions_of(fid, v));
                        }
                        if !facts.is_empty() && sp.extend(this, facts) {
                            changed = true;
                        }
                    }
                    InstKind::Call { callee: Callee::Local(target), args }
                        if module.function(*target).is_definition =>
                    {
                        for (i, arg) in args.iter().enumerate() {
                            let facts = sp.regions_of(fid, arg);
                            if !facts.is_empty() && sp.extend(Key::Param(*target, i as u32), facts)
                            {
                                changed = true;
                            }
                        }
                        let rets = sp.get(Key::Ret(*target));
                        if !rets.is_empty() && sp.extend(this, rets) {
                            changed = true;
                        }
                    }
                    _ => {}
                }
            }
            for (_, block) in func.iter_blocks() {
                if let Terminator::Ret(Some(v)) = &block.terminator {
                    let facts = sp.regions_of(fid, v);
                    if !facts.is_empty() && sp.extend(Key::Ret(fid), facts) {
                        changed = true;
                    }
                }
            }
        }
    }
    sp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::extract_regions;
    use safeflow_ir::build_module;
    use safeflow_syntax::diag::Diagnostics;
    use safeflow_syntax::parse_source;

    fn setup(src: &str) -> (Module, RegionMap, ShmPointers) {
        let pr = parse_source("t.c", src);
        assert!(!pr.diags.has_errors(), "{:?}", pr.diags);
        let mut diags = Diagnostics::new();
        let m = build_module(&pr.unit, &mut diags);
        assert!(!diags.has_errors(), "{diags:?}");
        let regions = extract_regions(&m, &["shmat".to_string()], &mut diags);
        let sp = identify_shm_pointers(&m, &regions);
        (m, regions, sp)
    }

    const PRELUDE: &str = r#"
        typedef struct { float control; float arr[4]; } SHMData;
        SHMData *feedback;
        SHMData *noncoreCtrl;
        void *shmat(int shmid, void *addr, int flags);
        void initComm(void)
        /** SafeFlow Annotation shminit */
        {
            feedback = (SHMData *) shmat(0, 0, 0);
            noncoreCtrl = feedback + 1;
            /** SafeFlow Annotation
                assume(shmvar(feedback, sizeof(SHMData)))
                assume(shmvar(noncoreCtrl, sizeof(SHMData)))
                assume(noncore(noncoreCtrl))
            */
        }
    "#;

    #[test]
    fn load_of_region_global_is_region_ptr() {
        let (m, regions, sp) =
            setup(&format!("{PRELUDE}\nfloat use(void) {{ return noncoreCtrl->control; }}"));
        let fid = m.function_by_name("use").unwrap();
        let f = m.function(fid);
        let nc = regions.iter().find(|r| r.name == "noncoreCtrl").unwrap();
        // The load of the global yields a pointer to region noncoreCtrl.
        let mut found = false;
        for (iid, inst) in f.iter_insts() {
            if matches!(inst.kind, InstKind::Load { ptr: Value::Global(_) }) {
                let facts = sp.regions_of(fid, &Value::Inst(iid));
                if facts.iter().any(|p| p.region == nc.id && p.offset == Some(0)) {
                    found = true;
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn propagation_through_args_and_returns() {
        let (m, regions, sp) = setup(&format!(
            r#"{PRELUDE}
            SHMData *pick(SHMData *p) {{ return p; }}
            float use(void) {{
                SHMData *q = pick(noncoreCtrl);
                return q->control;
            }}
            "#
        ));
        let pick = m.function_by_name("pick").unwrap();
        let nc = regions.iter().find(|r| r.name == "noncoreCtrl").unwrap();
        // pick's param and return both carry the region.
        assert!(sp.get(Key::Param(pick, 0)).iter().any(|p| p.region == nc.id));
        assert!(sp.return_regions(pick).iter().any(|p| p.region == nc.id));
    }

    #[test]
    fn pointer_arithmetic_tracks_offsets() {
        let (m, regions, sp) = setup(&format!(
            "{PRELUDE}\nfloat use(void) {{ SHMData *p = feedback + 1; return p->control; }}"
        ));
        let fid = m.function_by_name("use").unwrap();
        let f = m.function(fid);
        let fb = regions.iter().find(|r| r.name == "feedback").unwrap();
        let mut found = false;
        for (iid, inst) in f.iter_insts() {
            if matches!(inst.kind, InstKind::ElemAddr { .. }) {
                for p in sp.regions_of(fid, &Value::Inst(iid)) {
                    if p.region == fb.id && p.offset == Some(1) {
                        found = true;
                    }
                }
            }
        }
        assert!(found, "feedback+1 should be region feedback at element offset 1");
    }

    #[test]
    fn escaping_store_recorded_for_p2() {
        let (m, _, sp) = setup(&format!(
            r#"{PRELUDE}
            typedef struct {{ SHMData *stash; }} Holder;
            Holder h;
            void bad(void) {{ h.stash = noncoreCtrl; }}
            "#
        ));
        assert_eq!(sp.escaping_stores.len(), 1);
        let (fid, _) = sp.escaping_stores[0];
        assert_eq!(m.function(fid).name, "bad");
    }

    #[test]
    fn store_to_plain_global_is_allowed() {
        let (m, regions, sp) = setup(&format!(
            r#"{PRELUDE}
            SHMData *alias;
            void ok(void) {{ alias = noncoreCtrl; }}
            float use(void) {{ return alias->control; }}
            "#
        ));
        assert!(sp.escaping_stores.is_empty());
        let alias_g = m.global_by_name("alias").unwrap();
        let nc = regions.iter().find(|r| r.name == "noncoreCtrl").unwrap();
        assert!(sp.global_regions(alias_g).iter().any(|p| p.region == nc.id));
    }

    #[test]
    fn non_shm_pointers_have_no_facts() {
        let (m, _, sp) = setup(&format!("{PRELUDE}\nint local_only(int *p) {{ return *p; }}"));
        let fid = m.function_by_name("local_only").unwrap();
        assert!(!sp.is_shm_ptr(fid, &Value::Param(0)));
    }
}
