//! Shared-memory region model (paper §3.2.1).
//!
//! `shminit`-annotated functions declare the program's shared-memory
//! layout: each `assume(shmvar(p, size))` post-condition mints a **region**
//! — `size` bytes reachable through the pointer variable `p` — and
//! `assume(noncore(p))` marks a region writable by non-core components.
//!
//! A small abstract interpreter runs over each `shminit` body to recover
//! the constant byte offset of each region pointer within its segment
//! (e.g. `noncoreCtrl = feedback + 1` in Figure 2/3). Those offsets feed
//! the static equivalent of the paper's `InitCheck`: regions bound to the
//! same segment must not overlap, and must fit in the segment when its
//! size is a known constant.

use safeflow_ir::{
    BinOp, Callee, FuncId, GlobalId, InstId, InstKind, Module, Terminator, Type, Value,
};
use safeflow_syntax::annot::{AnnExpr, Annotation};
use safeflow_syntax::diag::Diagnostics;
use safeflow_syntax::span::Span;
use std::collections::HashMap;

/// Identifier of a shared-memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

/// One shared-memory region.
#[derive(Debug, Clone)]
pub struct Region {
    /// Region id.
    pub id: RegionId,
    /// The pointer variable the `shmvar` annotation names.
    pub name: String,
    /// The global pointer variable holding the region's base.
    pub global: GlobalId,
    /// Total size in bytes.
    pub size: u64,
    /// Size of one element (pointee type of the pointer variable).
    pub elem_size: u64,
    /// Number of elements (`size / elem_size`, at least 1).
    pub len: u64,
    /// Whether a non-core component may write this region.
    pub noncore: bool,
    /// Declared channel label, when the region was minted by a
    /// `channel(ptr, size, label)` fact (label-lattice policies).
    /// Unlabeled non-core regions carry the implicit `untrusted` label.
    pub label: Option<String>,
    /// The `shminit` function that declared it.
    pub init_fn: FuncId,
    /// Segment identity: the attach call-site whose result this region's
    /// pointer was derived from, when the initializer was interpretable.
    pub segment: Option<(FuncId, InstId)>,
    /// Constant byte offset within the segment, when interpretable.
    pub offset: Option<i64>,
    /// Annotation location.
    pub span: Span,
}

/// All regions of a module plus lookup tables.
#[derive(Debug, Clone, Default)]
pub struct RegionMap {
    /// Regions in declaration order.
    pub regions: Vec<Region>,
    by_global: HashMap<GlobalId, RegionId>,
    /// Static `InitCheck` findings (human-readable).
    pub init_check: Vec<String>,
    /// Number of annotation facts bound.
    pub annotation_count: usize,
}

impl RegionMap {
    /// The region owned by global pointer `g`, if any.
    pub fn by_global(&self, g: GlobalId) -> Option<RegionId> {
        self.by_global.get(&g).copied()
    }

    /// The region stored under `id`.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.0 as usize]
    }

    /// Iterates all regions.
    pub fn iter(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter()
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no regions were declared.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

/// Evaluates an annotation size expression against the module's type and
/// constant tables.
pub fn eval_ann_expr(module: &Module, e: &AnnExpr) -> Option<i64> {
    e.eval(&|leaf| match leaf {
        AnnExpr::Sizeof(name) => module.sizeof_name(name).map(|s| s as i64),
        AnnExpr::Ident(name) => module.enum_consts.get(name).copied(),
        _ => None,
    })
}

/// Extracts regions from every `shminit` function of `module`.
pub fn extract_regions(
    module: &Module,
    attach_functions: &[String],
    diags: &mut Diagnostics,
) -> RegionMap {
    let mut map = RegionMap::default();
    for fid in module.definitions() {
        let func = module.function(fid);
        if !func.is_shminit() {
            continue;
        }
        map.annotation_count += func.annotations.len();
        // First pass: shmvar facts mint regions; channel facts mint
        // labeled non-core regions (the labeled generalization of
        // `shmvar` + `noncore`).
        for ann in &func.annotations {
            let (fact, ptr, size, label, span) = match ann {
                Annotation::ShmVar { ptr, size, span } => ("shmvar", ptr, size, None, span),
                Annotation::Channel { ptr, size, label, span } => {
                    ("channel", ptr, size, Some(label.clone()), span)
                }
                _ => continue,
            };
            {
                let Some(gid) = module.global_by_name(ptr) else {
                    diags.error(
                        *span,
                        format!("{fact}({ptr}, ...): `{ptr}` is not a global pointer variable"),
                    );
                    continue;
                };
                let gty = &module.global(gid).ty;
                let Some(pointee) = gty.pointee() else {
                    diags.error(*span, format!("{fact}({ptr}, ...): `{ptr}` is not a pointer"));
                    continue;
                };
                let Some(size) = eval_ann_expr(module, size) else {
                    diags.error(
                        *span,
                        format!("{fact}({ptr}, ...): size is not a compile-time constant"),
                    );
                    continue;
                };
                if size <= 0 {
                    diags.error(*span, format!("{fact}({ptr}, ...): size must be positive"));
                    continue;
                }
                if map.by_global.contains_key(&gid) {
                    diags.error(*span, format!("{fact}({ptr}, ...): region already declared"));
                    continue;
                }
                let elem_size = match pointee {
                    Type::Void => 1,
                    t => module.types.size_of(t).max(1),
                };
                let id = RegionId(map.regions.len() as u32);
                map.regions.push(Region {
                    id,
                    name: ptr.clone(),
                    global: gid,
                    size: size as u64,
                    elem_size,
                    len: (size as u64 / elem_size).max(1),
                    noncore: label.is_some(),
                    label,
                    init_fn: fid,
                    segment: None,
                    offset: None,
                    span: *span,
                });
                map.by_global.insert(gid, id);
            }
        }
        // Second pass: noncore facts flip the flag.
        for ann in &func.annotations {
            if let Annotation::Noncore { target, span } = ann {
                match module.global_by_name(target).and_then(|g| map.by_global(g)) {
                    Some(rid) => map.regions[rid.0 as usize].noncore = true,
                    None => {
                        // Socket descriptors (§3.4.3) are also declared with
                        // noncore(); only complain when the name is entirely
                        // unknown.
                        if module.global_by_name(target).is_none() {
                            diags.warning(
                                *span,
                                format!("noncore({target}): no such shared-memory region or descriptor; annotation ignored"),
                            );
                        }
                    }
                }
            }
        }
        // Interpret the initializer to recover segment offsets.
        interpret_init(module, fid, attach_functions, &mut map);
    }
    run_init_check(module, &mut map);
    map
}

/// Abstract value for the init interpreter.
#[derive(Debug, Clone, PartialEq)]
enum AbsVal {
    /// Pointer into the segment attached at the given call, at a constant
    /// byte offset.
    Seg(InstId, i64),
    /// Known integer.
    Int(i64),
    /// Anything else.
    Other,
}

/// Interprets the (expected straight-line) body of a `shminit` function,
/// recording for each region global the `(segment, offset)` it ends up
/// pointing at. Branches/loops make affected values `Other` — offsets stay
/// unknown, which the init check reports.
fn interpret_init(module: &Module, fid: FuncId, attach_functions: &[String], map: &mut RegionMap) {
    let func = module.function(fid);
    let mut env: HashMap<InstId, AbsVal> = HashMap::new();
    let mut genv: HashMap<GlobalId, AbsVal> = HashMap::new();

    let resolve =
        |v: &Value, env: &HashMap<InstId, AbsVal>, _genv: &HashMap<GlobalId, AbsVal>| -> AbsVal {
            match v {
                Value::ConstInt(c, _) => AbsVal::Int(*c),
                Value::Inst(id) => env.get(id).cloned().unwrap_or(AbsVal::Other),
                _ => AbsVal::Other,
            }
        };

    // Walk blocks in straight-line order following unconditional branches
    // from the entry; stop at the first conditional (init functions are
    // expected to be straight-line).
    let mut bid = func.entry();
    let mut visited = 0;
    loop {
        visited += 1;
        if visited > func.blocks.len() + 1 {
            break;
        }
        let block = func.block(bid);
        for &iid in &block.insts {
            let inst = func.inst(iid);
            match &inst.kind {
                InstKind::Call { callee, .. } => {
                    // Prototypes lower to `Callee::Local` without a body;
                    // both spellings must resolve to the external name.
                    let name = match callee {
                        Callee::External(n) => Some(n.clone()),
                        Callee::Local(f) if !module.function(*f).is_definition => {
                            Some(module.function(*f).name.clone())
                        }
                        _ => None,
                    };
                    if name.is_some_and(|n| attach_functions.contains(&n)) {
                        env.insert(iid, AbsVal::Seg(iid, 0));
                    }
                }
                InstKind::Cast { value, .. } => {
                    let v = resolve(value, &env, &genv);
                    env.insert(iid, v);
                }
                InstKind::ElemAddr { base, index } => {
                    let b = resolve(base, &env, &genv);
                    let i = resolve(index, &env, &genv);
                    let elem =
                        inst.ty.pointee().map(|t| module.types.size_of(t).max(1)).unwrap_or(1);
                    match (b, i) {
                        (AbsVal::Seg(s, off), AbsVal::Int(k)) => {
                            env.insert(iid, AbsVal::Seg(s, off + k * elem as i64));
                        }
                        _ => {
                            env.insert(iid, AbsVal::Other);
                        }
                    }
                }
                InstKind::FieldAddr { base, struct_id, field } => {
                    let b = resolve(base, &env, &genv);
                    match b {
                        AbsVal::Seg(s, off) => {
                            let foff =
                                module.types.layout(*struct_id).fields[*field as usize].offset;
                            env.insert(iid, AbsVal::Seg(s, off + foff as i64));
                        }
                        _ => {
                            env.insert(iid, AbsVal::Other);
                        }
                    }
                }
                InstKind::Bin { op, lhs, rhs } => {
                    let a = resolve(lhs, &env, &genv);
                    let b = resolve(rhs, &env, &genv);
                    let v = match (op, a, b) {
                        (BinOp::Add, AbsVal::Int(x), AbsVal::Int(y)) => AbsVal::Int(x + y),
                        (BinOp::Sub, AbsVal::Int(x), AbsVal::Int(y)) => AbsVal::Int(x - y),
                        (BinOp::Mul, AbsVal::Int(x), AbsVal::Int(y)) => AbsVal::Int(x * y),
                        _ => AbsVal::Other,
                    };
                    env.insert(iid, v);
                }
                InstKind::Store { ptr: Value::Global(g), value } => {
                    let v = resolve(value, &env, &genv);
                    genv.insert(*g, v);
                }
                InstKind::Load { ptr: Value::Global(g) } => {
                    let v = genv.get(g).cloned().unwrap_or(AbsVal::Other);
                    env.insert(iid, v);
                }
                _ => {}
            }
        }
        match &block.terminator {
            Terminator::Br(next) => bid = *next,
            _ => break,
        }
    }

    for region in &mut map.regions {
        if region.init_fn != fid {
            continue;
        }
        if let Some(AbsVal::Seg(seg, off)) = genv.get(&region.global) {
            region.segment = Some((fid, *seg));
            region.offset = Some(*off);
        }
    }
}

/// Static `InitCheck`: regions sharing a segment must not overlap
/// (paper §3.2.1: "verifies that the variables in shared memory do not
/// overlap with each other").
fn run_init_check(_module: &Module, map: &mut RegionMap) {
    let regions = map.regions.clone();
    for (i, a) in regions.iter().enumerate() {
        if a.offset.is_none() {
            map.init_check.push(format!(
                "region `{}`: segment offset not statically evaluable; InitCheck deferred to run time",
                a.name
            ));
            continue;
        }
        for b in regions.iter().skip(i + 1) {
            let (Some(ao), Some(bo)) = (a.offset, b.offset) else { continue };
            if a.segment != b.segment || a.segment.is_none() {
                continue;
            }
            let a_end = ao + a.size as i64;
            let b_end = bo + b.size as i64;
            if ao < b_end && bo < a_end {
                map.init_check.push(format!(
                    "OVERLAP: region `{}` [{}..{}) overlaps region `{}` [{}..{})",
                    a.name, ao, a_end, b.name, bo, b_end
                ));
            }
        }
    }
    if !map.regions.is_empty()
        && map.init_check.iter().all(|c| !c.starts_with("OVERLAP"))
        && map.regions.iter().all(|r| r.offset.is_some())
    {
        map.init_check.push("all regions disjoint".to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeflow_ir::build_module;
    use safeflow_syntax::parse_source;

    fn regions_of(src: &str) -> (Module, RegionMap, Diagnostics) {
        let pr = parse_source("t.c", src);
        assert!(!pr.diags.has_errors(), "{:?}", pr.diags);
        let mut diags = Diagnostics::new();
        let m = build_module(&pr.unit, &mut diags);
        assert!(!diags.has_errors(), "{diags:?}");
        let map = extract_regions(&m, &["shmat".to_string()], &mut diags);
        (m, map, diags)
    }

    const FIG3: &str = r#"
        typedef struct { float control; float track; float angle; } SHMData;
        SHMData *feedback;
        SHMData *noncoreCtrl;
        int shmget(int key, int size, int flags);
        void *shmat(int shmid, void *addr, int flags);

        void initComm(void)
        /** SafeFlow Annotation shminit */
        {
            void *shmStart;
            int shmid;
            shmid = shmget(42, 2 * sizeof(SHMData), 0);
            shmStart = shmat(shmid, 0, 0);
            feedback = (SHMData *) shmStart;
            noncoreCtrl = feedback + 1;
            /** SafeFlow Annotation
                assume(shmvar(feedback, sizeof(SHMData)))
                assume(shmvar(noncoreCtrl, sizeof(SHMData)))
                assume(noncore(noncoreCtrl))
            */
        }
    "#;

    #[test]
    fn figure3_regions_extracted() {
        let (_, map, d) = regions_of(FIG3);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(map.len(), 2);
        let fb = map.iter().find(|r| r.name == "feedback").unwrap();
        let nc = map.iter().find(|r| r.name == "noncoreCtrl").unwrap();
        assert_eq!(fb.size, 12);
        assert_eq!(nc.size, 12);
        assert!(!fb.noncore);
        assert!(nc.noncore);
        assert_eq!(fb.elem_size, 12);
        assert_eq!(fb.len, 1);
    }

    #[test]
    fn figure3_offsets_interpreted() {
        let (_, map, _) = regions_of(FIG3);
        let fb = map.iter().find(|r| r.name == "feedback").unwrap();
        let nc = map.iter().find(|r| r.name == "noncoreCtrl").unwrap();
        assert_eq!(fb.offset, Some(0));
        assert_eq!(nc.offset, Some(12));
        assert_eq!(fb.segment, nc.segment);
        assert!(fb.segment.is_some());
        assert!(map.init_check.iter().any(|c| c.contains("disjoint")), "{:?}", map.init_check);
    }

    #[test]
    fn overlap_detected() {
        // noncoreCtrl = feedback (same offset) → overlap.
        let src = FIG3.replace("noncoreCtrl = feedback + 1;", "noncoreCtrl = feedback + 0;");
        let (_, map, _) = regions_of(&src);
        assert!(map.init_check.iter().any(|c| c.starts_with("OVERLAP")), "{:?}", map.init_check);
    }

    #[test]
    fn array_region_element_count() {
        let src = r#"
            float *samples;
            void *shmat(int shmid, void *addr, int flags);
            void init(void)
            /** SafeFlow Annotation shminit */
            {
                samples = (float *) shmat(0, 0, 0);
                /** SafeFlow Annotation
                    assume(shmvar(samples, 64))
                    assume(noncore(samples))
                */
            }
        "#;
        let (_, map, d) = regions_of(src);
        assert!(!d.has_errors());
        let r = map.iter().next().unwrap();
        assert_eq!(r.size, 64);
        assert_eq!(r.elem_size, 4);
        assert_eq!(r.len, 16);
        assert!(r.noncore);
    }

    #[test]
    fn unknown_pointer_name_reports_error() {
        let src = r#"
            void *shmat(int shmid, void *addr, int flags);
            void init(void)
            /** SafeFlow Annotation shminit */
            {
                /** SafeFlow Annotation assume(shmvar(ghost, 8)) */
            }
        "#;
        let (_, _, d) = regions_of(src);
        assert!(d.has_errors());
    }

    #[test]
    fn annotation_count_tracked() {
        let (_, map, _) = regions_of(FIG3);
        // shminit + 2×shmvar + 1×noncore = 4 facts on the function.
        assert_eq!(map.annotation_count, 4);
    }

    #[test]
    fn channel_fact_mints_labeled_noncore_region() {
        let src = r#"
            typedef struct { float control; float track; float angle; } SHMData;
            SHMData *gyro;
            SHMData *cmd;
            void *shmat(int shmid, void *addr, int flags);
            void init(void)
            /** SafeFlow Annotation shminit */
            {
                gyro = (SHMData *) shmat(0, 0, 0);
                cmd = gyro + 1;
                /** SafeFlow Annotation
                    assume(channel(gyro, sizeof(SHMData), sensor_a))
                    assume(shmvar(cmd, sizeof(SHMData)))
                */
            }
        "#;
        let (_, map, d) = regions_of(src);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(map.len(), 2);
        let g = map.iter().find(|r| r.name == "gyro").unwrap();
        let c = map.iter().find(|r| r.name == "cmd").unwrap();
        assert!(g.noncore, "channel endpoints are non-core");
        assert_eq!(g.label.as_deref(), Some("sensor_a"));
        assert_eq!(g.size, 12);
        assert!(!c.noncore);
        assert_eq!(c.label, None);
    }

    #[test]
    fn enum_constant_in_size() {
        let src = r#"
            enum Sizes { BUF_BYTES = 32 };
            char *buf;
            void *shmat(int shmid, void *addr, int flags);
            void init(void)
            /** SafeFlow Annotation shminit */
            {
                buf = (char *) shmat(0, 0, 0);
                /** SafeFlow Annotation assume(shmvar(buf, BUF_BYTES)) */
            }
        "#;
        let (_, map, d) = regions_of(src);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(map.iter().next().unwrap().size, 32);
    }
}
