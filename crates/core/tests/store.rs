//! Persistent-store lockdown (ISSUE 4): the incremental session must be
//! fast without ever being wrong.
//!
//! * warm and cold runs produce byte-identical reports (stripped per the
//!   observability contract), across `--jobs` too;
//! * a warm no-change run replays — zero SCCs re-analyzed;
//! * editing one unit re-analyzes only the dirty SCC region;
//! * a corrupt/truncated store file degrades to a cold run (never a
//!   panic, never a stale result);
//! * a store-version mismatch invalidates everything;
//! * degraded runs are never persisted, and strict mode turns them into
//!   typed [`AnalysisError`] variants.

use safeflow::{
    AnalysisConfig, AnalysisError, AnalysisSession, Engine, FaultKind, FaultPlan, FaultSite, Json,
    SessionRun,
};
use safeflow_syntax::VirtualFs;
use std::path::PathBuf;

/// A fresh store directory under the system temp dir (unique per test).
fn store_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("safeflow-session-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const UTIL_C: &str = r#"
    int monitorVal(int v) {
        if (v > 100) { return 100; }
        if (v < 0) { return 0; }
        return v;
    }
    int helper(int x) { return x + 1; }
"#;

const CORE_C: &str = r#"
    #include "util.c"
    typedef struct { int control; } SHMData;
    SHMData *noncoreCtrl;
    void *shmat(int shmid, void *addr, int flags);
    void kill(int pid, int sig);

    void initComm(void)
    /** SafeFlow Annotation shminit */
    {
        noncoreCtrl = (SHMData *) shmat(0, 0, 0);
        /** SafeFlow Annotation
            assume(shmvar(noncoreCtrl, sizeof(SHMData)))
            assume(noncore(noncoreCtrl))
        */
    }

    int main() {
        int raw;
        int pid;
        initComm();
        raw = noncoreCtrl->control;
        pid = helper(raw);
        kill(pid, 9);
        return 0;
    }
"#;

fn two_unit_fs(util_src: &str) -> VirtualFs {
    let mut fs = VirtualFs::new();
    fs.add("core.c", CORE_C);
    fs.add("util.c", util_src);
    fs
}

fn config(jobs: usize) -> AnalysisConfig {
    AnalysisConfig::builder().engine(Engine::Summary).jobs(jobs).build_config()
}

/// Strips the schedule-dependent metric sections, and additionally the
/// cache-state-dependent parts when comparing warm against cold.
fn stripped(doc: &Json, across_cache_states: bool) -> String {
    let mut doc = doc.clone();
    let Json::Obj(members) = &mut doc else { panic!("report document must be an object") };
    if across_cache_states {
        members.retain(|(k, _)| k != "cache");
    }
    for (k, v) in members.iter_mut() {
        if k == "metrics" {
            let Json::Obj(sections) = v else { panic!("metrics must be an object") };
            sections.retain(|(k, _)| {
                k != "sched"
                    && k != "dist"
                    && k != "timings_ns"
                    && (!across_cache_states || k != "work")
            });
        }
    }
    doc.render()
}

#[test]
fn warm_and_cold_runs_are_byte_identical_across_jobs() {
    let dir = store_dir("identity");
    let fs = two_unit_fs(UTIL_C);

    let mut cold_session = AnalysisSession::with_store(config(1), &dir).unwrap();
    let cold = cold_session.check("core.c", &fs).unwrap();
    assert_eq!(cold.run, SessionRun::Analyzed);
    assert_eq!(cold.exit_code, 2, "program has a real error");
    drop(cold_session); // release the store's writer lock before reopening

    for jobs in [1usize, 4, 8] {
        let mut warm_session = AnalysisSession::with_store(config(jobs), &dir).unwrap();
        let warm = warm_session.check("core.c", &fs).unwrap();
        assert_eq!(warm.run, SessionRun::Replayed, "jobs={jobs}: unchanged input must replay");
        // The rendered text report is byte-identical with no stripping at
        // all; the JSON document under the warm/cold stripping contract.
        assert_eq!(warm.rendered, cold.rendered, "jobs={jobs}");
        assert_eq!(
            stripped(&warm.report_json, true),
            stripped(&cold.report_json, true),
            "jobs={jobs}"
        );
        // Counter-class metrics replay verbatim — cache-state-invariant.
        assert_eq!(warm.metrics.counters, cold.metrics.counters, "jobs={jobs}");
        let _ = std::fs::remove_dir_all(&dir);
        // Re-create for the next jobs value.
        let mut re = AnalysisSession::with_store(config(1), &dir).unwrap();
        re.check("core.c", &fs).unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flag_order_does_not_affect_warm_hit_behavior_or_report_bytes() {
    use safeflow::{CriticalCall, RecvSpec};
    let dir = store_dir("flag-order");
    let fs = two_unit_fs(UTIL_C);

    // The same configuration, spelled with the list-valued flags in two
    // different orders. A warm `safeflow check` must replay either way.
    let forward = AnalysisConfig::builder()
        .engine(Engine::Summary)
        .critical_call(CriticalCall::new("reboot", 1))
        .recv_function(RecvSpec::new("recvfrom", 0, 1))
        .recv_function(RecvSpec::new("mq_receive", 0, 1))
        .build_config();
    let mut backward = AnalysisConfig::builder()
        .engine(Engine::Summary)
        .recv_function(RecvSpec::new("mq_receive", 0, 1))
        .recv_function(RecvSpec::new("recvfrom", 0, 1))
        .build_config();
    // Insert the extra critical call *before* the default `kill` entry so
    // even the pre-normalization vectors disagree on order.
    backward.implicit_critical_calls.insert(0, CriticalCall::new("reboot", 1));
    let backward = backward.normalized();

    let cold = AnalysisSession::with_store(forward, &dir).unwrap().check("core.c", &fs).unwrap();
    assert_eq!(cold.run, SessionRun::Analyzed);

    let mut warm_session = AnalysisSession::with_store(backward, &dir).unwrap();
    let warm = warm_session.check("core.c", &fs).unwrap();
    assert_eq!(warm.run, SessionRun::Replayed, "flag order must not miss warm replay");
    assert_eq!(warm.rendered, cold.rendered);
    assert_eq!(stripped(&warm.report_json, true), stripped(&cold.report_json, true));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_no_change_run_reanalyzes_zero_sccs() {
    let dir = store_dir("replay");
    let fs = two_unit_fs(UTIL_C);
    AnalysisSession::with_store(config(4), &dir).unwrap().check("core.c", &fs).unwrap();

    let mut warm = AnalysisSession::with_store(config(4), &dir).unwrap();
    let outcome = warm.check("core.c", &fs).unwrap();
    assert_eq!(outcome.run, SessionRun::Replayed);
    assert_eq!(outcome.metrics.work.get("store.manifest_hits"), Some(&1));
    // Replay never touches the summary engine: no summarize calls, no
    // cache probes, nothing re-analyzed.
    assert_eq!(outcome.metrics.work.get("summary.summarize_calls"), None);
    assert_eq!(outcome.metrics.work.get("summary.cache_misses"), None);
    assert!(outcome.result.is_none(), "replayed runs build no module");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn editing_one_unit_reanalyzes_only_the_dirty_region() {
    let dir = store_dir("dirty");
    let mut cold = AnalysisSession::with_store(config(1), &dir).unwrap();
    let before = cold.check("core.c", &two_unit_fs(UTIL_C)).unwrap();
    let total = before.metrics.work["summary.cache_misses"];
    assert!(total >= 4, "expected at least 4 SCCs, got {total}");
    drop(cold); // release the store's writer lock before reopening

    // Edit `helper` only: its SCC and its caller `main` are dirty;
    // `monitorVal` and `initComm` must replay from the on-disk table in a
    // brand-new session (a different "process" as far as the cache goes).
    let edited = two_unit_fs(&UTIL_C.replace("x + 1", "x + 2"));
    let mut warm = AnalysisSession::with_store(config(1), &dir).unwrap();
    let after = warm.check("core.c", &edited).unwrap();
    assert_eq!(after.run, SessionRun::Analyzed);
    assert_eq!(after.metrics.work["summary.cache_misses"], 2, "helper + main only");
    assert!(after.metrics.work["summary.cache_hits"] >= 2, "clean SCCs must hit");
    assert_eq!(after.metrics.work["store.sccs_invalidated"], 2, "stale hashes dropped");
    // Counter-class metrics never move with cache state.
    assert_eq!(before.metrics.counters, after.metrics.counters);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_or_truncated_store_degrades_to_cold_run() {
    let dir = store_dir("corrupt");
    let fs = two_unit_fs(UTIL_C);
    let reference =
        AnalysisSession::with_store(config(1), &dir).unwrap().check("core.c", &fs).unwrap();
    let path = dir.join("safeflow-store.bin");
    let good = std::fs::read(&path).unwrap();

    let mut variants: Vec<Vec<u8>> = Vec::new();
    for i in [0usize, good.len() / 3, good.len() / 2, good.len() - 1] {
        let mut bad = good.clone();
        bad[i] ^= 0xff;
        variants.push(bad);
    }
    for cut in [0usize, 7, good.len() / 2, good.len() - 1] {
        variants.push(good[..cut].to_vec());
    }
    variants.push(b"not a store file at all".to_vec());

    for (i, bytes) in variants.iter().enumerate() {
        std::fs::write(&path, bytes).unwrap();
        let mut session = AnalysisSession::with_store(config(1), &dir).unwrap();
        let outcome = session.check("core.c", &fs).unwrap();
        assert_eq!(outcome.run, SessionRun::Analyzed, "variant {i}: damaged store must run cold");
        assert_eq!(outcome.metrics.work.get("store.sccs_loaded"), Some(&0), "variant {i}");
        if !bytes.is_empty() {
            assert_eq!(outcome.metrics.work.get("store.load_rejected"), Some(&1), "variant {i}");
        }
        // Never stale: the cold result matches the pristine reference.
        assert_eq!(outcome.rendered, reference.rendered, "variant {i}");
        assert_eq!(
            stripped(&outcome.report_json, true),
            stripped(&reference.report_json, true),
            "variant {i}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_mismatch_invalidates_everything() {
    let dir = store_dir("version");
    let fs = two_unit_fs(UTIL_C);
    AnalysisSession::with_store(config(1), &dir).unwrap().check("core.c", &fs).unwrap();
    let path = dir.join("safeflow-store.bin");
    let mut bytes = std::fs::read(&path).unwrap();
    // Bump the version field (after the 8-byte magic) and fix the trailing
    // checksum so *only* the version mismatches.
    let magic_len = 8;
    let v = u32::from_le_bytes(bytes[magic_len..magic_len + 4].try_into().unwrap()) + 1;
    bytes[magic_len..magic_len + 4].copy_from_slice(&v.to_le_bytes());
    let body = bytes.len() - 8;
    let sum = safeflow_util::hash::hash_bytes(&bytes[..body]);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    let mut session = AnalysisSession::with_store(config(1), &dir).unwrap();
    let outcome = session.check("core.c", &fs).unwrap();
    assert_eq!(outcome.run, SessionRun::Analyzed);
    assert_eq!(outcome.metrics.work.get("store.sccs_loaded"), Some(&0));
    assert_eq!(outcome.metrics.work["summary.cache_hits"], 0, "nothing may survive a version bump");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degraded_runs_are_never_persisted_and_fault_plans_disable_the_store() {
    let dir = store_dir("degraded");
    let fs = two_unit_fs(UTIL_C);
    // A budget fault injected into every SCC degrades the run (exit 4).
    let degraded_config = AnalysisConfig::builder()
        .engine(Engine::Summary)
        .fault_plan(FaultPlan::new().with_fault(
            FaultSite::SccAnalysis,
            None,
            FaultKind::BudgetExhaustion,
        ))
        .build_config();
    let mut session = AnalysisSession::with_store(degraded_config.clone(), &dir).unwrap();
    let outcome = session.check("core.c", &fs).unwrap();
    assert_eq!(outcome.exit_code, 4);
    // The armed plan disables persistence wholesale: no store file exists.
    assert!(!dir.join("safeflow-store.bin").exists(), "degraded results must not be stored");
    assert_eq!(outcome.metrics.work.get("store.manifest_misses"), None);

    // Strict mode surfaces the degradation as a typed error with the
    // degradations attached.
    let mut strict = AnalysisSession::with_store(degraded_config, &dir).unwrap();
    strict.set_strict(true);
    match strict.check("core.c", &fs) {
        Err(AnalysisError::Budget { degradations, .. }) => assert!(!degradations.is_empty()),
        other => panic!("expected AnalysisError::Budget, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn session_io_errors_are_typed_with_sources() {
    let mut session = AnalysisSession::new(config(1));
    let missing = "/nonexistent/safeflow/input.c".to_string();
    match session.check_files(std::slice::from_ref(&missing)) {
        Err(e @ AnalysisError::Io { .. }) => {
            assert!(std::error::Error::source(&e).is_some(), "Io must chain its source");
            assert!(e.to_string().contains("input.c"));
        }
        other => panic!("expected AnalysisError::Io, got {other:?}"),
    }
}

#[test]
fn parse_errors_from_sessions_carry_diagnostics() {
    let mut fs = VirtualFs::new();
    fs.add("bad.c", "int main( { return 0; }");
    let mut session = AnalysisSession::new(config(1));
    match session.check("bad.c", &fs) {
        Err(e @ AnalysisError::Parse { .. }) => {
            assert!(e.diagnostics().unwrap().has_errors());
        }
        other => panic!("expected AnalysisError::Parse, got {other:?}"),
    }
}
