//! Observability lockdown (ISSUE 3): the metrics registry and the JSON
//! report document participate in the determinism contract.
//!
//! * `counters` metrics are byte-identical across worker counts AND cache
//!   states;
//! * `work` metrics are byte-identical across worker counts (they may move
//!   between cache-cold and cache-warm runs — that is their definition);
//! * the full `safeflow-report-v1` document is byte-identical across
//!   worker counts once the schedule-dependent sections (`sched`, `dist`,
//!   `timings_ns`) are stripped, and across cache states once `work` and
//!   `cache` are additionally stripped.
//!
//! Also locks down `flowgraph::error_to_dot` output shape for every error
//! the corpus produces (balanced quotes and braces — the diagnostics
//! correctness sweep's property test).

use safeflow::{AnalysisConfig, Analyzer, Engine, Json, MetricsSnapshot};
use safeflow_corpus::synthetic::{generate_wide, WideParams};
use safeflow_corpus::{figure2_example, systems};
use std::collections::BTreeMap;

/// Every corpus program the suite locks down, as (name, source) pairs.
fn corpus_programs() -> Vec<(String, String)> {
    let mut progs: Vec<(String, String)> = systems()
        .into_iter()
        .map(|s| (s.core_file.to_string(), s.core_source.to_string()))
        .collect();
    progs.push(("figure2.c".to_string(), figure2_example().to_string()));
    progs.push((
        "wide.c".to_string(),
        generate_wide(WideParams { families: 12, depth: 3, regions: 4, branches: 2 }),
    ));
    progs
}

fn run_once(engine: Engine, jobs: usize, file: &str, src: &str) -> (Analyzer, MetricsSnapshot) {
    let analyzer = Analyzer::new(AnalysisConfig::with_engine(engine).with_jobs(jobs));
    analyzer.analyze_source(file, src).unwrap_or_else(|e| panic!("{file} must analyze: {e}"));
    let snapshot = analyzer.last_metrics();
    (analyzer, snapshot)
}

/// The deterministic metric sections: (counters, work).
fn deterministic_sections(s: &MetricsSnapshot) -> (BTreeMap<String, u64>, BTreeMap<String, u64>) {
    (s.counters.clone(), s.work.clone())
}

#[test]
fn counters_and_work_metrics_identical_across_thread_counts() {
    for (file, src) in corpus_programs() {
        for engine in [Engine::ContextSensitive, Engine::Summary] {
            let (_, reference) = run_once(engine, 1, &file, &src);
            assert!(!reference.counters.is_empty(), "{file} ({engine:?}) recorded no counters");
            let reference = deterministic_sections(&reference);
            for jobs in [1usize, 4, 8] {
                for round in 0..2 {
                    let (_, got) = run_once(engine, jobs, &file, &src);
                    assert_eq!(
                        deterministic_sections(&got),
                        reference,
                        "{file} ({engine:?}) metrics diverged at jobs={jobs} round={round}"
                    );
                }
            }
        }
    }
}

#[test]
fn warm_cache_preserves_counters_and_moves_work_to_hits() {
    for (file, src) in corpus_programs() {
        let analyzer = Analyzer::new(AnalysisConfig::with_engine(Engine::Summary).with_jobs(4));
        analyzer.analyze_source(&file, &src).unwrap();
        let cold = analyzer.last_metrics();
        analyzer.analyze_source(&file, &src).unwrap();
        let warm = analyzer.last_metrics();

        assert_eq!(cold.counters, warm.counters, "{file}: counters must not move with cache state");
        assert_eq!(cold.work["summary.cache_hits"], 0, "{file}: first run cannot hit the cache");
        assert!(cold.work["summary.cache_misses"] > 0, "{file}: first run must miss");
        assert!(warm.work["summary.cache_hits"] > 0, "{file}: second run must hit");
        assert_eq!(warm.work["summary.cache_misses"], 0, "{file}: second run must not miss");
        // Cache probes (hits + misses) are cache-state invariant.
        assert_eq!(
            cold.work["summary.cache_hits"] + cold.work["summary.cache_misses"],
            warm.work["summary.cache_hits"] + warm.work["summary.cache_misses"],
            "{file}: probe count moved with cache state"
        );
    }
}

/// Removes the named sections from the document's `metrics` object, plus
/// any listed top-level keys.
fn strip(doc: &mut Json, metric_sections: &[&str], top_level: &[&str]) {
    let Json::Obj(members) = doc else { panic!("report document must be an object") };
    members.retain(|(k, _)| !top_level.contains(&k.as_str()));
    for (k, v) in members.iter_mut() {
        if k == "metrics" {
            let Json::Obj(sections) = v else { panic!("metrics must be an object") };
            sections.retain(|(k, _)| !metric_sections.contains(&k.as_str()));
        }
    }
}

#[test]
fn report_json_identical_across_thread_counts() {
    for (file, src) in corpus_programs() {
        for engine in [Engine::ContextSensitive, Engine::Summary] {
            let reference = {
                let analyzer = Analyzer::new(AnalysisConfig::with_engine(engine).with_jobs(1));
                let result = analyzer.analyze_source(&file, &src).unwrap();
                let mut doc = analyzer.report_json(&result);
                strip(&mut doc, &["sched", "dist", "timings_ns"], &[]);
                doc.render()
            };
            for jobs in [4usize, 8] {
                let analyzer = Analyzer::new(AnalysisConfig::with_engine(engine).with_jobs(jobs));
                let result = analyzer.analyze_source(&file, &src).unwrap();
                let mut doc = analyzer.report_json(&result);
                strip(&mut doc, &["sched", "dist", "timings_ns"], &[]);
                assert_eq!(
                    doc.render(),
                    reference,
                    "{file} ({engine:?}) JSON document diverged at jobs={jobs}"
                );
            }
        }
    }
}

#[test]
fn report_json_identical_across_cache_states() {
    for (file, src) in corpus_programs() {
        let analyzer = Analyzer::new(AnalysisConfig::with_engine(Engine::Summary).with_jobs(4));
        let docs: Vec<String> = (0..2)
            .map(|_| {
                let result = analyzer.analyze_source(&file, &src).unwrap();
                let mut doc = analyzer.report_json(&result);
                strip(&mut doc, &["sched", "dist", "timings_ns", "work"], &["cache"]);
                doc.render()
            })
            .collect();
        assert_eq!(docs[0], docs[1], "{file}: JSON document moved with cache state");
    }
}

// ------------------------------------------------------------- DOT shape

/// Counts unescaped `"` delimiters in one line (a `\"` inside a label is
/// content, not a delimiter).
fn delimiter_quotes(line: &str) -> usize {
    let mut count = 0;
    let mut escaped = false;
    for c in line.chars() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            count += 1;
        }
    }
    count
}

/// Brace balance of `text` counting only braces outside string literals.
fn brace_balance(text: &str) -> i64 {
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '{' if !in_string => depth += 1,
            '}' if !in_string => depth -= 1,
            _ => {}
        }
    }
    depth
}

#[test]
fn error_to_dot_is_well_formed_for_every_corpus_error() {
    let mut errors_seen = 0;
    for (file, src) in corpus_programs() {
        for engine in [Engine::ContextSensitive, Engine::Summary] {
            let analyzer = Analyzer::new(AnalysisConfig::with_engine(engine));
            let result = analyzer.analyze_source(&file, &src).unwrap();
            for e in &result.report.errors {
                errors_seen += 1;
                let dot = safeflow::flowgraph::error_to_dot(e, &result.sources);
                assert!(
                    dot.starts_with("digraph "),
                    "{file} ({engine:?}): DOT must start with a digraph header:\n{dot}"
                );
                assert_eq!(
                    brace_balance(&dot),
                    0,
                    "{file} ({engine:?}): unbalanced braces in DOT:\n{dot}"
                );
                assert_eq!(
                    dot.trim_end().lines().last().map(str::trim),
                    Some("}"),
                    "{file} ({engine:?}): DOT must end with a closing brace:\n{dot}"
                );
                for line in dot.lines() {
                    assert_eq!(
                        delimiter_quotes(line) % 2,
                        0,
                        "{file} ({engine:?}): odd number of quote delimiters in {line:?}"
                    );
                }
            }
        }
    }
    assert!(errors_seen > 0, "corpus must produce at least one error to exercise");
}
