//! Golden-report snapshots for the corpus programs (ISSUE 1).
//!
//! Each corpus program's rendered report is pinned byte-for-byte under
//! `tests/golden/`. Any change to finding content, ordering, or rendering
//! shows up as a readable diff here — the canonical-order guarantee of
//! `AnalysisReport::canonicalize` is what keeps these stable across the
//! parallel schedule.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p safeflow --test golden
//! ```

use safeflow::{AnalysisConfig, Analyzer, Engine};
use safeflow_corpus::{figure2_example, systems};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.txt"))
}

fn check_golden(name: &str, file: &str, src: &str) {
    // Golden content covers both engines so a divergence between them is
    // also a snapshot diff, at a thread count that exercises the pool.
    let mut got = String::new();
    for (label, engine) in
        [("context-sensitive", Engine::ContextSensitive), ("summary", Engine::Summary)]
    {
        let rendered = Analyzer::new(AnalysisConfig::with_engine(engine).with_jobs(4))
            .analyze_source(file, src)
            .unwrap_or_else(|e| panic!("{file} must analyze: {e}"))
            .render();
        got.push_str(&format!("==== engine: {label} ====\n{rendered}\n"));
    }

    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test -p safeflow --test golden",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "report for `{name}` differs from {}; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test -p safeflow --test golden",
        path.display()
    );
}

#[test]
fn golden_ip() {
    let s = systems().into_iter().find(|s| s.name == "IP").expect("IP system");
    check_golden("ip", s.core_file, s.core_source);
}

#[test]
fn golden_double_ip() {
    let s = systems().into_iter().find(|s| s.name == "Double IP").expect("Double IP system");
    check_golden("double_ip", s.core_file, s.core_source);
}

#[test]
fn golden_generic() {
    let s = systems().into_iter().find(|s| s.name == "Generic Simplex").expect("Generic system");
    check_golden("generic", s.core_file, s.core_source);
}

#[test]
fn golden_fig2() {
    check_golden("fig2", "figure2.c", figure2_example());
}
