//! End-to-end pipeline tests: the paper's running example (Figures 2/3)
//! and the defect archetypes from the evaluation (§4), run through both
//! phase-3 engines.

use safeflow::{AnalysisConfig, Analyzer, DependencyKind, Engine};

fn analyze(src: &str) -> safeflow::AnalysisResult {
    Analyzer::new(AnalysisConfig::default())
        .analyze_source("core.c", src)
        .unwrap_or_else(|e| panic!("analysis failed:\n{e}"))
}

fn analyze_with(engine: Engine, src: &str) -> safeflow::AnalysisResult {
    Analyzer::new(AnalysisConfig::with_engine(engine))
        .analyze_source("core.c", src)
        .unwrap_or_else(|e| panic!("analysis failed:\n{e}"))
}

/// The paper's Figure 2/3 core controller, annotated exactly as the paper
/// describes. The `decision` function reads `feedback` without `feedback`
/// being in its assumed-core set — the paper's own worked example of an
/// erroneous dependency.
const FIGURE2: &str = r#"
    typedef struct { float control; float track; float angle; } SHMData;
    SHMData *noncoreCtrl;
    SHMData *feedback;
    int shmget(int key, int size, int flags);
    void *shmat(int shmid, void *addr, int flags);
    void getFeedback(SHMData *fb);
    void computeSafety(SHMData *fb, float *safe);
    void Unlock(int lock);
    void Lock(int lock);
    void wait(int tsecs);
    void sendControl(float output);
    int shmLock; int tsecs;

    void initComm(void)
    /** SafeFlow Annotation shminit */
    {
        void *shmStart;
        int shmid;
        shmid = shmget(42, 2 * sizeof(SHMData), 0);
        shmStart = shmat(shmid, 0, 0);
        feedback = (SHMData *) shmStart;
        noncoreCtrl = feedback + 1;
        /** SafeFlow Annotation
            assume(shmvar(feedback, sizeof(SHMData)))
            assume(shmvar(noncoreCtrl, sizeof(SHMData)))
            assume(noncore(feedback))
            assume(noncore(noncoreCtrl))
        */
    }

    int checkSafety(SHMData *fb, SHMData *ctrl) {
        if (fb->angle > 0.5) return 0;
        if (fb->angle < 0.0 - 0.5) return 0;
        if (ctrl->control > 5.0) return 0;
        if (ctrl->control < 0.0 - 5.0) return 0;
        return 1;
    }

    float decision(SHMData *f, float safeControl, SHMData *ctrl)
    /***SafeFlow Annotation
        assume(core(noncoreCtrl, 0, sizeof(SHMData))) /***/
    {
        if (checkSafety(feedback, noncoreCtrl))
            return noncoreCtrl->control;
        else
            return safeControl;
    }

    int main() {
        float safeControl;
        float output;
        initComm();
        while (1) {
            getFeedback(feedback);
            computeSafety(feedback, &safeControl);
            Unlock(shmLock);
            wait(tsecs);
            Lock(shmLock);
            output = decision(feedback, safeControl, noncoreCtrl);
            /**SafeFlow Annotation
            assert(safe(output)); /***/
            sendControl(output);
        }
        return 0;
    }
"#;

#[test]
fn figure2_detects_feedback_dependency() {
    let result = analyze(FIGURE2);
    let r = &result.report;
    // Regions extracted with correct noncore flags.
    assert_eq!(r.regions.len(), 2);
    assert!(r.regions.iter().all(|x| x.noncore));
    // `decision` reads `feedback` unmonitored (via checkSafety's ctrl
    // argument path the reads are monitored; the feedback argument is the
    // paper's bug): warnings must mention region feedback.
    assert!(
        r.warnings.iter().any(|w| w.region_name == "feedback"),
        "expected a warning on unmonitored read of `feedback`: {:?}",
        r.warnings
    );
    // And the critical output must be flagged as depending on it.
    assert!(
        !r.errors.is_empty(),
        "expected an error dependency for assert(safe(output)); report:\n{}",
        result.render()
    );
    let err = &r.errors[0];
    assert_eq!(err.critical, "output");
    // No restriction violations in the paper's example.
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn figure2_error_has_value_flow_path() {
    let result = analyze(FIGURE2);
    let err = result.report.errors.iter().find(|e| e.critical == "output").expect("output error");
    let flow = err.flow.as_ref().expect("flow path present");
    let path = flow.path();
    assert!(path.len() >= 2, "path should have at least source and sink: {path:?}");
    assert!(
        path[0].0.contains("non-core") || path[0].0.contains("unsafe"),
        "source should mention the non-core read: {path:?}"
    );
}

#[test]
fn figure2_fixed_version_is_clean_of_data_errors() {
    // The paper's suggested fix: pass a local copy of the feedback rather
    // than the shared pointer, and monitor both regions in decision.
    let fixed = FIGURE2.replace(
        "assume(core(noncoreCtrl, 0, sizeof(SHMData))) /***/",
        "assume(core(noncoreCtrl, 0, sizeof(SHMData)))\n        assume(core(feedback, 0, sizeof(SHMData))) /***/",
    );
    let result = analyze(&fixed);
    let r = &result.report;
    assert!(
        r.errors.iter().all(|e| e.kind != DependencyKind::Data),
        "after monitoring both regions there must be no data errors:\n{}",
        result.render()
    );
}

#[test]
fn both_engines_agree_on_figure2() {
    let cs = analyze_with(Engine::ContextSensitive, FIGURE2);
    let sm = analyze_with(Engine::Summary, FIGURE2);
    assert_eq!(
        cs.report.warnings.len(),
        sm.report.warnings.len(),
        "warning counts differ:\nCS:\n{}\nSummary:\n{}",
        cs.render(),
        sm.render()
    );
    assert_eq!(
        cs.report.errors.len(),
        sm.report.errors.len(),
        "error counts differ:\nCS:\n{}\nSummary:\n{}",
        cs.render(),
        sm.render()
    );
    assert_eq!(cs.report.violations.len(), sm.report.violations.len());
}

/// Paper §4: "the first argument of a kill system call invoked by the core
/// component was dependent on an unmonitored non-core value. This could
/// ... cause the core component to kill itself!"
#[test]
fn kill_pid_dependency_detected() {
    let src = r#"
        typedef struct { int watchdogPid; float control; } Config;
        Config *cfg;
        void *shmat(int shmid, void *addr, int flags);
        int kill(int pid, int sig);

        void initComm(void)
        /** SafeFlow Annotation shminit */
        {
            cfg = (Config *) shmat(0, 0, 0);
            /** SafeFlow Annotation
                assume(shmvar(cfg, sizeof(Config)))
                assume(noncore(cfg))
            */
        }

        int main() {
            int pid;
            initComm();
            pid = cfg->watchdogPid;
            kill(pid, 9);
            return 0;
        }
    "#;
    for engine in [Engine::ContextSensitive, Engine::Summary] {
        let result = analyze_with(engine, src);
        let r = &result.report;
        assert_eq!(r.warnings.len(), 1, "{engine:?}: {}", result.render());
        assert!(
            r.errors.iter().any(|e| e.critical.contains("kill") && e.kind == DependencyKind::Data),
            "{engine:?}: kill pid dependency must be a data error:\n{}",
            result.render()
        );
    }
}

/// Paper §4 (generic Simplex): the sensor feedback is written by the core
/// component but remains writable by non-core code; reading it back and
/// using it in the recoverability check lets a rigged value pass the
/// monitor. The unmonitored re-read must be flagged.
#[test]
fn rigged_feedback_reread_detected() {
    let src = r#"
        typedef struct { float position; float velocity; } Feedback;
        Feedback *fb;
        void *shmat(int shmid, void *addr, int flags);
        void readSensor(float *pos, float *vel);
        void sendControl(float output);

        void initComm(void)
        /** SafeFlow Annotation shminit */
        {
            fb = (Feedback *) shmat(0, 0, 0);
            /** SafeFlow Annotation
                assume(shmvar(fb, sizeof(Feedback)))
                assume(noncore(fb))
            */
        }

        int main() {
            float pos; float vel; float output;
            initComm();
            readSensor(&pos, &vel);
            fb->position = pos;   /* published for the non-core side */
            fb->velocity = vel;
            /* BUG: reads back through shared memory; a non-core component
               could have overwritten it. */
            output = fb->position * 0.5;
            /** SafeFlow Annotation assert(safe(output)) */
            sendControl(output);
            return 0;
        }
    "#;
    for engine in [Engine::ContextSensitive, Engine::Summary] {
        let result = analyze_with(engine, src);
        let r = &result.report;
        assert!(
            r.errors.iter().any(|e| e.kind == DependencyKind::Data),
            "{engine:?}: rigged feedback must be a data error:\n{}",
            result.render()
        );
    }
}

/// Paper §3.4.1: control dependence on non-core configuration produces a
/// classified false-positive candidate, not a data error.
#[test]
fn control_only_dependency_classified() {
    let src = r#"
        typedef struct { int haveComplexCtrl; float control; } Config;
        Config *cfg;
        void *shmat(int shmid, void *addr, int flags);
        void sendControl(float output);
        float computeSafe(void);

        void initComm(void)
        /** SafeFlow Annotation shminit */
        {
            cfg = (Config *) shmat(0, 0, 0);
            /** SafeFlow Annotation
                assume(shmvar(cfg, sizeof(Config)))
                assume(noncore(cfg))
            */
        }

        int main() {
            float output;
            initComm();
            /* The configuration flag is non-core, but both paths compute
               safe data: a control-only dependency (paper's FP case). */
            if (cfg->haveComplexCtrl) {
                output = computeSafe() * 2.0;
            } else {
                output = computeSafe();
            }
            /** SafeFlow Annotation assert(safe(output)) */
            sendControl(output);
            return 0;
        }
    "#;
    for engine in [Engine::ContextSensitive, Engine::Summary] {
        let result = analyze_with(engine, src);
        let r = &result.report;
        let err = r
            .errors
            .iter()
            .find(|e| e.critical == "output")
            .unwrap_or_else(|| panic!("{engine:?}: expected error:\n{}", result.render()));
        assert_eq!(
            err.kind,
            DependencyKind::ControlOnly,
            "{engine:?}: configuration branch is control-only:\n{}",
            result.render()
        );
    }
}

/// Monitored reads are safe: the full monitor pattern produces no warnings
/// and no errors.
#[test]
fn fully_monitored_program_is_clean() {
    let src = r#"
        typedef struct { float control; } SHMData;
        SHMData *ctrl;
        void *shmat(int shmid, void *addr, int flags);
        void sendControl(float output);

        void initComm(void)
        /** SafeFlow Annotation shminit */
        {
            ctrl = (SHMData *) shmat(0, 0, 0);
            /** SafeFlow Annotation
                assume(shmvar(ctrl, sizeof(SHMData)))
                assume(noncore(ctrl))
            */
        }

        float monitor(float fallback)
        /** SafeFlow Annotation assume(core(ctrl, 0, sizeof(SHMData))) */
        {
            float v = ctrl->control;
            if (v > 5.0) return fallback;
            if (v < 0.0 - 5.0) return fallback;
            return v;
        }

        int main() {
            float output;
            initComm();
            output = monitor(0.0);
            /** SafeFlow Annotation assert(safe(output)) */
            sendControl(output);
            return 0;
        }
    "#;
    for engine in [Engine::ContextSensitive, Engine::Summary] {
        let result = analyze_with(engine, src);
        let r = &result.report;
        assert!(r.warnings.is_empty(), "{engine:?}: {}", result.render());
        assert!(r.errors.is_empty(), "{engine:?}: {}", result.render());
    }
}

/// Context sensitivity: a helper called both from a monitor (safe) and from
/// unmonitored code (unsafe) must still produce the warning and the error
/// on the unmonitored path.
#[test]
fn shared_helper_context_sensitivity() {
    let src = r#"
        typedef struct { float control; } SHMData;
        SHMData *ctrl;
        void *shmat(int shmid, void *addr, int flags);
        void sendControl(float output);

        void initComm(void)
        /** SafeFlow Annotation shminit */
        {
            ctrl = (SHMData *) shmat(0, 0, 0);
            /** SafeFlow Annotation
                assume(shmvar(ctrl, sizeof(SHMData)))
                assume(noncore(ctrl))
            */
        }

        float readCtrl(void) { return ctrl->control; }

        float monitor(float fallback)
        /** SafeFlow Annotation assume(core(ctrl, 0, sizeof(SHMData))) */
        {
            float v = readCtrl();
            if (v > 5.0) return fallback;
            return v;
        }

        int main() {
            float a; float b;
            initComm();
            a = monitor(0.0);      /* safe path */
            b = readCtrl();        /* unsafe path */
            /** SafeFlow Annotation assert(safe(a)) */
            sendControl(a);
            /** SafeFlow Annotation assert(safe(b)) */
            sendControl(b);
            return 0;
        }
    "#;
    for engine in [Engine::ContextSensitive, Engine::Summary] {
        let result = analyze_with(engine, src);
        let r = &result.report;
        let data_errors: Vec<_> =
            r.errors.iter().filter(|e| e.kind == DependencyKind::Data).collect();
        assert_eq!(
            data_errors.len(),
            1,
            "{engine:?}: exactly the unmonitored path errs:\n{}",
            result.render()
        );
        assert_eq!(data_errors[0].critical, "b", "{engine:?}");
        assert!(
            !r.warnings.is_empty(),
            "{engine:?}: the unmonitored context must warn:\n{}",
            result.render()
        );
    }
}

/// Taint must flow through plain (non-shared) globals: core code copies a
/// non-core value into a global, another function uses it critically.
#[test]
fn taint_through_plain_global() {
    let src = r#"
        typedef struct { float control; } SHMData;
        SHMData *ctrl;
        float cached;
        void *shmat(int shmid, void *addr, int flags);
        void sendControl(float output);

        void initComm(void)
        /** SafeFlow Annotation shminit */
        {
            ctrl = (SHMData *) shmat(0, 0, 0);
            /** SafeFlow Annotation
                assume(shmvar(ctrl, sizeof(SHMData)))
                assume(noncore(ctrl))
            */
        }

        void poll(void) { cached = ctrl->control; }

        int main() {
            float output;
            initComm();
            poll();
            output = cached;
            /** SafeFlow Annotation assert(safe(output)) */
            sendControl(output);
            return 0;
        }
    "#;
    for engine in [Engine::ContextSensitive, Engine::Summary] {
        let result = analyze_with(engine, src);
        assert!(
            result.report.errors.iter().any(|e| e.kind == DependencyKind::Data),
            "{engine:?}: taint must flow through global `cached`:\n{}",
            result.render()
        );
    }
}

/// §3.4.3 extension: data received over a noncore socket is unsafe until
/// monitored.
#[test]
fn recv_extension_taints_buffer() {
    let src = r#"
        int noncoreSock;
        float rxbuf[16];
        int recv(int socket, float *buffer, int length, int flags);
        void sendControl(float output);

        void setup(void)
        /** SafeFlow Annotation shminit */
        {
            /** SafeFlow Annotation assume(noncore(noncoreSock)) */
        }

        int main() {
            float output;
            setup();
            recv(noncoreSock, rxbuf, 16, 0);
            output = rxbuf[0];
            /** SafeFlow Annotation assert(safe(output)) */
            sendControl(output);
            return 0;
        }
    "#;
    for engine in [Engine::ContextSensitive, Engine::Summary] {
        let result = analyze_with(engine, src);
        assert!(
            result.report.errors.iter().any(|e| e.critical == "output"),
            "{engine:?}: received data must taint the buffer:\n{}",
            result.render()
        );
    }
}

/// Ineffective annotations (extent not spanning the whole region) are
/// reported as notes and do not suppress warnings (paper §3.1).
#[test]
fn partial_extent_annotation_is_ineffective() {
    let src = r#"
        typedef struct { float a; float b; } SHMData;
        SHMData *ctrl;
        void *shmat(int shmid, void *addr, int flags);
        void sendControl(float v);

        void initComm(void)
        /** SafeFlow Annotation shminit */
        {
            ctrl = (SHMData *) shmat(0, 0, 0);
            /** SafeFlow Annotation
                assume(shmvar(ctrl, sizeof(SHMData)))
                assume(noncore(ctrl))
            */
        }

        float partial(void)
        /** SafeFlow Annotation assume(core(ctrl, 0, 4)) */
        {
            return ctrl->a;
        }

        int main() {
            float output;
            initComm();
            output = partial();
            /** SafeFlow Annotation assert(safe(output)) */
            sendControl(output);
            return 0;
        }
    "#;
    let result = analyze(src);
    let r = &result.report;
    assert!(!r.warnings.is_empty(), "partial extent must not monitor:\n{}", result.render());
    assert!(
        r.init_check.iter().any(|n| n.contains("ineffective")),
        "ineffective annotation note expected: {:?}",
        r.init_check
    );
}

/// The analyzer rejects unparseable programs with diagnostics instead of
/// panicking.
#[test]
fn parse_errors_surface_as_analysis_error() {
    let err = Analyzer::new(AnalysisConfig::default())
        .analyze_source("bad.c", "int main( { return 0; }")
        .expect_err("must fail");
    let diags = err.diagnostics().expect("parse failures carry diagnostics");
    assert!(diags.has_errors());
    assert!(matches!(err, safeflow::AnalysisError::Parse { .. }));
}

/// Annotation counting: Table 1 reports annotation line counts; the report
/// exposes the bound-fact count.
#[test]
fn annotation_count_reported() {
    let result = analyze(FIGURE2);
    // initComm: shminit + 2 shmvar + 2 noncore = 5; decision: 1 assume;
    // main: 1 assert = 7 facts.
    assert_eq!(result.report.annotation_count, 7, "{}", result.render());
}

/// Multi-file programs via #include work end to end.
#[test]
fn multi_file_program() {
    use safeflow_syntax::VirtualFs;
    let mut fs = VirtualFs::new();
    fs.add(
        "shm.h",
        r#"
        typedef struct { float control; } SHMData;
        SHMData *ctrl;
        void *shmat(int shmid, void *addr, int flags);
        "#,
    );
    fs.add(
        "main.c",
        r#"
        #include "shm.h"
        void sendControl(float v);
        void initComm(void)
        /** SafeFlow Annotation shminit */
        {
            ctrl = (SHMData *) shmat(0, 0, 0);
            /** SafeFlow Annotation
                assume(shmvar(ctrl, sizeof(SHMData)))
                assume(noncore(ctrl))
            */
        }
        int main() {
            float output;
            initComm();
            output = ctrl->control;
            /** SafeFlow Annotation assert(safe(output)) */
            sendControl(output);
            return 0;
        }
        "#,
    );
    let result = Analyzer::new(AnalysisConfig::default())
        .analyze_program("main.c", &fs)
        .expect("analysis ok");
    assert_eq!(result.report.warnings.len(), 1);
    assert_eq!(result.report.errors.len(), 1);
}
