//! Checked-in oracle repros as permanent regression cases.
//!
//! Every `tests/oracle-repros/*.c` at the workspace root is a program the
//! differential oracle flagged (or a minimized fixture for one of the bugs
//! it flushed out) during development: the omega solver's degenerate-
//! equality panic, the CRLF/tab annotation-span drift, and the
//! order-sensitive store manifest keys. Each program is driven through
//! every engine configuration — context-sensitive, summary single- and
//! multi-threaded, warm cache, store replay, and dirty-region incremental
//! — and every optimized configuration must reproduce the naive reference
//! run's report byte for byte (stripped per the observability contract).

use safeflow::{AnalysisConfig, AnalysisSession, Analyzer, Engine, SessionRun};
use safeflow_oracle::stripped;
use safeflow_syntax::VirtualFs;
use std::path::{Path, PathBuf};

fn repro_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/oracle-repros")
}

fn repros() -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(repro_dir())
        .expect("tests/oracle-repros exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            (name, std::fs::read_to_string(&p).expect("repro is UTF-8"))
        })
        .collect();
    files.sort();
    assert!(files.len() >= 5, "expected the checked-in repro suite, found {}", files.len());
    files
}

fn fs_of(name: &str, src: &str) -> VirtualFs {
    let mut fs = VirtualFs::new();
    fs.add(name, src.to_string());
    fs
}

/// Reference document for one repro: fresh analyzer, reference config.
fn reference_doc(name: &str, src: &str) -> String {
    let analyzer = Analyzer::new(AnalysisConfig::reference());
    let result = analyzer.analyze_program(name, &fs_of(name, src)).expect("repro analyzes");
    analyzer.report_json(&result).render()
}

fn scratch(tag: &str, name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "safeflow-repros-{}-{tag}-{}",
        std::process::id(),
        name.replace('.', "-")
    ))
}

#[test]
fn parallel_matches_reference_on_every_repro() {
    for (name, src) in repros() {
        let expected = stripped_doc(&reference_doc(&name, &src), false);
        for jobs in [2, 4] {
            let analyzer = Analyzer::new(AnalysisConfig::reference().with_jobs(jobs));
            let result =
                analyzer.analyze_program(&name, &fs_of(&name, &src)).expect("repro analyzes");
            let actual = stripped_doc(&analyzer.report_json(&result).render(), false);
            assert_eq!(actual, expected, "{name} diverged at jobs={jobs}");
        }
    }
}

#[test]
fn warm_cache_matches_reference_on_every_repro() {
    for (name, src) in repros() {
        let expected = stripped_doc(&reference_doc(&name, &src), true);
        let analyzer = Analyzer::new(AnalysisConfig::reference());
        let fs = fs_of(&name, &src);
        analyzer.analyze_program(&name, &fs).expect("cold run analyzes");
        let warm = analyzer.analyze_program(&name, &fs).expect("warm run analyzes");
        let actual = stripped_doc(&analyzer.report_json(&warm).render(), true);
        assert_eq!(actual, expected, "{name} diverged on the cache-warm run");
    }
}

#[test]
fn store_replay_matches_reference_on_every_repro() {
    for (name, src) in repros() {
        let dir = scratch("replay", &name);
        let _ = std::fs::remove_dir_all(&dir);
        let expected = stripped_doc(&reference_doc(&name, &src), true);
        let fs = fs_of(&name, &src);
        let mut cold =
            AnalysisSession::with_store(AnalysisConfig::reference(), &dir).expect("store opens");
        cold.check(&name, &fs).expect("cold run analyzes");
        drop(cold); // release the store's writer lock before reopening
        let mut warm =
            AnalysisSession::with_store(AnalysisConfig::reference(), &dir).expect("store reopens");
        let outcome = warm.check(&name, &fs).expect("replay runs");
        assert_eq!(outcome.run, SessionRun::Replayed, "{name} did not replay");
        let actual = stripped_doc(&outcome.report_json.render(), true);
        assert_eq!(actual, expected, "{name} diverged on store replay");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn incremental_reanalysis_matches_reference_on_every_repro() {
    for (name, src) in repros() {
        let dir = scratch("incr", &name);
        let _ = std::fs::remove_dir_all(&dir);
        let expected = stripped_doc(&reference_doc(&name, &src), true);
        // Populate the store from an edited variant, then check the real
        // program against it: the dirty region recomputes over the
        // store-seeded cache.
        let variant = format!("{src}\n/* edited */\n");
        let mut seed =
            AnalysisSession::with_store(AnalysisConfig::reference(), &dir).expect("store opens");
        seed.check(&name, &fs_of(&name, &variant)).expect("variant analyzes");
        drop(seed); // release the store's writer lock before reopening
        let mut incr =
            AnalysisSession::with_store(AnalysisConfig::reference(), &dir).expect("store reopens");
        let outcome = incr.check(&name, &fs_of(&name, &src)).expect("incremental run analyzes");
        assert_eq!(outcome.run, SessionRun::Analyzed, "{name} replayed a stale manifest");
        let actual = stripped_doc(&outcome.report_json.render(), true);
        assert_eq!(actual, expected, "{name} diverged on incremental re-analysis");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn context_sensitive_engine_agrees_on_finding_counts() {
    // The context-sensitive engine legitimately differs from the summary
    // engine in trace detail, so the oracle never diffs their documents —
    // but on the repro suite both engines must agree on what they found.
    for (name, src) in repros() {
        let summary = Analyzer::new(AnalysisConfig::reference());
        let s = summary.analyze_program(&name, &fs_of(&name, &src)).expect("summary analyzes");
        let context = Analyzer::new(AnalysisConfig::with_engine(Engine::ContextSensitive));
        let c = context.analyze_program(&name, &fs_of(&name, &src)).expect("context analyzes");
        assert_eq!(
            c.report.exit_code(),
            s.report.exit_code(),
            "{name}: engines disagree on exit code"
        );
        assert_eq!(
            c.report.errors.len(),
            s.report.errors.len(),
            "{name}: engines disagree on error count"
        );
        assert_eq!(
            c.report.warnings.len(),
            s.report.warnings.len(),
            "{name}: engines disagree on warning count"
        );
    }
}

#[test]
fn crlf_repro_diagnostics_anchor_inside_annotations() {
    // The CRLF/tab fixture specifically locks the annotation-span fix: its
    // unmonitored-access warning must point at a real line/column inside
    // the file, not at a comment opener shifted by carriage returns.
    let (name, src) = repros()
        .into_iter()
        .find(|(n, _)| n == "crlf-tab-annotations.c")
        .expect("CRLF fixture is checked in");
    assert!(src.contains("\r\n"), "fixture must keep its CRLF line endings");
    assert!(src.contains('\t'), "fixture must keep its tab indentation");
    let analyzer = Analyzer::new(AnalysisConfig::reference());
    let result = analyzer.analyze_program(&name, &fs_of(&name, &src)).expect("analyzes");
    let rendered = result.report.render(&result.sources);
    // Every location the report prints must cite a line that exists.
    let lines = src.lines().count();
    for loc in rendered.split(&format!("{name}:")).skip(1) {
        let line: usize = loc
            .split(':')
            .next()
            .and_then(|l| l.parse().ok())
            .unwrap_or_else(|| panic!("unparsable location in report: {loc:.40}"));
        assert!(line >= 1 && line <= lines, "report cites line {line} of {lines}: {rendered}");
    }
}

fn stripped_doc(doc: &str, across_cache_states: bool) -> String {
    stripped(&safeflow::Json::parse(doc).expect("report is JSON"), across_cache_states)
}
