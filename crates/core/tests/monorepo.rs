//! The monorepo corpus must flow through the whole pipeline (ISSUE 8):
//! preprocess (guarded headers, config macros, function-like macros),
//! parallel parse, lower, analyze — with byte-identical reports at every
//! `--jobs` value, like every other corpus program.

use safeflow::{AnalysisConfig, Analyzer};
use safeflow_corpus::monorepo::{generate_monorepo, total_loc, MonorepoParams};
use safeflow_syntax::pp::VirtualFs;

/// A mid-size monorepo: big enough to exercise cross-package call depth
/// and the config-macro conditionals, small enough for a debug-build test.
fn medium() -> MonorepoParams {
    MonorepoParams {
        packages: 5,
        units_per_package: 4,
        stages: 4,
        branches: 6,
        regions: 6,
        configs: 4,
        lib_depth: 3,
    }
}

fn load(params: MonorepoParams) -> (VirtualFs, usize) {
    let files = generate_monorepo(params);
    let loc = total_loc(&files);
    let mut fs = VirtualFs::new();
    for (name, text) in files {
        fs.add(name, text);
    }
    (fs, loc)
}

#[test]
fn monorepo_analyzes_cleanly() {
    let (fs, loc) = load(medium());
    assert!(loc > 1_500, "medium preset should be a real workload, got {loc} LOC");
    let result = Analyzer::new(AnalysisConfig::default())
        .analyze_program("main.c", &fs)
        .expect("monorepo must analyze");
    // Every region read sits under a chain-head monitor, so the corpus
    // scales without scaling the report.
    assert!(!result.diags.has_errors());
    assert!(!result.render().is_empty());
}

#[test]
fn monorepo_reports_identical_across_thread_counts() {
    let (fs, _) = load(medium());
    let reference = Analyzer::new(AnalysisConfig::default().with_jobs(1))
        .analyze_program("main.c", &fs)
        .expect("monorepo must analyze")
        .render();
    for jobs in [2usize, 4, 8] {
        let got = Analyzer::new(AnalysisConfig::default().with_jobs(jobs))
            .analyze_program("main.c", &fs)
            .expect("monorepo must analyze")
            .render();
        assert_eq!(got, reference, "monorepo report diverged at jobs={jobs}");
    }
}

#[test]
fn config_macros_select_real_code() {
    // Flipping a feature flag in config.h must change the analyzed
    // program (the conditionals are live, not decorative).
    let base = generate_monorepo(medium());
    let mut flipped = base.clone();
    for (name, text) in &mut flipped {
        if name == "config.h" {
            *text = text.replace("#define CFG_FEATURE_0 1", "#define CFG_FEATURE_0 0");
        }
    }
    let to_fs = |files: &[(String, String)]| {
        let mut fs = VirtualFs::new();
        for (n, t) in files {
            fs.add(n.clone(), t.clone());
        }
        fs
    };
    let parse = |fs: &VirtualFs| {
        let r = safeflow_syntax::parse_program_jobs("main.c", fs, 2);
        assert!(!r.diags.has_errors(), "monorepo must preprocess cleanly");
        safeflow_syntax::printer::print_unit(&r.unit)
    };
    let a = parse(&to_fs(&base));
    let b = parse(&to_fs(&flipped));
    assert_ne!(a, b, "CFG_FEATURE_0 must gate real program text");
}
