//! Determinism lockdown for the parallel engine (ISSUE 1).
//!
//! The contract: the serialized analysis report is **byte-identical** for
//! every worker count and across repeated runs. The parallel schedule may
//! vary freely; the output may not. Checked over the whole corpus (the
//! three Table 1 systems, the Figure 2 example, and a generated wide
//! program whose SCC fan actually exercises concurrent scheduling) under
//! both engines, several iterations per thread count.

use safeflow::{AnalysisConfig, Analyzer, Engine};
use safeflow_corpus::synthetic::{generate_wide, WideParams};
use safeflow_corpus::{figure2_example, systems};

/// Every corpus program the suite locks down, as (name, source) pairs.
fn corpus_programs() -> Vec<(String, String)> {
    let mut progs: Vec<(String, String)> = systems()
        .into_iter()
        .map(|s| (s.core_file.to_string(), s.core_source.to_string()))
        .collect();
    progs.push(("figure2.c".to_string(), figure2_example().to_string()));
    progs.push((
        "wide.c".to_string(),
        generate_wide(WideParams { families: 12, depth: 3, regions: 4, branches: 2 }),
    ));
    progs
}

fn render(engine: Engine, jobs: usize, file: &str, src: &str) -> String {
    Analyzer::new(AnalysisConfig::with_engine(engine).with_jobs(jobs))
        .analyze_source(file, src)
        .unwrap_or_else(|e| panic!("{file} must analyze: {e}"))
        .render()
}

/// Reports are byte-identical at `--jobs 1`, `4` and `8`, across several
/// iterations each.
#[test]
fn reports_are_identical_across_thread_counts() {
    for (file, src) in corpus_programs() {
        for engine in [Engine::ContextSensitive, Engine::Summary] {
            let reference = render(engine, 1, &file, &src);
            assert!(!reference.is_empty());
            for jobs in [1usize, 4, 8] {
                for round in 0..3 {
                    let got = render(engine, jobs, &file, &src);
                    assert_eq!(
                        got, reference,
                        "{file} ({engine:?}) diverged at jobs={jobs} round={round}"
                    );
                }
            }
        }
    }
}

/// Re-analysis on one `Analyzer` (warm summary cache) is also
/// byte-identical to the cold run at every thread count.
#[test]
fn warm_cache_reports_match_cold_at_every_thread_count() {
    for (file, src) in corpus_programs() {
        let reference = render(Engine::Summary, 1, &file, &src);
        for jobs in [1usize, 4, 8] {
            let analyzer =
                Analyzer::new(AnalysisConfig::with_engine(Engine::Summary).with_jobs(jobs));
            for round in 0..3 {
                let got = analyzer
                    .analyze_source(&file, &src)
                    .unwrap_or_else(|e| panic!("{file} must analyze: {e}"))
                    .render();
                assert_eq!(got, reference, "{file} warm run diverged at jobs={jobs} round={round}");
            }
        }
    }
}
