//! Tests for the paper's §3.4 discussion and extensions:
//!
//! * §3.4.1 false positives — control dependence classification and the
//!   restructuring advice;
//! * §3.4.2 non-core component encapsulation — extra `assume` annotations
//!   declaring shared locations core within certain functions;
//! * §3.4.3 message passing — `noncore(socket)` descriptors and `recv`
//!   buffer tainting with local-pointer monitoring.

use safeflow::{AnalysisConfig, Analyzer, DependencyKind, Engine};

fn analyze_both(src: &str) -> Vec<(Engine, safeflow::AnalysisResult)> {
    [Engine::ContextSensitive, Engine::Summary]
        .into_iter()
        .map(|e| {
            (
                e,
                Analyzer::new(AnalysisConfig::with_engine(e))
                    .analyze_source("ext.c", src)
                    .unwrap_or_else(|err| panic!("{e:?}: {err}")),
            )
        })
        .collect()
}

const SHM_PRELUDE: &str = r#"
    typedef struct { float value; int flag; } Blk;
    Blk *shared;
    void *shmat(int shmid, void *addr, int flags);
    void send(float v);

    void initShm(void)
    /** SafeFlow Annotation shminit */
    {
        shared = (Blk *) shmat(0, 0, 0);
        /** SafeFlow Annotation
            assume(shmvar(shared, sizeof(Blk)))
            assume(noncore(shared))
        */
    }
"#;

/// §3.4.2: "the function decision could be further annotated with
/// assume(core(feedback, ...)), thus declaring feedback to be safe to
/// dereference in decision and all the functions recursively called by it."
#[test]
fn encapsulation_annotation_extends_to_callees() {
    let src = format!(
        r#"{SHM_PRELUDE}
        float leaf(void) {{ return shared->value; }}
        float middle(void) {{ return leaf() * 2.0; }}
        float trusted(void)
        /** SafeFlow Annotation assume(core(shared, 0, sizeof(Blk))) */
        {{
            return middle();
        }}
        int main() {{
            float out;
            initShm();
            out = trusted();
            /** SafeFlow Annotation assert(safe(out)) */
            send(out);
            return 0;
        }}
        "#
    );
    for (engine, result) in analyze_both(&src) {
        assert!(
            result.report.warnings.is_empty(),
            "{engine:?}: assume scope must cover transitive callees:\n{}",
            result.render()
        );
        assert!(result.report.errors.is_empty(), "{engine:?}:\n{}", result.render());
    }
}

/// The same callee chain WITHOUT the annotation must warn — proving the
/// previous test is not vacuous.
#[test]
fn unannotated_chain_still_warns() {
    let src = format!(
        r#"{SHM_PRELUDE}
        float leaf(void) {{ return shared->value; }}
        float middle(void) {{ return leaf() * 2.0; }}
        float untrusted(void) {{ return middle(); }}
        int main() {{
            float out;
            initShm();
            out = untrusted();
            /** SafeFlow Annotation assert(safe(out)) */
            send(out);
            return 0;
        }}
        "#
    );
    for (engine, result) in analyze_both(&src) {
        assert_eq!(result.report.warnings.len(), 1, "{engine:?}:\n{}", result.render());
        assert!(
            result.report.errors.iter().any(|e| e.critical == "out"),
            "{engine:?}:\n{}",
            result.render()
        );
    }
}

/// §3.4.1: the paper's restructuring advice — "a superior design would be
/// to restructure the non-core components by separating out an additional
/// core component that writes the configuration in shared memory." A
/// core-written region never warns.
#[test]
fn core_written_configuration_is_clean() {
    let src = r#"
        typedef struct { int mode; int rate; } Cfg;
        Cfg *cfgShm;
        void *shmat(int shmid, void *addr, int flags);
        void send(float v);

        void initShm(void)
        /** SafeFlow Annotation shminit */
        {
            cfgShm = (Cfg *) shmat(0, 0, 0);
            /** SafeFlow Annotation assume(shmvar(cfgShm, sizeof(Cfg))) */
        }

        int main() {
            float out;
            initShm();
            /* cfgShm has no noncore() annotation: a core component owns it
               (the paper's suggested restructuring). */
            if (cfgShm->mode == 1) {
                out = 2.0;
            } else {
                out = 1.0;
            }
            /** SafeFlow Annotation assert(safe(out)) */
            send(out);
            return 0;
        }
    "#;
    for (engine, result) in analyze_both(src) {
        assert!(result.report.warnings.is_empty(), "{engine:?}:\n{}", result.render());
        assert!(result.report.errors.is_empty(), "{engine:?}:\n{}", result.render());
    }
}

/// §3.4.3: a socket annotated `noncore` taints received buffers; an
/// unannotated socket is assumed to talk to core components and does not.
#[test]
fn socket_annotation_controls_recv_taint() {
    let tainted_src = r#"
        int ncSock;
        float buf[8];
        int recv(int socket, float *buffer, int length, int flags);
        void send(float v);
        void setup(void)
        /** SafeFlow Annotation shminit */
        {
            /** SafeFlow Annotation assume(noncore(ncSock)) */
        }
        int main() {
            float out;
            setup();
            recv(ncSock, buf, 8, 0);
            out = buf[0];
            /** SafeFlow Annotation assert(safe(out)) */
            send(out);
            return 0;
        }
    "#;
    for (engine, result) in analyze_both(tainted_src) {
        assert!(
            result.report.errors.iter().any(|e| e.critical == "out"),
            "{engine:?}: noncore socket data must taint:\n{}",
            result.render()
        );
    }

    // Same program without the noncore(socket) annotation: "Socket file
    // descriptors not annotated as non-core are assumed to communicate
    // with core components."
    let clean_src = tainted_src.replace("/** SafeFlow Annotation assume(noncore(ncSock)) */", "");
    for (engine, result) in analyze_both(&clean_src) {
        assert!(
            result.report.errors.is_empty(),
            "{engine:?}: core socket data is trusted:\n{}",
            result.render()
        );
    }
}

/// §3.4.3: "we use assume annotations to define that it is safe to
/// dereference received non-core data within the function ... applied to a
/// local pointer" — monitoring the received buffer through a parameter.
#[test]
fn received_buffer_monitored_through_parameter() {
    let src = r#"
        int ncSock;
        float rxbuf[8];
        int recv(int socket, float *buffer, int length, int flags);
        void send(float v);
        void setup(void)
        /** SafeFlow Annotation shminit */
        {
            /** SafeFlow Annotation assume(noncore(ncSock)) */
        }

        float validate(float *msg)
        /** SafeFlow Annotation assume(core(msg, 0, 32)) */
        {
            float v;
            v = msg[0];
            if (v > 100.0) return 0.0;
            if (v < 0.0 - 100.0) return 0.0;
            return v;
        }

        int main() {
            float out;
            setup();
            recv(ncSock, rxbuf, 8, 0);
            out = validate(rxbuf);
            /** SafeFlow Annotation assert(safe(out)) */
            send(out);
            return 0;
        }
    "#;
    // Note: buffer-parameter monitoring is resolved per-function (the
    // extension's local-pointer form); the context-sensitive engine applies
    // it at the load site.
    let result = Analyzer::new(AnalysisConfig::default()).analyze_source("ext.c", src).unwrap();
    // The validate() reads are monitored through the parameter annotation,
    // so no data error on `out`.
    assert!(
        result.report.errors.iter().all(|e| e.kind != DependencyKind::Data),
        "monitored received data must not be a data error:\n{}",
        result.render()
    );
}

/// §2 operational rules: writes by the core never change region status —
/// "Writes to a shared variable ... does not modify the truth values of
/// core(Si) and noncore(Si)" — so write-then-read of a noncore region is
/// still unsafe (this is exactly the rigged-feedback mechanism).
#[test]
fn write_does_not_sanitize_noncore_region() {
    let src = format!(
        r#"{SHM_PRELUDE}
        float sensor(void);
        int main() {{
            float out;
            initShm();
            shared->value = sensor();   /* core writes a clean value... */
            out = shared->value;        /* ...but the re-read is STILL unsafe */
            /** SafeFlow Annotation assert(safe(out)) */
            send(out);
            return 0;
        }}
        "#
    );
    for (engine, result) in analyze_both(&src) {
        assert_eq!(result.report.warnings.len(), 1, "{engine:?}:\n{}", result.render());
        assert!(
            result
                .report
                .errors
                .iter()
                .any(|e| e.critical == "out" && e.kind == DependencyKind::Data),
            "{engine:?}: write-then-read must stay unsafe:\n{}",
            result.render()
        );
    }
}
