//! Edge cases of the §3.2 restriction checker beyond the unit tests:
//! A2(c)'s symbolic-term rule, P2 on locals, P1 in loops, and obligations
//! on region-as-array accesses through derived pointers.

use safeflow::{AnalysisConfig, Analyzer, Restriction};

fn violations(src: &str) -> (Vec<safeflow::RestrictionViolation>, String) {
    let result =
        Analyzer::new(AnalysisConfig::default()).analyze_source("edge.c", src).expect("analyzes");
    let rendered = result.render();
    (result.report.violations, rendered)
}

fn has(vs: &[safeflow::RestrictionViolation], r: Restriction) -> bool {
    vs.iter().any(|v| v.restriction == r)
}

const ARRAY_PRELUDE: &str = r#"
    typedef struct { float ring[8]; int head; } Buf;
    Buf *bufShm;
    void *shmat(int shmid, void *addr, int flags);
    void initShm(void)
    /** SafeFlow Annotation shminit */
    {
        bufShm = (Buf *) shmat(0, 0, 0);
        /** SafeFlow Annotation
            assume(shmvar(bufShm, sizeof(Buf)))
            assume(noncore(bufShm))
        */
    }
"#;

/// A2(c): "if the index expression ... depends on a symbolic variable z,
/// which is independent of the loop index variable ... the memory locations
/// accessed by that reference have to be provably independent of the value
/// of z." `ring[i + z]` with unconstrained z is not provable.
#[test]
fn a2c_symbolic_additive_term_rejected() {
    let src = format!(
        r#"{ARRAY_PRELUDE}
        float bad(int z) {{
            float s = 0.0;
            int i;
            for (i = 0; i < 4; i++) {{
                s = s + bufShm->ring[i + z];
            }}
            return s;
        }}
        "#
    );
    let (vs, rendered) = violations(&src);
    assert!(
        has(&vs, Restriction::A1) || has(&vs, Restriction::A2),
        "symbolic additive index term must be rejected:\n{rendered}"
    );
}

/// The same shape with a *constant* additive term within bounds is fine.
#[test]
fn a2c_constant_additive_term_proven() {
    let src = format!(
        r#"{ARRAY_PRELUDE}
        float ok(void) {{
            float s = 0.0;
            int i;
            for (i = 0; i < 4; i++) {{
                s = s + bufShm->ring[i + 4];
            }}
            return s;
        }}
        "#
    );
    let (vs, rendered) = violations(&src);
    assert!(!has(&vs, Restriction::A1), "{rendered}");
    assert!(!has(&vs, Restriction::A2), "{rendered}");
}

/// Down-counting loops prove bounds through the ≤-init constraint.
#[test]
fn down_counting_loop_bounds_proven() {
    let src = format!(
        r#"{ARRAY_PRELUDE}
        float ok(void) {{
            float s = 0.0;
            int i;
            for (i = 7; i > 0; i = i - 1) {{
                s = s + bufShm->ring[i];
            }}
            return s;
        }}
        "#
    );
    let (vs, rendered) = violations(&src);
    assert!(!has(&vs, Restriction::A1), "{rendered}");
}

/// Down-counting loop that underruns (reaches -1) is rejected.
#[test]
fn down_counting_underrun_rejected() {
    let src = format!(
        r#"{ARRAY_PRELUDE}
        float bad(void) {{
            float s = 0.0;
            int i;
            for (i = 7; i > 0; i = i - 1) {{
                s = s + bufShm->ring[i - 8];
            }}
            return s;
        }}
        "#
    );
    let (vs, rendered) = violations(&src);
    assert!(has(&vs, Restriction::A1), "{rendered}");
}

/// P2 applies to address-taken *locals* holding shm pointers, not just
/// globals ("Taking the address of a pointer to shared memory is
/// disallowed").
#[test]
fn p2_address_of_local_shm_pointer() {
    let src = format!(
        r#"{ARRAY_PRELUDE}
        void taker(Buf **pp);
        void bad(void) {{
            Buf *localPtr;
            localPtr = bufShm;
            taker(&localPtr);
        }}
        "#
    );
    let (vs, rendered) = violations(&src);
    assert!(has(&vs, Restriction::P2), "{rendered}");
}

/// Passing the shm pointer itself *by value* is fine (the paper's systems
/// do this everywhere: `decision(feedback, ...)`).
#[test]
fn p2_passing_shm_pointer_by_value_ok() {
    let src = format!(
        r#"{ARRAY_PRELUDE}
        float reader(Buf *b) {{ return b->ring[0]; }}
        float ok(void) {{ return reader(bufShm); }}
        "#
    );
    let (vs, rendered) = violations(&src);
    assert!(!has(&vs, Restriction::P2), "{rendered}");
}

/// P1: deallocation inside main's control loop (memory accessed on the
/// next iteration) is a violation even though it syntactically appears in
/// `main`.
#[test]
fn p1_dealloc_inside_main_loop() {
    let src = format!(
        r#"{ARRAY_PRELUDE}
        int shmdt(void *addr);
        int main() {{
            float s;
            int i;
            initShm();
            s = 0.0;
            for (i = 0; i < 10; i++) {{
                s = s + bufShm->ring[0];
                shmdt(bufShm);
            }}
            return 0;
        }}
        "#
    );
    let (vs, rendered) = violations(&src);
    assert!(has(&vs, Restriction::P1), "{rendered}");
}

/// A struct field that is NOT an array imposes no array obligations.
#[test]
fn scalar_field_access_has_no_array_obligation() {
    let src = format!(
        r#"{ARRAY_PRELUDE}
        int ok(void) {{ return bufShm->head; }}
        "#
    );
    let (vs, rendered) = violations(&src);
    assert!(vs.is_empty(), "{rendered}");
}

/// Indexing through a pointer previously offset by a constant keeps the
/// offset in the obligation (`(buf + 1)` style derived pointers).
#[test]
fn derived_pointer_offset_participates_in_bounds() {
    // Region of 16 floats; p = base + 12; p[i] with i in [0,4) is fine,
    // i in [0,8) overruns.
    let src = r#"
        float *samples;
        void *shmat(int shmid, void *addr, int flags);
        void initShm(void)
        /** SafeFlow Annotation shminit */
        {
            samples = (float *) shmat(0, 0, 0);
            /** SafeFlow Annotation
                assume(shmvar(samples, 64))
                assume(noncore(samples))
            */
        }
        float ok(void) {
            float s = 0.0;
            float *p;
            int i;
            p = samples + 12;
            for (i = 0; i < 4; i++) s = s + p[i];
            return s;
        }
        float bad(void) {
            float s = 0.0;
            float *p;
            int i;
            p = samples + 12;
            for (i = 0; i < 8; i++) s = s + p[i];
            return s;
        }
    "#;
    let (vs, rendered) = violations(src);
    let a1s: Vec<_> = vs.iter().filter(|v| v.restriction == Restriction::A1).collect();
    assert_eq!(a1s.len(), 1, "only the overrunning loop errs:\n{rendered}");
    assert_eq!(a1s[0].function, "bad", "{rendered}");
}
