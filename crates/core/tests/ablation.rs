//! The §3.4.1 ablation: what happens when control-dependence propagation
//! is switched off.
//!
//! The paper keeps control dependence despite its false positives because
//! dropping it also drops *real* findings — Figure 2's own error is a
//! control dependency ("the control dependence on the non-core
//! configuration data reports an erroneous dependency" is the FP side;
//! `decision`'s gated return is the true-positive side). This test
//! quantifies both directions on the corpus.

use safeflow::{AnalysisConfig, Analyzer, DependencyKind, Engine};

fn config_without_control_deps(engine: Engine) -> AnalysisConfig {
    AnalysisConfig { track_control_dependence: false, ..AnalysisConfig::with_engine(engine) }
}

/// Disabling control dependence removes every corpus false positive
/// (the paper: "All false positives returned in our tests were due to
/// control dependence on non-core values").
#[test]
fn without_control_deps_corpus_has_zero_false_positives() {
    for engine in [Engine::ContextSensitive, Engine::Summary] {
        for system in safeflow_corpus::systems() {
            let result = Analyzer::new(config_without_control_deps(engine))
                .analyze_source(system.core_file, system.core_source)
                .unwrap();
            // Every remaining error must be a seeded (real) defect.
            for e in &result.report.errors {
                assert!(
                    system.defects.iter().any(|d| d.critical == e.critical),
                    "{} ({engine:?}): `{}` survived without control deps but is not a defect:\n{}",
                    system.name,
                    e.critical,
                    result.render()
                );
                assert_eq!(e.kind, DependencyKind::Data);
            }
            // And all the *data*-dependency defects are still found.
            let data_defects = ["kill:arg0", "uOut", "uFinal"];
            for d in &system.defects {
                if data_defects.contains(&d.critical) {
                    assert!(
                        result.report.errors.iter().any(|e| e.critical == d.critical),
                        "{} ({engine:?}): data defect `{}` must survive the ablation",
                        system.name,
                        d.critical
                    );
                }
            }
            // Warnings are untouched: they never depended on control flow.
            assert_eq!(result.report.warnings.len(), system.paper.warnings);
        }
    }
}

/// ... but the ablation also loses a real finding: Figure 2's `output`
/// error is a pure control dependency and disappears — which is exactly why
/// the paper accepts the false positives.
#[test]
fn without_control_deps_figure2_error_is_missed() {
    let with = Analyzer::new(AnalysisConfig::default())
        .analyze_source("fig2.c", safeflow_corpus::figure2_example())
        .unwrap();
    assert!(
        with.report.errors.iter().any(|e| e.critical == "output"),
        "baseline finds the Figure 2 error"
    );

    let without = Analyzer::new(config_without_control_deps(Engine::ContextSensitive))
        .analyze_source("fig2.c", safeflow_corpus::figure2_example())
        .unwrap();
    assert!(
        !without.report.errors.iter().any(|e| e.critical == "output"),
        "the ablation silently misses the paper's own worked example:\n{}",
        without.render()
    );
    // The unmonitored reads are still warned about, so the developer is
    // not completely blind — but the critical-data connection is lost.
    assert!(!without.report.warnings.is_empty());
}

/// The context-explosion guard: with a tiny `max_contexts`, analysis still
/// terminates and reports (possibly merged) findings without panicking.
#[test]
fn context_cap_degrades_gracefully() {
    use safeflow_corpus::synthetic::{generate_core, SyntheticParams};
    let src = generate_core(SyntheticParams { regions: 4, monitors: 4, depth: 8, branches: 2 });
    let cfg = AnalysisConfig { max_contexts: 2, ..AnalysisConfig::default() };
    let result = Analyzer::new(cfg).analyze_source("syn.c", &src).expect("analyzes");
    // Per-function cap: at most (cap + 1 merged) contexts per function.
    let n_functions = result.module.functions.len();
    assert!(
        result.report.contexts_analyzed <= n_functions * 3,
        "contexts {} vs {} functions",
        result.report.contexts_analyzed,
        n_functions
    );
    // Sound degradation: the unmonitored helper read still warns.
    assert!(!result.report.warnings.is_empty(), "{}", result.render());
}
