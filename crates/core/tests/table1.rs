//! Table 1 reproduction: run SafeFlow on each corpus system and check the
//! finding counts against the paper's row, under both phase-3 engines.
//!
//! Mapping (see DESIGN.md §5): the paper's "Warnings" column = our
//! warnings; "Error Dependencies" = reports matching the system's seeded
//! defect manifest (the paper's manual triage confirmed these); "False
//! Positives" = the remaining reports (all control-dependence-only in the
//! paper's evaluation, §4).

use safeflow::{AnalysisConfig, Analyzer, DependencyKind, Engine};
use safeflow_corpus::{systems, System};

fn check_system(system: &System, engine: Engine) {
    let result = Analyzer::new(AnalysisConfig::with_engine(engine))
        .analyze_source(system.core_file, system.core_source)
        .unwrap_or_else(|e| panic!("{} failed to analyze:\n{e}", system.name));
    let r = &result.report;

    // No restriction violations: the lab systems complied with the subset
    // ("no source changes were necessary for the systems to adhere to our
    // language restrictions").
    assert!(
        r.violations.is_empty(),
        "{} ({engine:?}): unexpected violations:\n{}",
        system.name,
        result.render()
    );

    // Warnings.
    assert_eq!(
        r.warnings.len(),
        system.paper.warnings,
        "{} ({engine:?}): warning count mismatch:\n{}",
        system.name,
        result.render()
    );

    // Errors: every seeded defect must be reported...
    for defect in &system.defects {
        assert!(
            r.errors.iter().any(|e| e.critical == defect.critical),
            "{} ({engine:?}): defect `{}` (critical `{}`) not reported:\n{}",
            system.name,
            defect.id,
            defect.critical,
            result.render()
        );
    }
    // ... and the confirmed/false-positive split must match Table 1.
    let confirmed =
        r.errors.iter().filter(|e| system.defects.iter().any(|d| d.critical == e.critical)).count();
    let false_positives = r.errors.len() - confirmed;
    assert_eq!(
        confirmed,
        system.paper.errors,
        "{} ({engine:?}): confirmed error count mismatch:\n{}",
        system.name,
        result.render()
    );
    assert_eq!(
        false_positives,
        system.paper.false_positives,
        "{} ({engine:?}): false positive count mismatch:\n{}",
        system.name,
        result.render()
    );

    // The paper's false positives were all control-dependence reports
    // ("All false positives returned in our tests were due to control
    // dependence on non-core values").
    for e in &r.errors {
        let is_defect = system.defects.iter().any(|d| d.critical == e.critical);
        if !is_defect {
            assert_eq!(
                e.kind,
                DependencyKind::ControlOnly,
                "{} ({engine:?}): FP `{}` must be control-only:\n{}",
                system.name,
                e.critical,
                result.render()
            );
        }
    }
}

#[test]
fn ip_matches_table1_context_sensitive() {
    check_system(&systems()[0], Engine::ContextSensitive);
}

#[test]
fn ip_matches_table1_summary() {
    check_system(&systems()[0], Engine::Summary);
}

#[test]
fn generic_simplex_matches_table1_context_sensitive() {
    check_system(&systems()[1], Engine::ContextSensitive);
}

#[test]
fn generic_simplex_matches_table1_summary() {
    check_system(&systems()[1], Engine::Summary);
}

#[test]
fn double_ip_matches_table1_context_sensitive() {
    check_system(&systems()[2], Engine::ContextSensitive);
}

#[test]
fn double_ip_matches_table1_summary() {
    check_system(&systems()[2], Engine::Summary);
}

#[test]
fn figure2_example_analyzes() {
    let result = Analyzer::new(AnalysisConfig::default())
        .analyze_source("fig2.c", safeflow_corpus::figure2_example())
        .expect("figure 2 parses");
    // The running example reports the feedback dependency on `output`.
    assert!(result.report.errors.iter().any(|e| e.critical == "output"));
    assert!(result.report.warnings.iter().any(|w| w.region_name == "feedback"));
}

/// Core LOC should be in the ballpark of the paper's systems (±25%); exact
/// counts per run are recorded in EXPERIMENTS.md.
#[test]
fn corpus_loc_scale_is_plausible() {
    for system in systems() {
        let loc = system.core_loc();
        let target = system.paper.loc_core;
        assert!(
            loc * 4 >= target * 3 && loc * 3 <= target * 4,
            "{}: core LOC {} too far from the paper's {}",
            system.name,
            loc,
            target
        );
    }
}

/// Annotation burden should be close to the paper's (±4 lines).
#[test]
fn corpus_annotation_burden_is_plausible() {
    for system in systems() {
        let lines = system.annotation_lines();
        let target = system.paper.annotation_lines;
        assert!(
            lines.abs_diff(target) <= 4,
            "{}: {} annotation lines vs paper's {}",
            system.name,
            lines,
            target
        );
    }
}

/// The corpus systems survive a parse → print → reparse round trip with
/// identical analysis results (printer fidelity on real-sized programs).
#[test]
fn corpus_print_round_trip_preserves_findings() {
    let analyzer = Analyzer::new(AnalysisConfig::default());
    for system in systems() {
        let parsed = safeflow_syntax::parse_source(system.core_file, system.core_source);
        assert!(!parsed.diags.has_errors());
        let printed = safeflow_syntax::printer::print_unit(&parsed.unit);
        let original = analyzer.analyze_source(system.core_file, system.core_source).unwrap();
        let reprinted = analyzer
            .analyze_source("printed.c", &printed)
            .unwrap_or_else(|e| panic!("{}: printed form fails to analyze:\n{e}", system.name));
        assert_eq!(
            original.report.warnings.len(),
            reprinted.report.warnings.len(),
            "{}: warnings diverge after round trip",
            system.name
        );
        assert_eq!(
            original.report.errors.len(),
            reprinted.report.errors.len(),
            "{}: errors diverge after round trip",
            system.name
        );
        assert_eq!(
            original.report.violations.len(),
            reprinted.report.violations.len(),
            "{}: violations diverge after round trip",
            system.name
        );
    }
}
