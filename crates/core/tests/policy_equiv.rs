//! Default-policy equivalence suite (ISSUE 10).
//!
//! The label-lattice policy engine must be invisible under the default
//! two-point policy: a `Policy` built explicitly through the new
//! `Policy::builder()` API (declaring nothing) must reproduce every
//! checked-in golden snapshot and every oracle-repro reference document
//! byte-for-byte, and must keep the `safeflow-report-v1` schema. Only a
//! policy that actually declares labels may switch reports to v2 — that
//! side is pinned by `make policy-smoke` and the mode-differentiation
//! test at the bottom.

use safeflow::{
    AnalysisConfig, Analyzer, Budget, DependencyKind, Engine, FaultPlan, FaultSite,
    ImplicitFlowMode, Policy,
};
use safeflow_corpus::{figure2_example, systems};
use safeflow_oracle::stripped;
use safeflow_syntax::VirtualFs;
use std::path::{Path, PathBuf};

/// An explicitly-built empty policy: same meaning as `Policy::default()`,
/// but constructed through the builder the way a downstream caller would.
fn explicit_default_policy() -> Policy {
    Policy::builder().implicit_flow(ImplicitFlowMode::ReportSeparately).build()
}

fn golden(name: &str) -> String {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.txt"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden file {} must exist: {e}", path.display()))
}

/// Rebuilds golden.rs's two-engine snapshot string under a config whose
/// policy field was explicitly set to the builder-made empty policy.
fn two_engine_doc(file: &str, src: &str) -> String {
    let mut got = String::new();
    for (label, engine) in
        [("context-sensitive", Engine::ContextSensitive), ("summary", Engine::Summary)]
    {
        let mut config = AnalysisConfig::with_engine(engine).with_jobs(4);
        config.policy = explicit_default_policy();
        let rendered = Analyzer::new(config)
            .analyze_source(file, src)
            .unwrap_or_else(|e| panic!("{file} must analyze: {e}"))
            .render();
        got.push_str(&format!("==== engine: {label} ====\n{rendered}\n"));
    }
    got
}

#[test]
fn builder_default_equals_two_point() {
    let built = explicit_default_policy();
    assert_eq!(built, Policy::two_point());
    assert_eq!(built, Policy::default());
    assert!(built.is_default(), "builder with no declarations must stay the default policy");
    #[allow(deprecated)]
    let legacy = Policy::monitored_unmonitored();
    assert_eq!(built, legacy, "the deprecated constructor must stay an alias for the default");
}

#[test]
fn explicit_default_policy_reproduces_corpus_goldens() {
    for s in systems() {
        let name = match s.name {
            "IP" => "ip",
            "Double IP" => "double_ip",
            "Generic Simplex" => "generic",
            other => panic!("unexpected corpus system `{other}`"),
        };
        assert_eq!(
            two_engine_doc(s.core_file, s.core_source),
            golden(name),
            "explicit default policy must reproduce golden `{name}` byte-for-byte"
        );
    }
    assert_eq!(two_engine_doc("figure2.c", figure2_example()), golden("fig2"));
}

#[test]
fn explicit_default_policy_reproduces_degraded_goldens() {
    for (name, config) in [
        (
            "degraded_scc_panic",
            AnalysisConfig::with_engine(Engine::Summary)
                .with_fault_plan(FaultPlan::panic_at(FaultSite::SccAnalysis, 0))
                .with_jobs(4),
        ),
        (
            "degraded_tiny_solver_budget",
            AnalysisConfig::with_engine(Engine::Summary)
                .with_budget(Budget { solver_steps: Some(1), ..Budget::unlimited() }),
        ),
    ] {
        let mut config = config;
        config.policy = explicit_default_policy();
        let got = Analyzer::new(config)
            .analyze_source("figure2.c", figure2_example())
            .expect("fig2 analyzes")
            .render();
        assert_eq!(
            got,
            golden(name),
            "explicit default policy must reproduce degraded golden `{name}`"
        );
    }
}

#[test]
fn explicit_default_policy_reproduces_oracle_repro_references() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/oracle-repros");
    let mut repros: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/oracle-repros exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    repros.sort();
    assert!(repros.len() >= 5, "expected the checked-in repro suite, found {}", repros.len());
    for path in repros {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).expect("repro is UTF-8");
        let mut fs = VirtualFs::new();
        fs.add(name.as_str(), src.clone());

        let reference = Analyzer::new(AnalysisConfig::reference());
        let want = reference.analyze_program(&name, &fs).expect("repro analyzes");
        let want_doc = stripped(&reference.report_json(&want), false);

        let mut config = AnalysisConfig::reference();
        config.policy = explicit_default_policy();
        let explicit = Analyzer::new(config);
        let got = explicit.analyze_program(&name, &fs).expect("repro analyzes");
        let got_doc = stripped(&explicit.report_json(&got), false);

        assert_eq!(
            got_doc, want_doc,
            "explicit default policy must reproduce repro `{name}` reference byte-for-byte"
        );
        assert_eq!(want.report.schema(), "safeflow-report-v1");
        assert_eq!(got.report.schema(), "safeflow-report-v1");
    }
}

/// The checked-in mixed-criticality example must actually separate the
/// three implicit-flow modes: strict promotes the control-only finding,
/// taint-only drops it, report-separately keeps it as a distinct kind.
/// Byte-level pinning of the same runs lives in `make policy-smoke`.
#[test]
fn implicit_flow_modes_differ_on_mixed_criticality_example() {
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/policy/mixed_criticality.c");
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("example {} must exist: {e}", path.display()));

    let run = |mode: ImplicitFlowMode| {
        let config = AnalysisConfig {
            policy: Policy::builder().implicit_flow(mode).build(),
            ..AnalysisConfig::default()
        };
        Analyzer::new(config)
            .analyze_source("mixed_criticality.c", &src)
            .expect("example analyzes")
            .report
    };

    let strict = run(ImplicitFlowMode::Strict);
    let taint_only = run(ImplicitFlowMode::TaintOnly);
    let separate = run(ImplicitFlowMode::ReportSeparately);

    for report in [&strict, &taint_only, &separate] {
        assert_eq!(report.schema(), "safeflow-report-v2", "labeled policy must report v2");
        assert!(
            report.errors.iter().all(|e| e.label.is_some()),
            "every finding under a labeled policy carries its label"
        );
    }

    assert_eq!(strict.errors.len(), 3);
    assert!(
        strict.errors.iter().all(|e| e.kind == DependencyKind::Data),
        "strict mode promotes control-only dependencies to definite errors"
    );
    assert_eq!(taint_only.errors.len(), 2, "taint-only mode drops the control-only finding");
    assert_eq!(separate.errors.len(), 3);
    assert_eq!(
        separate.errors.iter().filter(|e| e.kind == DependencyKind::ControlOnly).count(),
        1,
        "report-separately keeps the control-only finding as its own kind"
    );
    assert_eq!(
        separate.errors.iter().filter(|e| e.label.as_deref() == Some("sensor_b")).count(),
        2,
        "the unmonitored and partially-declassified sensor_b flows both surface"
    );
}
