//! Robustness tests: recursion, switch-driven control dependence, multiple
//! init functions — shapes the corpus does not exercise.

use safeflow::{AnalysisConfig, Analyzer, DependencyKind, Engine};

fn analyze_both(src: &str) -> Vec<(Engine, safeflow::AnalysisResult)> {
    [Engine::ContextSensitive, Engine::Summary]
        .into_iter()
        .map(|e| {
            (
                e,
                Analyzer::new(AnalysisConfig::with_engine(e))
                    .analyze_source("rob.c", src)
                    .unwrap_or_else(|err| panic!("{e:?}: {err}")),
            )
        })
        .collect()
}

/// Recursive functions terminate and propagate taint through the cycle.
#[test]
fn recursion_terminates_and_propagates() {
    let src = r#"
        typedef struct { float v; } Blk;
        Blk *reg;
        void *shmat(int a, void *b, int c);
        void send(float v);
        void init(void)
        /** SafeFlow Annotation shminit */
        {
            reg = (Blk *) shmat(0, 0, 0);
            /** SafeFlow Annotation
                assume(shmvar(reg, sizeof(Blk)))
                assume(noncore(reg))
            */
        }
        float walk(int depth, float acc) {
            if (depth <= 0) {
                return acc + reg->v;   /* unmonitored read at the base */
            }
            return walk(depth - 1, acc * 0.5);
        }
        int main() {
            float out;
            init();
            out = walk(4, 1.0);
            /** SafeFlow Annotation assert(safe(out)) */
            send(out);
            return 0;
        }
    "#;
    for (engine, result) in analyze_both(src) {
        assert_eq!(result.report.warnings.len(), 1, "{engine:?}:\n{}", result.render());
        assert!(
            result
                .report
                .errors
                .iter()
                .any(|e| e.critical == "out" && e.kind == DependencyKind::Data),
            "{engine:?}: taint must flow out of the recursion:\n{}",
            result.render()
        );
    }
}

/// Mutual recursion through a monitored/unmonitored pair stays sound.
#[test]
fn mutual_recursion_with_monitor() {
    let src = r#"
        typedef struct { float v; } Blk;
        Blk *reg;
        void *shmat(int a, void *b, int c);
        void send(float v);
        void init(void)
        /** SafeFlow Annotation shminit */
        {
            reg = (Blk *) shmat(0, 0, 0);
            /** SafeFlow Annotation
                assume(shmvar(reg, sizeof(Blk)))
                assume(noncore(reg))
            */
        }
        float pong(int n);
        float ping(int n) {
            if (n <= 0) return 0.0;
            return pong(n - 1);
        }
        float pong(int n) {
            if (n <= 0) return reg->v;
            return ping(n - 1);
        }
        float guard(void)
        /** SafeFlow Annotation assume(core(reg, 0, sizeof(Blk))) */
        {
            float v = ping(3);
            if (v > 10.0) return 0.0;
            return v;
        }
        int main() {
            float out;
            init();
            out = guard();
            /** SafeFlow Annotation assert(safe(out)) */
            send(out);
            return 0;
        }
    "#;
    for (engine, result) in analyze_both(src) {
        // The read inside pong happens under guard's assume scope on every
        // path: no warnings, no errors.
        assert!(
            result.report.warnings.is_empty(),
            "{engine:?}: recursion under a monitor is covered:\n{}",
            result.render()
        );
        assert!(result.report.errors.is_empty(), "{engine:?}:\n{}", result.render());
    }
}

/// `switch` on a non-core value control-taints the cases, like `if`.
#[test]
fn switch_scrutinee_control_taints_cases() {
    let src = r#"
        typedef struct { int mode; } Blk;
        Blk *reg;
        void *shmat(int a, void *b, int c);
        void send(float v);
        void init(void)
        /** SafeFlow Annotation shminit */
        {
            reg = (Blk *) shmat(0, 0, 0);
            /** SafeFlow Annotation
                assume(shmvar(reg, sizeof(Blk)))
                assume(noncore(reg))
            */
        }
        int main() {
            float out;
            int m;
            init();
            m = reg->mode;
            switch (m) {
                case 0: out = 1.0; break;
                case 1: out = 2.0; break;
                default: out = 0.5; break;
            }
            /** SafeFlow Annotation assert(safe(out)) */
            send(out);
            return 0;
        }
    "#;
    for (engine, result) in analyze_both(src) {
        let err =
            result.report.errors.iter().find(|e| e.critical == "out").unwrap_or_else(|| {
                panic!("{engine:?}: expected control error:\n{}", result.render())
            });
        assert_eq!(err.kind, DependencyKind::ControlOnly, "{engine:?}");
    }
}

/// Two `shminit` functions each declaring their own regions coexist.
#[test]
fn multiple_init_functions() {
    let src = r#"
        typedef struct { float v; } A;
        typedef struct { int m; } B;
        A *aShm;
        B *bShm;
        void *shmat(int a, void *b, int c);
        void send(float v);
        void initA(void)
        /** SafeFlow Annotation shminit */
        {
            aShm = (A *) shmat(1, 0, 0);
            /** SafeFlow Annotation
                assume(shmvar(aShm, sizeof(A)))
                assume(noncore(aShm))
            */
        }
        void initB(void)
        /** SafeFlow Annotation shminit */
        {
            bShm = (B *) shmat(2, 0, 0);
            /** SafeFlow Annotation assume(shmvar(bShm, sizeof(B))) */
        }
        int main() {
            float out;
            initA();
            initB();
            out = aShm->v;            /* noncore: warns */
            out = out + bShm->m;      /* core region: clean */
            /** SafeFlow Annotation assert(safe(out)) */
            send(out);
            return 0;
        }
    "#;
    for (engine, result) in analyze_both(src) {
        assert_eq!(result.report.regions.len(), 2, "{engine:?}");
        assert_eq!(result.report.warnings.len(), 1, "{engine:?}:\n{}", result.render());
        assert!(
            result.report.errors.iter().any(|e| e.critical == "out"),
            "{engine:?}:\n{}",
            result.render()
        );
    }
}

/// Taint through a chain of compound assignments and arithmetic survives.
#[test]
fn taint_through_arithmetic_chain() {
    let src = r#"
        typedef struct { float v; } Blk;
        Blk *reg;
        void *shmat(int a, void *b, int c);
        void send(float v);
        void init(void)
        /** SafeFlow Annotation shminit */
        {
            reg = (Blk *) shmat(0, 0, 0);
            /** SafeFlow Annotation
                assume(shmvar(reg, sizeof(Blk)))
                assume(noncore(reg))
            */
        }
        int main() {
            float a;
            float b;
            float out;
            init();
            a = reg->v;
            a *= 2.0;
            b = a - 1.0;
            b /= 3.0;
            out = (b > 0.0 ? b : 0.0 - b) + 1.0;
            /** SafeFlow Annotation assert(safe(out)) */
            send(out);
            return 0;
        }
    "#;
    for (engine, result) in analyze_both(src) {
        assert!(
            result
                .report
                .errors
                .iter()
                .any(|e| e.critical == "out" && e.kind == DependencyKind::Data),
            "{engine:?}: taint survives arithmetic:\n{}",
            result.render()
        );
    }
}
