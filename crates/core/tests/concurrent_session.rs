//! Concurrent use of [`AnalysisSession`]s (ISSUE 7): the serialization
//! contract the `safeflow serve` daemon leans on.
//!
//! A session is `&mut self`-only, so concurrent users share it behind a
//! mutex. These tests pin down what that buys:
//!
//! * checks from many threads serialize — every outcome is byte-identical
//!   to the single-threaded reference, and the store ends in a state a
//!   fresh session replays from (no interleaved/torn writes);
//! * two live sessions on one store directory never race: the second
//!   opener sees the writer lock, detaches, and degrades to cold runs
//!   (reported via the `store.lock_busy` work metric) instead of
//!   corrupting or replaying the owner's state.

use safeflow::{AnalysisConfig, AnalysisSession, Engine, SessionRun};
use safeflow_syntax::VirtualFs;
use std::path::PathBuf;
use std::sync::{Arc, Barrier, Mutex};

fn store_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("safeflow-concurrent-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> AnalysisConfig {
    AnalysisConfig::with_engine(Engine::Summary).normalized()
}

/// Two distinct programs the threads alternate between (distinct manifest
/// keys, shared store).
fn program(variant: usize) -> (String, VirtualFs) {
    let src = format!("// variant {variant}\n{}", safeflow_corpus::figure2_example());
    let mut fs = VirtualFs::new();
    fs.add("prog.c", src);
    ("prog.c".to_string(), fs)
}

#[test]
fn concurrent_checks_serialize_and_never_tear_the_store() {
    let dir = store_dir("barrier");
    // Single-threaded reference outputs, one per variant.
    let reference: Vec<String> = (0..2)
        .map(|v| {
            let mut s = AnalysisSession::new(config());
            let (root, fs) = program(v);
            s.check(&root, &fs).unwrap().rendered
        })
        .collect();

    let session = Arc::new(Mutex::new(AnalysisSession::with_store(config(), &dir).unwrap()));
    let threads = 4;
    let rounds = 3;
    // All threads release at once, every round, to maximize contention on
    // the session mutex deterministically.
    let barrier = Arc::new(Barrier::new(threads));

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let session = Arc::clone(&session);
            let barrier = Arc::clone(&barrier);
            let reference = reference.clone();
            std::thread::spawn(move || {
                for r in 0..rounds {
                    barrier.wait();
                    let variant = (t + r) % 2;
                    let (root, fs) = program(variant);
                    let outcome =
                        session.lock().unwrap().check(&root, &fs).expect("check succeeds");
                    assert_eq!(
                        outcome.rendered, reference[variant],
                        "thread {t} round {r}: interleaved state leaked into a report"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no thread may panic");
    }
    drop(session); // release the store lock

    // The store survived the contention in a replayable state: a fresh
    // session replays both variants without analyzing anything.
    let mut fresh = AnalysisSession::with_store(config(), &dir).unwrap();
    for (v, expected) in reference.iter().enumerate() {
        let (root, fs) = program(v);
        let outcome = fresh.check(&root, &fs).unwrap();
        assert_eq!(outcome.run, SessionRun::Replayed, "variant {v} must replay");
        assert_eq!(&outcome.rendered, expected);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_session_on_a_locked_store_degrades_to_cold() {
    let dir = store_dir("locked");
    let (root, fs) = program(0);

    // The owner (think: resident daemon) analyzes and holds the lock.
    let mut owner = AnalysisSession::with_store(config(), &dir).unwrap();
    assert!(!owner.store_lock_busy());
    let owned = owner.check(&root, &fs).unwrap();
    assert_eq!(owned.run, SessionRun::Analyzed);

    // A racing CLI `check --store` on the same directory: detached, cold,
    // correct.
    let mut racer = AnalysisSession::with_store(config(), &dir).unwrap();
    assert!(racer.store_lock_busy(), "second opener must see the writer lock");
    let raced = racer.check(&root, &fs).unwrap();
    assert_eq!(raced.run, SessionRun::Analyzed, "lock-busy store must not replay");
    assert_eq!(raced.rendered, owned.rendered, "cold run still answers correctly");
    assert_eq!(
        raced.metrics.work.get("store.lock_busy").copied(),
        Some(1),
        "the degradation must be observable"
    );

    // The racer persisted nothing; the owner's state is intact and warm.
    drop(racer);
    drop(owner);
    let mut fresh = AnalysisSession::with_store(config(), &dir).unwrap();
    assert!(!fresh.store_lock_busy());
    let replay = fresh.check(&root, &fs).unwrap();
    assert_eq!(replay.run, SessionRun::Replayed);
    assert_eq!(replay.rendered, owned.rendered);
    let _ = std::fs::remove_dir_all(&dir);
}
