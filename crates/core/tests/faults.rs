//! Fault-injection suite (ISSUE 2): degraded runs must be deterministic,
//! canonically ordered, and *strictly more conservative* than clean runs.
//!
//! The [`safeflow::FaultPlan`] hooks let these tests inject panics and
//! budget exhaustion at stable sites (SCC tasks, the Omega solver, the
//! summary cache) and then assert the degradation contract:
//!
//! * a contained panic never aborts the run and never changes with the
//!   worker count — rendered reports are byte-identical at `--jobs 1/4/8`;
//! * no injected fault drops a clean-run finding (monotone conservatism):
//!   every clean warning/error/violation either survives into the degraded
//!   report or its function is named by a degradation entry;
//! * poisoned summary-cache entries are never replayed — a clean run after
//!   a degraded run reproduces the original clean report exactly.
//!
//! Degraded-report *content* is pinned by golden snapshots under
//! `tests/golden/degraded_*.txt` (regenerate with `UPDATE_GOLDEN=1`).

use safeflow::{
    AnalysisConfig, Analyzer, Budget, DegradationKind, Engine, FaultKind, FaultPlan, FaultSite,
};
use safeflow_corpus::{figure2_example, systems};
use safeflow_util::prop::run_cases;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Every corpus program: (name, file, source).
fn corpus() -> Vec<(String, String, String)> {
    let mut programs: Vec<(String, String, String)> = systems()
        .into_iter()
        .map(|s| (s.name.to_string(), s.core_file.to_string(), s.core_source.to_string()))
        .collect();
    programs.push(("fig2".to_string(), "figure2.c".to_string(), figure2_example().to_string()));
    programs
}

fn render_with(config: &AnalysisConfig, file: &str, src: &str) -> (String, u8) {
    let result = Analyzer::new(config.clone())
        .analyze_source(file, src)
        .unwrap_or_else(|e| panic!("{file} must analyze: {e}"));
    (result.render(), result.report.exit_code())
}

// ---------------------------------------------------------------------------
// Determinism of degraded runs
// ---------------------------------------------------------------------------

#[test]
fn contained_panic_is_deterministic_across_thread_counts() {
    // Panic in *every* SCC task: the worst case for scheduling-dependent
    // output, since all containment paths fire at once.
    let plan = FaultPlan::new().with_fault(FaultSite::SccAnalysis, None, FaultKind::Panic);
    for (name, file, src) in corpus() {
        let base = AnalysisConfig::with_engine(Engine::Summary).with_fault_plan(plan.clone());
        let (want, code) = render_with(&base.clone().with_jobs(1), &file, &src);
        assert_eq!(code, 3, "{name}: contained panic must exit 3");
        assert!(want.contains("DEGRADED RUN"), "{name}:\n{want}");
        for jobs in [4usize, 8] {
            let (got, got_code) = render_with(&base.clone().with_jobs(jobs), &file, &src);
            assert_eq!(got_code, 3, "{name} at --jobs {jobs}");
            assert_eq!(
                got, want,
                "{name}: degraded report differs between --jobs 1 and --jobs {jobs}"
            );
        }
    }
}

#[test]
fn seeded_fault_plans_are_deterministic_across_thread_counts() {
    for seed in [1u64, 7, 42] {
        let plan = FaultPlan::seeded(seed, 0.4);
        for (name, file, src) in corpus() {
            let base = AnalysisConfig::with_engine(Engine::Summary).with_fault_plan(plan.clone());
            let (want, _) = render_with(&base.clone().with_jobs(1), &file, &src);
            let (got, _) = render_with(&base.clone().with_jobs(8), &file, &src);
            assert_eq!(got, want, "{name} seed {seed}: --jobs 1 vs --jobs 8");
        }
    }
}

// ---------------------------------------------------------------------------
// Budget exhaustion
// ---------------------------------------------------------------------------

#[test]
fn tiny_fixpoint_budget_degrades_with_exit_4() {
    let budget = Budget { fixpoint_rounds: Some(1), ..Budget::unlimited() };
    for engine in [Engine::ContextSensitive, Engine::Summary] {
        let config = AnalysisConfig::with_engine(engine).with_budget(budget.clone());
        let result = Analyzer::new(config)
            .analyze_source("figure2.c", figure2_example())
            .expect("fig2 analyzes");
        let report = &result.report;
        assert!(!report.degradations.is_empty(), "{engine:?}: 1 round cannot converge");
        assert!(
            report.degradations.iter().all(|d| d.kind == DegradationKind::BudgetExhausted),
            "{engine:?}: budget exhaustion must not masquerade as an internal error"
        );
        assert_eq!(report.exit_code(), 4, "{engine:?}");
    }
}

#[test]
fn injected_solver_exhaustion_marks_bounds_unproven() {
    // Exhaust the solver step pool everywhere: A1 obligations degrade to
    // "unproven" violations instead of silently passing.
    let plan = FaultPlan::new().with_fault(FaultSite::Solver, None, FaultKind::BudgetExhaustion);
    for (name, file, src) in corpus() {
        let clean = AnalysisConfig::default();
        let faulty = clean.clone().with_fault_plan(plan.clone());
        let clean_report =
            Analyzer::new(clean).analyze_source(&file, &src).expect("analyzes").report;
        let faulty_report =
            Analyzer::new(faulty).analyze_source(&file, &src).expect("analyzes").report;
        assert!(
            faulty_report.violations.len() >= clean_report.violations.len(),
            "{name}: exhausted solver must never prove more than the clean run"
        );
    }
}

#[test]
fn unlimited_budget_reproduces_clean_report() {
    // `Budget::unlimited()` must be behaviorally identical to no budget at
    // all — the built-in bounds are unchanged.
    for engine in [Engine::ContextSensitive, Engine::Summary] {
        let plain = AnalysisConfig::with_engine(engine);
        let budgeted = plain.clone().with_budget(Budget::unlimited());
        let (a, code_a) = render_with(&plain, "figure2.c", figure2_example());
        let (b, code_b) = render_with(&budgeted, "figure2.c", figure2_example());
        assert_eq!(a, b);
        assert_eq!(code_a, code_b);
    }
}

// ---------------------------------------------------------------------------
// Cache poisoning
// ---------------------------------------------------------------------------

#[test]
fn poisoned_cache_entries_are_never_reused() {
    let fig2 = figure2_example();
    let config = AnalysisConfig::with_engine(Engine::Summary);
    let mut analyzer = Analyzer::new(config);

    // 1. Clean run, cold cache.
    let clean = analyzer.analyze_source("figure2.c", fig2).expect("analyzes").render();

    // 2. Degraded run against the warm cache: every SCC that computes a
    //    summary is forbidden from caching it, and SCC 0's task panics.
    *analyzer.config_mut() = analyzer.config().clone().with_fault_plan(
        FaultPlan::panic_at(FaultSite::SccAnalysis, 0).with_fault(
            FaultSite::SummaryCache,
            None,
            FaultKind::Panic,
        ),
    );
    let degraded = analyzer.analyze_source("figure2.c", fig2).expect("analyzes");
    assert_eq!(degraded.report.exit_code(), 3);
    assert!(degraded.render().contains("DEGRADED RUN"));

    // 3. Disarm the plan: the next run must reproduce the clean report
    //    byte-for-byte. If a top/poisoned summary had leaked into the
    //    cache, findings would change here.
    analyzer.config_mut().fault_plan = None;
    let replay = analyzer.analyze_source("figure2.c", fig2).expect("analyzes").render();
    assert_eq!(replay, clean, "a degraded run must not poison the summary cache");

    // 4. And a degraded run repeated against the (clean) warm cache must
    //    match the cold degraded run: cache hits for tainted dependents
    //    are forced to recompute, not replayed.
    *analyzer.config_mut() =
        analyzer.config().clone().with_fault_plan(FaultPlan::panic_at(FaultSite::SccAnalysis, 0));
    let warm = analyzer.analyze_source("figure2.c", fig2).expect("analyzes").render();
    let cold = Analyzer::new(analyzer.config().clone())
        .analyze_source("figure2.c", fig2)
        .expect("analyzes")
        .render();
    assert_eq!(warm, cold, "warm-cache and cold-cache degraded runs must agree");
}

// ---------------------------------------------------------------------------
// Monotone conservatism
// ---------------------------------------------------------------------------

/// Keys identifying a finding independent of flow details.
fn warning_keys(r: &safeflow::AnalysisReport) -> BTreeSet<String> {
    r.warnings.iter().map(|w| format!("{}|{}|{:?}", w.function, w.region_name, w.span)).collect()
}

fn error_keys(r: &safeflow::AnalysisReport) -> BTreeSet<String> {
    r.errors.iter().map(|e| format!("{}|{}|{:?}", e.function, e.critical, e.span)).collect()
}

fn violation_keys(r: &safeflow::AnalysisReport) -> BTreeSet<String> {
    r.violations
        .iter()
        .map(|v| format!("{:?}|{}|{:?}", v.restriction, v.function, v.span))
        .collect()
}

fn degraded_functions(r: &safeflow::AnalysisReport) -> BTreeSet<String> {
    r.degradations.iter().flat_map(|d| d.functions.iter().cloned()).collect()
}

/// Every clean finding must survive into the degraded report, or at the
/// very least its function must be named by a degradation entry (so the
/// reader knows coverage was lost *there*, never silently).
fn assert_monotone(
    name: &str,
    what: &str,
    clean: &BTreeSet<String>,
    degraded: &BTreeSet<String>,
    excused: &BTreeSet<String>,
) {
    for key in clean {
        if degraded.contains(key) {
            continue;
        }
        let function = key.split('|').next().unwrap_or_default();
        assert!(
            excused.contains(function),
            "{name}: clean-run {what} `{key}` vanished from the degraded report \
             and its function is not covered by any degradation entry"
        );
    }
}

#[test]
fn no_injected_fault_drops_a_clean_finding() {
    let programs = corpus();
    let clean_reports: Vec<_> = programs
        .iter()
        .map(|(_, file, src)| {
            Analyzer::new(AnalysisConfig::with_engine(Engine::Summary))
                .analyze_source(file, src)
                .expect("analyzes")
                .report
        })
        .collect();

    run_cases(24, |gen| {
        let seed = gen.i64(0, i64::MAX) as u64;
        let rate = gen.f64(0.05, 0.6);
        let plan = FaultPlan::seeded(seed, rate);
        for ((name, file, src), clean) in programs.iter().zip(&clean_reports) {
            let config = AnalysisConfig::with_engine(Engine::Summary)
                .with_fault_plan(plan.clone())
                .with_jobs(4);
            let degraded =
                Analyzer::new(config).analyze_source(file, src).expect("analyzes").report;
            let excused = degraded_functions(&degraded);
            assert_monotone(
                name,
                "warning",
                &warning_keys(clean),
                &warning_keys(&degraded),
                &excused,
            );
            assert_monotone(name, "error", &error_keys(clean), &error_keys(&degraded), &excused);
            assert_monotone(
                name,
                "violation",
                &violation_keys(clean),
                &violation_keys(&degraded),
                &excused,
            );
        }
    });
}

#[test]
fn context_engine_budget_degradation_is_monotone() {
    // The context-sensitive engine has no SCC tasks, but its fixpoint
    // budget must obey the same contract.
    let budget = Budget { fixpoint_rounds: Some(1), ..Budget::unlimited() };
    for (name, file, src) in corpus() {
        let clean = Analyzer::new(AnalysisConfig::default())
            .analyze_source(&file, &src)
            .expect("analyzes")
            .report;
        let degraded = Analyzer::new(AnalysisConfig::default().with_budget(budget.clone()))
            .analyze_source(&file, &src)
            .expect("analyzes")
            .report;
        let excused = degraded_functions(&degraded);
        assert_monotone(
            &name,
            "warning",
            &warning_keys(&clean),
            &warning_keys(&degraded),
            &excused,
        );
        assert_monotone(&name, "error", &error_keys(&clean), &error_keys(&degraded), &excused);
    }
}

// ---------------------------------------------------------------------------
// Canonical order
// ---------------------------------------------------------------------------

#[test]
fn degradation_entries_are_canonically_ordered() {
    let plan = FaultPlan::seeded(9, 0.5);
    for (name, file, src) in corpus() {
        let config =
            AnalysisConfig::with_engine(Engine::Summary).with_fault_plan(plan.clone()).with_jobs(8);
        let report = Analyzer::new(config).analyze_source(&file, &src).expect("analyzes").report;
        let mut sorted = report.degradations.clone();
        sorted.sort_by(|a, b| {
            a.kind
                .cmp(&b.kind)
                .then_with(|| a.functions.cmp(&b.functions))
                .then_with(|| a.detail.cmp(&b.detail))
        });
        assert_eq!(report.degradations, sorted, "{name}: degradations out of canonical order");
        for d in &report.degradations {
            let mut fns = d.functions.clone();
            fns.sort();
            fns.dedup();
            assert_eq!(d.functions, fns, "{name}: degradation functions must be sorted/deduped");
        }
    }
}

// ---------------------------------------------------------------------------
// Golden degraded snapshots
// ---------------------------------------------------------------------------

fn check_degraded_golden(name: &str, config: &AnalysisConfig) {
    let got = Analyzer::new(config.clone())
        .analyze_source("figure2.c", figure2_example())
        .expect("fig2 analyzes")
        .render();
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.txt"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test -p safeflow --test faults",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "degraded report `{name}` differs from {}; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test -p safeflow --test faults",
        path.display()
    );
}

#[test]
fn golden_degraded_scc_panic() {
    check_degraded_golden(
        "degraded_scc_panic",
        &AnalysisConfig::with_engine(Engine::Summary)
            .with_fault_plan(FaultPlan::panic_at(FaultSite::SccAnalysis, 0))
            .with_jobs(4),
    );
}

#[test]
fn golden_degraded_tiny_solver_budget() {
    check_degraded_golden(
        "degraded_tiny_solver_budget",
        &AnalysisConfig::with_engine(Engine::Summary)
            .with_budget(Budget { solver_steps: Some(1), ..Budget::unlimited() }),
    );
}
