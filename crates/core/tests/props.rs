//! Property-based tests on the analysis invariants.
//!
//! The load-bearing property is the paper's §3.3 claim about warnings:
//! "A warning is reported for each unsafe access to shared memory, without
//! any false positives or false negatives." We generate random programs
//! with a *known* set of unmonitored non-core reads and check the analyzer
//! reports exactly those sites — under both engines.
//!
//! The summary cache rides the same generator: a cache-warm re-analysis
//! must reproduce the cold report byte-for-byte with zero re-summarizations.

use safeflow::{AnalysisConfig, Analyzer, Engine};
use safeflow_util::prop::{run_cases, Gen};

/// Shape of one generated access function.
#[derive(Debug, Clone)]
struct AccessFn {
    /// Which region (0..regions) it reads.
    region: usize,
    /// Whether the function carries an assume(core(...)) for that region.
    monitored: bool,
    /// Number of reads of the region inside the function.
    reads: usize,
    /// Whether the read value flows to the function's return value.
    returns_it: bool,
}

/// A generated program specification.
#[derive(Debug, Clone)]
struct ProgramSpec {
    regions: usize,
    /// Which regions are noncore.
    noncore: Vec<bool>,
    fns: Vec<AccessFn>,
    /// Whether main asserts the combined return values.
    asserts: bool,
}

fn gen_spec(g: &mut Gen) -> ProgramSpec {
    let regions = g.usize(1, 4);
    let noncore = (0..regions).map(|_| g.bool()).collect();
    let fns = g.vec_of(1, 5, |g| AccessFn {
        region: g.usize(0, regions),
        monitored: g.bool(),
        reads: g.usize(1, 3),
        returns_it: g.bool(),
    });
    ProgramSpec { regions, noncore, fns, asserts: g.bool() }
}

fn render_program(spec: &ProgramSpec) -> String {
    let mut out = String::new();
    out.push_str("typedef struct Blk { float v; int seq; } Blk;\n");
    for r in 0..spec.regions {
        out.push_str(&format!("Blk *reg{r};\n"));
    }
    out.push_str("int shmget(int key, int size, int flags);\n");
    out.push_str("void *shmat(int shmid, void *addr, int flags);\n");
    out.push_str("void sink(float v);\n\n");

    out.push_str("void initShm(void)\n/** SafeFlow Annotation shminit */\n{\n");
    out.push_str("    char *cursor;\n");
    out.push_str(&format!(
        "    cursor = (char *) shmat(shmget(1, {} * sizeof(Blk), 0), 0, 0);\n",
        spec.regions
    ));
    for r in 0..spec.regions {
        out.push_str(&format!(
            "    reg{r} = (Blk *) cursor;\n    cursor = cursor + sizeof(Blk);\n"
        ));
    }
    out.push_str("    /** SafeFlow Annotation\n");
    for r in 0..spec.regions {
        out.push_str(&format!("        assume(shmvar(reg{r}, sizeof(Blk)))\n"));
    }
    for (r, &nc) in spec.noncore.iter().enumerate() {
        if nc {
            out.push_str(&format!("        assume(noncore(reg{r}))\n"));
        }
    }
    out.push_str("    */\n}\n\n");

    for (i, f) in spec.fns.iter().enumerate() {
        out.push_str(&format!("float access{i}(void)\n"));
        if f.monitored {
            out.push_str(&format!(
                "/** SafeFlow Annotation assume(core(reg{}, 0, sizeof(Blk))) */\n",
                f.region
            ));
        }
        out.push_str("{\n    float acc;\n    acc = 0.0;\n");
        for _ in 0..f.reads {
            out.push_str(&format!("    acc = acc + reg{}->v;\n", f.region));
        }
        if f.returns_it {
            out.push_str("    return acc;\n}\n\n");
        } else {
            out.push_str("    sink(acc);\n    return 1.0;\n}\n\n");
        }
    }

    out.push_str("int main() {\n    float total;\n    initShm();\n    total = 0.0;\n");
    for i in 0..spec.fns.len() {
        out.push_str(&format!("    total = total + access{i}();\n"));
    }
    if spec.asserts {
        out.push_str("    /** SafeFlow Annotation assert(safe(total)) */\n");
    }
    out.push_str("    sink(total);\n    return 0;\n}\n");
    out
}

/// Ground truth: expected warning count = reads in functions that read a
/// noncore region without monitoring it.
fn expected_warnings(spec: &ProgramSpec) -> usize {
    spec.fns.iter().filter(|f| spec.noncore[f.region] && !f.monitored).map(|f| f.reads).sum()
}

/// Ground truth: the assert errs iff some unmonitored noncore read flows
/// into `total` — i.e., some unmonitored access function *returns* the
/// value (or taints memory that main reads — our generator doesn't).
fn expect_assert_error(spec: &ProgramSpec) -> bool {
    spec.asserts && spec.fns.iter().any(|f| spec.noncore[f.region] && !f.monitored && f.returns_it)
}

/// Warnings are exact: no false positives, no false negatives (§3.3).
#[test]
fn warnings_are_exact() {
    run_cases(64, |g| {
        let spec = gen_spec(g);
        let src = render_program(&spec);
        for engine in [Engine::ContextSensitive, Engine::Summary] {
            let result = Analyzer::new(AnalysisConfig::with_engine(engine))
                .analyze_source("gen.c", &src)
                .expect("generated program analyzes");
            assert_eq!(
                result.report.warnings.len(),
                expected_warnings(&spec),
                "{:?} on:\n{}\nreport:\n{}",
                engine,
                src,
                result.render()
            );
        }
    });
}

/// The assert errs exactly when an unmonitored noncore value flows to it.
#[test]
fn assert_errors_match_ground_truth() {
    run_cases(64, |g| {
        let spec = gen_spec(g);
        let src = render_program(&spec);
        for engine in [Engine::ContextSensitive, Engine::Summary] {
            let result = Analyzer::new(AnalysisConfig::with_engine(engine))
                .analyze_source("gen.c", &src)
                .expect("generated program analyzes");
            let has_total_error = result.report.errors.iter().any(|e| e.critical == "total");
            assert_eq!(
                has_total_error,
                expect_assert_error(&spec),
                "{:?} on:\n{}\nreport:\n{}",
                engine,
                src,
                result.render()
            );
        }
    });
}

/// Both engines always agree on counts for this program family.
#[test]
fn engines_agree() {
    run_cases(64, |g| {
        let spec = gen_spec(g);
        let src = render_program(&spec);
        let cs = Analyzer::new(AnalysisConfig::with_engine(Engine::ContextSensitive))
            .analyze_source("gen.c", &src)
            .expect("cs");
        let sm = Analyzer::new(AnalysisConfig::with_engine(Engine::Summary))
            .analyze_source("gen.c", &src)
            .expect("sm");
        assert_eq!(cs.report.warnings.len(), sm.report.warnings.len());
        assert_eq!(cs.report.errors.len(), sm.report.errors.len());
        assert_eq!(cs.report.violations.len(), sm.report.violations.len());
    });
}

/// Fully monitored programs are clean regardless of shape.
#[test]
fn fully_monitored_programs_are_clean() {
    run_cases(64, |g| {
        let mut spec = gen_spec(g);
        for f in &mut spec.fns {
            f.monitored = true;
        }
        let src = render_program(&spec);
        let result = Analyzer::new(AnalysisConfig::default())
            .analyze_source("gen.c", &src)
            .expect("analyzes");
        assert!(result.report.warnings.is_empty(), "{}", result.render());
        assert!(result.report.errors.is_empty(), "{}", result.render());
    });
}

/// Cache-warm re-analysis reproduces the cold report byte-for-byte and
/// re-summarizes nothing: the second run over the same module must be all
/// cache hits, zero misses, at any thread count.
#[test]
fn cache_warm_reanalysis_is_identical_and_free() {
    run_cases(48, |g| {
        let spec = gen_spec(g);
        let src = render_program(&spec);
        for jobs in [1, 4] {
            let analyzer =
                Analyzer::new(AnalysisConfig::with_engine(Engine::Summary).with_jobs(jobs));
            let cold = analyzer.analyze_source("gen.c", &src).expect("cold analyzes");
            let stats_cold = analyzer.cache_stats();
            assert_eq!(stats_cold.hits, 0, "first run over an empty cache has no hits");
            assert!(stats_cold.misses > 0, "cold run must summarize something");

            let warm = analyzer.analyze_source("gen.c", &src).expect("warm analyzes");
            let stats_warm = analyzer.cache_stats();
            assert_eq!(
                stats_warm.misses, stats_cold.misses,
                "warm run re-summarized a function (jobs = {jobs}) on:\n{src}"
            );
            assert_eq!(
                stats_warm.hits, stats_cold.misses,
                "warm run must hit once per summarized function (jobs = {jobs})"
            );
            assert_eq!(
                cold.render(),
                warm.render(),
                "cache-warm report differs (jobs = {jobs}) on:\n{src}"
            );
        }
    });
}

/// A warm cache is also a *correct* cache: the warm report still matches
/// the ground truth the generator knows.
#[test]
fn cache_warm_report_matches_ground_truth() {
    run_cases(48, |g| {
        let spec = gen_spec(g);
        let src = render_program(&spec);
        let analyzer = Analyzer::new(AnalysisConfig::with_engine(Engine::Summary));
        let _ = analyzer.analyze_source("gen.c", &src).expect("cold");
        let warm = analyzer.analyze_source("gen.c", &src).expect("warm");
        assert_eq!(warm.report.warnings.len(), expected_warnings(&spec), "{}", warm.render());
        let has_total_error = warm.report.errors.iter().any(|e| e.critical == "total");
        assert_eq!(has_total_error, expect_assert_error(&spec), "{}", warm.render());
    });
}

/// Editing one function invalidates exactly its own summary and its
/// (transitive) callers' — the Merkle chain — while unrelated functions
/// replay from the cache.
#[test]
fn cache_invalidation_is_limited_to_the_mutated_chain() {
    let base = r#"
        int leaf(int x) { return x + 1; }
        int mid(int x) { return leaf(x) * 2; }
        int other(int x) { return x - 3; }
        int main() { return mid(4) + other(5); }
    "#;
    let analyzer = Analyzer::new(AnalysisConfig::with_engine(Engine::Summary));
    analyzer.analyze_source("t.c", base).expect("base analyzes");
    let cold = analyzer.cache_stats();
    assert_eq!(cold.hits, 0);
    assert_eq!(cold.misses, 4, "four functions summarized cold");

    // Mutate a constant inside `leaf` (same byte length, so spans of the
    // other functions are untouched): `leaf`, `mid`, `main` must be
    // re-summarized; `other` must replay from the cache.
    let edited = base.replace("x + 1", "x + 7");
    assert_ne!(base, edited);
    analyzer.analyze_source("t.c", &edited).expect("edited analyzes");
    let warm = analyzer.cache_stats();
    assert_eq!(warm.hits - cold.hits, 1, "`other` alone should hit");
    assert_eq!(
        warm.misses - cold.misses,
        3,
        "`leaf` and its caller chain (`mid`, `main`) should miss"
    );

    // Re-analyzing the edited program again is now fully warm.
    analyzer.analyze_source("t.c", &edited).expect("re-analyzes");
    let warm2 = analyzer.cache_stats();
    assert_eq!(warm2.misses, warm.misses);
    assert_eq!(warm2.hits - warm.hits, 4);
}
