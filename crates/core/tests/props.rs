//! Property-based tests on the analysis invariants.
//!
//! The load-bearing property is the paper's §3.3 claim about warnings:
//! "A warning is reported for each unsafe access to shared memory, without
//! any false positives or false negatives." We generate random programs
//! with a *known* set of unmonitored non-core reads and check the analyzer
//! reports exactly those sites — under both engines.

use proptest::prelude::*;
use safeflow::{AnalysisConfig, Analyzer, Engine};

/// Shape of one generated access function.
#[derive(Debug, Clone)]
struct AccessFn {
    /// Which region (0..regions) it reads.
    region: usize,
    /// Whether the function carries an assume(core(...)) for that region.
    monitored: bool,
    /// Number of reads of the region inside the function.
    reads: usize,
    /// Whether the read value flows to the function's return value.
    returns_it: bool,
}

/// A generated program specification.
#[derive(Debug, Clone)]
struct ProgramSpec {
    regions: usize,
    /// Which regions are noncore.
    noncore: Vec<bool>,
    fns: Vec<AccessFn>,
    /// Whether main asserts the combined return values.
    asserts: bool,
}

fn spec_strategy() -> impl Strategy<Value = ProgramSpec> {
    (1usize..4)
        .prop_flat_map(|regions| {
            (
                Just(regions),
                prop::collection::vec(prop::bool::ANY, regions),
                prop::collection::vec(
                    (0..regions, prop::bool::ANY, 1usize..3, prop::bool::ANY).prop_map(
                        |(region, monitored, reads, returns_it)| AccessFn {
                            region,
                            monitored,
                            reads,
                            returns_it,
                        },
                    ),
                    1..5,
                ),
                prop::bool::ANY,
            )
        })
        .prop_map(|(regions, noncore, fns, asserts)| ProgramSpec { regions, noncore, fns, asserts })
}

fn render_program(spec: &ProgramSpec) -> String {
    let mut out = String::new();
    out.push_str("typedef struct Blk { float v; int seq; } Blk;\n");
    for r in 0..spec.regions {
        out.push_str(&format!("Blk *reg{r};\n"));
    }
    out.push_str("int shmget(int key, int size, int flags);\n");
    out.push_str("void *shmat(int shmid, void *addr, int flags);\n");
    out.push_str("void sink(float v);\n\n");

    out.push_str("void initShm(void)\n/** SafeFlow Annotation shminit */\n{\n");
    out.push_str("    char *cursor;\n");
    out.push_str(&format!(
        "    cursor = (char *) shmat(shmget(1, {} * sizeof(Blk), 0), 0, 0);\n",
        spec.regions
    ));
    for r in 0..spec.regions {
        out.push_str(&format!("    reg{r} = (Blk *) cursor;\n    cursor = cursor + sizeof(Blk);\n"));
    }
    out.push_str("    /** SafeFlow Annotation\n");
    for r in 0..spec.regions {
        out.push_str(&format!("        assume(shmvar(reg{r}, sizeof(Blk)))\n"));
    }
    for (r, &nc) in spec.noncore.iter().enumerate() {
        if nc {
            out.push_str(&format!("        assume(noncore(reg{r}))\n"));
        }
    }
    out.push_str("    */\n}\n\n");

    for (i, f) in spec.fns.iter().enumerate() {
        out.push_str(&format!("float access{i}(void)\n"));
        if f.monitored {
            out.push_str(&format!(
                "/** SafeFlow Annotation assume(core(reg{}, 0, sizeof(Blk))) */\n",
                f.region
            ));
        }
        out.push_str("{\n    float acc;\n    acc = 0.0;\n");
        for _ in 0..f.reads {
            out.push_str(&format!("    acc = acc + reg{}->v;\n", f.region));
        }
        if f.returns_it {
            out.push_str("    return acc;\n}\n\n");
        } else {
            out.push_str("    sink(acc);\n    return 1.0;\n}\n\n");
        }
    }

    out.push_str("int main() {\n    float total;\n    initShm();\n    total = 0.0;\n");
    for i in 0..spec.fns.len() {
        out.push_str(&format!("    total = total + access{i}();\n"));
    }
    if spec.asserts {
        out.push_str("    /** SafeFlow Annotation assert(safe(total)) */\n");
    }
    out.push_str("    sink(total);\n    return 0;\n}\n");
    out
}

/// Ground truth: expected warning count = reads in functions that read a
/// noncore region without monitoring it.
fn expected_warnings(spec: &ProgramSpec) -> usize {
    spec.fns
        .iter()
        .filter(|f| spec.noncore[f.region] && !f.monitored)
        .map(|f| f.reads)
        .sum()
}

/// Ground truth: the assert errs iff some unmonitored noncore read flows
/// into `total` — i.e., some unmonitored access function *returns* the
/// value (or taints memory that main reads — our generator doesn't).
fn expect_assert_error(spec: &ProgramSpec) -> bool {
    spec.asserts
        && spec
            .fns
            .iter()
            .any(|f| spec.noncore[f.region] && !f.monitored && f.returns_it)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Warnings are exact: no false positives, no false negatives (§3.3).
    #[test]
    fn warnings_are_exact(spec in spec_strategy()) {
        let src = render_program(&spec);
        for engine in [Engine::ContextSensitive, Engine::Summary] {
            let result = Analyzer::new(AnalysisConfig::with_engine(engine))
                .analyze_source("gen.c", &src)
                .expect("generated program analyzes");
            prop_assert_eq!(
                result.report.warnings.len(),
                expected_warnings(&spec),
                "{:?} on:\n{}\nreport:\n{}",
                engine,
                src,
                result.render()
            );
        }
    }

    /// The assert errs exactly when an unmonitored noncore value flows to it.
    #[test]
    fn assert_errors_match_ground_truth(spec in spec_strategy()) {
        let src = render_program(&spec);
        for engine in [Engine::ContextSensitive, Engine::Summary] {
            let result = Analyzer::new(AnalysisConfig::with_engine(engine))
                .analyze_source("gen.c", &src)
                .expect("generated program analyzes");
            let has_total_error = result.report.errors.iter().any(|e| e.critical == "total");
            prop_assert_eq!(
                has_total_error,
                expect_assert_error(&spec),
                "{:?} on:\n{}\nreport:\n{}",
                engine,
                src,
                result.render()
            );
        }
    }

    /// Both engines always agree on counts for this program family.
    #[test]
    fn engines_agree(spec in spec_strategy()) {
        let src = render_program(&spec);
        let cs = Analyzer::new(AnalysisConfig::with_engine(Engine::ContextSensitive))
            .analyze_source("gen.c", &src)
            .expect("cs");
        let sm = Analyzer::new(AnalysisConfig::with_engine(Engine::Summary))
            .analyze_source("gen.c", &src)
            .expect("sm");
        prop_assert_eq!(cs.report.warnings.len(), sm.report.warnings.len());
        prop_assert_eq!(cs.report.errors.len(), sm.report.errors.len());
        prop_assert_eq!(cs.report.violations.len(), sm.report.violations.len());
    }

    /// Fully monitored programs are clean regardless of shape.
    #[test]
    fn fully_monitored_programs_are_clean(mut spec in spec_strategy()) {
        for f in &mut spec.fns {
            f.monitored = true;
        }
        let src = render_program(&spec);
        let result = Analyzer::new(AnalysisConfig::default())
            .analyze_source("gen.c", &src)
            .expect("analyzes");
        prop_assert!(result.report.warnings.is_empty(), "{}", result.render());
        prop_assert!(result.report.errors.is_empty(), "{}", result.render());
    }
}
