//! Sharded cross-process analysis (ISSUE 10): byte-identity and failure
//! containment for `check --shards N`'s building blocks.
//!
//! The worker pipeline ([`safeflow::shard::run_worker`]) runs in-process
//! here — it is exactly the code the `shard-worker` subcommand executes,
//! minus the process boundary (which `make shard-smoke` drills with real
//! processes and a SIGKILL). The invariants under test:
//!
//! * sharded output is byte-identical to unsharded output at every
//!   `--jobs` level, cold and warm;
//! * corrupt, truncated, or garbage segment files degrade to recomputation
//!   of the lost entries, never to wrong or missing findings;
//! * workers interleaving concurrently never tear the store;
//! * a worker that never ran (killed, crashed) only costs recomputation;
//! * the final exclusive save compacts dead segments away.

use safeflow::shard::run_worker;
use safeflow::{AnalysisConfig, AnalysisSession, Engine, SessionRun};
use safeflow_corpus::monorepo::{generate_monorepo, MonorepoParams};
use safeflow_syntax::pp::VirtualFs;
use std::path::{Path, PathBuf};

fn store_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("safeflow-shard-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(jobs: usize) -> AnalysisConfig {
    AnalysisConfig::builder().engine(Engine::Summary).jobs(jobs).build_config()
}

fn corpus() -> (String, VirtualFs) {
    let files = generate_monorepo(MonorepoParams::small());
    let root = files[0].0.clone();
    let mut fs = VirtualFs::new();
    for (name, text) in &files {
        fs.add(name.as_str(), text.clone());
    }
    (root, fs)
}

/// The unsharded reference: a storeless session, always a cold analysis.
fn reference_rendered(jobs: usize) -> String {
    let (root, fs) = corpus();
    let mut s = AnalysisSession::new(config(jobs));
    s.check(&root, &fs).expect("reference check succeeds").rendered
}

/// Runs `shards` workers (sequentially) into `dir`, then the coordinator's
/// final session check. Returns (rendered, run kind).
fn sharded_check(dir: &Path, jobs: usize, shards: usize) -> (String, SessionRun) {
    let (root, fs) = corpus();
    for k in 0..shards {
        run_worker(&config(jobs), &root, &fs, dir, k, shards).expect("worker succeeds");
    }
    let mut s = AnalysisSession::with_store(config(jobs), dir).expect("session opens");
    let outcome = s.check(&root, &fs).expect("final check succeeds");
    (outcome.rendered, outcome.run)
}

fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".bin"))
                })
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

#[test]
fn sharded_matches_unsharded_at_every_jobs_level_cold_and_warm() {
    let reference = reference_rendered(1);
    for jobs in [1usize, 2, 8] {
        assert_eq!(reference_rendered(jobs), reference, "unsharded jobs={jobs} must not drift");
        for shards in [2usize, 4] {
            let dir = store_dir(&format!("ident-{jobs}-{shards}"));
            let (cold, run) = sharded_check(&dir, jobs, shards);
            assert_eq!(run, SessionRun::Analyzed);
            assert_eq!(cold, reference, "sharded cold (jobs={jobs}, shards={shards}) diverged");
            // Warm: a fresh session over the saved store replays.
            let (root, fs) = corpus();
            let mut warm = AnalysisSession::with_store(config(jobs), &dir).unwrap();
            let outcome = warm.check(&root, &fs).unwrap();
            assert_eq!(outcome.run, SessionRun::Replayed);
            assert_eq!(
                outcome.rendered, reference,
                "sharded warm (jobs={jobs}, shards={shards}) diverged"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn corrupt_and_garbage_segments_degrade_to_recomputation() {
    let reference = reference_rendered(1);
    let dir = store_dir("corrupt");
    let (root, fs) = corpus();
    for k in 0..3 {
        run_worker(&config(1), &root, &fs, &dir, k, 3).expect("worker succeeds");
    }
    let segs = segment_files(&dir);
    assert!(!segs.is_empty(), "workers must have published segments");
    // Flip a byte deep in the first segment's record area (past the
    // 12-byte header): its checksum no longer matches, killing that record
    // and everything after it in the file.
    let mut bytes = std::fs::read(&segs[0]).unwrap();
    if bytes.len() > 40 {
        bytes[40] ^= 0xFF;
        std::fs::write(&segs[0], &bytes).unwrap();
    }
    // A garbage file wearing the segment naming scheme.
    std::fs::write(dir.join("seg-99999-0.bin"), b"not a segment at all").unwrap();
    // Another valid segment truncated mid-record (a SIGKILLed writer).
    if let Some(victim) = segs.get(1) {
        let bytes = std::fs::read(victim).unwrap();
        std::fs::write(victim, &bytes[..bytes.len().saturating_sub(5)]).unwrap();
    }

    let mut s = AnalysisSession::with_store(config(1), &dir).unwrap();
    let outcome = s.check(&root, &fs).unwrap();
    assert_eq!(outcome.run, SessionRun::Analyzed);
    assert_eq!(outcome.rendered, reference, "corrupt segments must only cost recomputation");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_workers_never_tear_the_store() {
    let reference = reference_rendered(2);
    let dir = store_dir("race");
    let (root, fs) = corpus();
    let shards = 4;
    // All workers run simultaneously: segment appends, peer polls, and
    // fetch adoptions genuinely interleave.
    std::thread::scope(|scope| {
        for k in 0..shards {
            let dir = dir.clone();
            let root = root.clone();
            let fs = &fs;
            scope.spawn(move || {
                run_worker(&config(2), &root, fs, &dir, k, shards).expect("worker succeeds");
            });
        }
    });
    let mut s = AnalysisSession::with_store(config(2), &dir).unwrap();
    let outcome = s.check(&root, &fs).unwrap();
    assert_eq!(outcome.rendered, reference, "interleaved workers must not affect the report");
    drop(s);
    // And the merged store replays cleanly afterwards.
    let mut fresh = AnalysisSession::with_store(config(2), &dir).unwrap();
    let replay = fresh.check(&root, &fs).unwrap();
    assert_eq!(replay.run, SessionRun::Replayed);
    assert_eq!(replay.rendered, reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_workers_only_cost_recomputation() {
    let reference = reference_rendered(1);
    let dir = store_dir("killed");
    let (root, fs) = corpus();
    // Shards 1 and 2 of 3 never ran (crashed before opening the store).
    run_worker(&config(1), &root, &fs, &dir, 0, 3).expect("worker succeeds");
    let mut s = AnalysisSession::with_store(config(1), &dir).unwrap();
    let outcome = s.check(&root, &fs).unwrap();
    assert_eq!(outcome.run, SessionRun::Analyzed);
    assert_eq!(outcome.rendered, reference, "missing shards must only cost recomputation");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn final_save_compacts_dead_segments() {
    let dir = store_dir("compact");
    let (root, fs) = corpus();
    for k in 0..2 {
        run_worker(&config(1), &root, &fs, &dir, k, 2).expect("worker succeeds");
    }
    assert!(!segment_files(&dir).is_empty(), "workers must have left segments behind");
    let mut s = AnalysisSession::with_store(config(1), &dir).unwrap();
    let outcome = s.check(&root, &fs).unwrap();
    assert!(outcome.exit_code < 3);
    drop(s);
    assert!(
        segment_files(&dir).is_empty(),
        "the exclusive save must compact absorbed segments away"
    );
    // Everything the segments carried now lives in the main store file.
    let mut fresh = AnalysisSession::with_store(config(1), &dir).unwrap();
    assert_eq!(fresh.check(&root, &fs).unwrap().run, SessionRun::Replayed);
    let _ = std::fs::remove_dir_all(&dir);
}
