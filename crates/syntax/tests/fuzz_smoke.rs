//! Parser-robustness fuzz smoke test (ISSUE 2 satellite).
//!
//! The frontend's contract is *diagnostics, not panics*: any byte soup —
//! random ASCII/exotic strings, truncated corpus programs, corpus programs
//! with random single-byte mutations — must come back from
//! [`safeflow_syntax::parse_source`] as a `ParseResult` whose failures are
//! ordinary diagnostics. Seeds come from the deterministic SplitMix64
//! property harness, so a failing case prints its replay seed.
//!
//! This is a *smoke* test: a few hundred cases in a couple of seconds, run
//! on every `cargo test` and via `make fuzz-smoke` (which cranks the case
//! count up through `FUZZ_CASES`).

use safeflow_corpus::{figure2_example, systems};
use safeflow_syntax::diag::Diagnostics;
use safeflow_syntax::lexer::lex;
use safeflow_syntax::parse_source;
use safeflow_syntax::span::FileId;
use safeflow_syntax::token::TokenKind;
use safeflow_util::prop::run_cases;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn cases() -> u64 {
    std::env::var("FUZZ_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(200)
}

/// Parsing must return (it may diagnose anything it likes) — a panic is
/// the only failure.
fn must_not_panic(name: &str, src: &str) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let parsed = parse_source(name, src);
        // Touch the diagnostics so rendering is exercised too.
        let _ = parsed.diags.render_all(&parsed.sources);
    }));
    assert!(
        outcome.is_ok(),
        "parser panicked on {name} (len {}): {:?}...",
        src.len(),
        src.chars().take(120).collect::<String>()
    );
}

fn corpus_sources() -> Vec<&'static str> {
    let mut srcs: Vec<&'static str> = systems().into_iter().map(|s| s.core_source).collect();
    srcs.push(figure2_example());
    srcs
}

#[test]
fn random_garbage_yields_diagnostics_not_panics() {
    run_cases(cases(), |gen| {
        let src = gen.arbitrary_string(400);
        must_not_panic("garbage.c", &src);
    });
}

#[test]
fn tokeny_garbage_yields_diagnostics_not_panics() {
    // Strings biased toward the lexer's interesting alphabet: numbers,
    // escapes, comment/annotation openers, operators.
    let alphabet: Vec<char> =
        "0123456789abcdefxXeE.+-*/\\'\"{}()[];,<>=!&|%^~# \n\t_ASfloatint".chars().collect();
    run_cases(cases(), |gen| {
        let src = gen.string_of(&alphabet, 0, 400);
        must_not_panic("tokeny.c", &src);
    });
}

#[test]
fn truncated_corpus_programs_never_panic() {
    let srcs = corpus_sources();
    run_cases(cases(), |gen| {
        let src = gen.pick(&srcs);
        // Truncate at an arbitrary *byte* (may split a UTF-8 char: use a
        // lossy re-decode like a real tool reading a torn file would).
        let cut = gen.usize(0, src.len() + 1);
        let truncated = String::from_utf8_lossy(&src.as_bytes()[..cut]);
        must_not_panic("truncated.c", &truncated);
    });
}

#[test]
fn mutated_corpus_programs_never_panic() {
    let srcs = corpus_sources();
    run_cases(cases(), |gen| {
        let src = gen.pick(&srcs);
        let mut bytes = src.as_bytes().to_vec();
        for _ in 0..gen.usize(1, 8) {
            let at = gen.usize(0, bytes.len());
            match gen.usize(0, 3) {
                0 => bytes[at] = gen.usize(0, 256) as u8,
                1 => {
                    bytes.insert(at, gen.usize(0, 256) as u8);
                }
                _ => {
                    bytes.remove(at);
                }
            }
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        must_not_panic("mutated.c", &mutated);
    });
}

/// Lexes `src` standalone (the zero-copy path: token text is sliced
/// straight out of `src`) and asserts it terminates cleanly instead of
/// panicking — a mid-codepoint slice in the lexer is a panic, so this
/// doubles as the UTF-8-boundary safety check.
fn lex_must_not_panic(src: &str) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut diags = Diagnostics::new();
        let toks = lex(FileId(0), src, &mut diags);
        assert_eq!(toks.last().map(|t| t.kind), Some(TokenKind::Eof));
        toks.len()
    }));
    assert!(
        outcome.is_ok(),
        "lexer panicked (len {}): {:?}...",
        src.len(),
        src.chars().take(120).collect::<String>()
    );
}

#[test]
fn utf8_boundary_mutations_never_panic_or_split_codepoints() {
    // Multibyte-heavy seeds: the zero-copy lexer slices identifier,
    // literal, comment, and annotation text directly from the source
    // buffer, so every slice boundary adjacent to a multibyte character
    // is a potential mid-codepoint panic.
    const SEEDS: &[&str] = &[
        "int x = 0; /* café ≠ ASCII 中文 🦀 */ float y;",
        "char *s = \"αβγ\\n中文🦀\"; // déjà vu\nint z;",
        "/** SafeFlow Annotation assert(safe(ctrl)) — émitted 🛰 */ int ctrl;",
        "int déjà = 1; // not an identifier in the subset, but must not panic",
        "\u{feff}int bom = 0;",
        "char c = '∞'; char d = '\u{10FFFF}';",
    ];
    run_cases(cases(), |gen| {
        let src = *gen.pick(SEEDS);
        let mut bytes = src.as_bytes().to_vec();
        for _ in 0..gen.usize(1, 6) {
            let at = gen.usize(0, bytes.len());
            match gen.usize(0, 3) {
                0 => bytes[at] = gen.usize(0, 256) as u8,
                1 => bytes.insert(at, gen.usize(0, 256) as u8),
                _ => {
                    bytes.remove(at);
                }
            }
        }
        // Lossy re-decode: mutations may tear multibyte sequences; the
        // replacement characters land next to surviving multibyte text,
        // exercising slice boundaries on both sides.
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        lex_must_not_panic(&mutated);
        must_not_panic("utf8.c", &mutated);
    });
}

#[test]
fn unterminated_comments_and_strings_never_panic() {
    // Seeded truncation of sources that end inside a comment, string,
    // char literal, or annotation body — the lexer's end-of-input
    // recovery paths, where a past-the-end slice would panic.
    const OPENERS: &[&str] = &[
        "int a; /* tail comment with no close",
        "int a; /** SafeFlow Annotation assert(safe(x",
        "char *s = \"open string with escape \\",
        "char c = 'x",
        "int a; // line comment\r\nchar *s = \"二\\x4",
        "/* nested /* looking */ int b; /* open again",
    ];
    run_cases(cases(), |gen| {
        let base = *gen.pick(OPENERS);
        let cut = gen.usize(0, base.len() + 1);
        let truncated = String::from_utf8_lossy(&base.as_bytes()[..cut]);
        lex_must_not_panic(&truncated);
        must_not_panic("unterminated.c", &truncated);
    });
}

#[test]
fn crlf_and_tab_mixes_never_panic() {
    // Line-ending and whitespace soup: CRLF vs bare CR vs LF, tabs inside
    // directives/annotations/strings. Column accounting and directive
    // line-splitting must cope with every mix.
    const LINES: &[&str] = &[
        "#define\tA 1",
        "int\tx\t=\tA;",
        "/* block",
        "spanning */",
        "/** SafeFlow Annotation\tassert(safe(x)) */",
        "char *s = \"tab\there\";",
        "#include \"x.h\"",
        "int y = 2;",
    ];
    const ENDINGS: &[&str] = &["\n", "\r\n", "\r", "\t\n", " \r\n"];
    run_cases(cases(), |gen| {
        let mut src = String::new();
        for _ in 0..gen.usize(0, 16) {
            let line = *gen.pick(LINES);
            let ending = *gen.pick(ENDINGS);
            src.push_str(line);
            src.push_str(ending);
        }
        lex_must_not_panic(&src);
        must_not_panic("crlf.c", &src);
    });
}

#[test]
fn directive_heavy_mutations_never_panic() {
    // Random directive soup over the conforming preprocessor (ISSUE 8):
    // function-like defines (recursive, variadic, paste-using, malformed),
    // unbalanced conditional nesting, hostile `#if` expressions, self- and
    // missing-includes, invocations torn by truncation. Everything must
    // come back as diagnostics — and rendering them (`must_not_panic`
    // renders all diagnostics) proves every span still anchors in a
    // registered file.
    const LINES: &[&str] = &[
        "#define F(x) ((x) * F(x))",
        "#define A B",
        "#define B A",
        "#define P(a, b) a ## b",
        "#define V(a, ...) (a)",
        "#define G(",
        "#define DEEP(x) DEEP(DEEP(x))",
        "#define WIDE(x) x x x x x x x x",
        "#define  ",
        "#if defined (X) && X > 1/0",
        "#if (1 << 62) + 1",
        "#if 0x7fffffffffffffff * 2",
        "#if 1 ? 2 :",
        "#elif UNDEF(",
        "#ifdef X",
        "#ifndef X",
        "#else",
        "#endif",
        "#undef F /* tail */",
        "#undef",
        "#include \"missing.h\"",
        "#include \"directives.c\"",
        "#include <",
        "#error boom",
        "#pragma once",
        "#if 0",
        "#garbage directive",
        "int x = F(F(1), 2);",
        "int y = A + WIDE(B);",
        "int z = DEEP(3);",
        "int w = F(1",
    ];
    const ENDINGS: &[&str] = &["\n", "\r\n", " \\\n", "\n\n"];
    run_cases(cases(), |gen| {
        let mut src = String::new();
        for _ in 0..gen.usize(0, 24) {
            src.push_str(gen.pick::<&str>(LINES));
            src.push_str(gen.pick::<&str>(ENDINGS));
        }
        // Occasionally tear the result mid-byte like the other mutators.
        if gen.chance(0.3) && !src.is_empty() {
            let cut = gen.usize(0, src.len() + 1);
            src = String::from_utf8_lossy(&src.as_bytes()[..cut]).into_owned();
        }
        must_not_panic("directives.c", &src);
    });
}

#[test]
fn pathological_literals_never_panic() {
    // Directed cases for historically panic-prone lexer paths: overlong
    // hex escapes (i64 overflow), unterminated constructs, bare prefixes.
    for src in [
        r#"char c = '\xffffffffffffffffffffff';"#,
        r#"char *s = "\xffffffffffffffffffffff";"#,
        "int x = 0x;",
        "int x = 0xFFFFFFFFFFFFFFFFFFFF;",
        "int x = 099999999999999999999;",
        "float f = 1e99999999;",
        "float f = .5e+;",
        "int x = 'a",
        "char *s = \"never closed",
        "/* never closed",
        "/** SafeFlow Annotation assume(shmvar(p,",
        "/** SafeFlow Annotation ***",
        "#include \"missing.h\"\nint main() { return 0; }",
    ] {
        must_not_panic("pathological.c", src);
    }
}
