//! Parser-robustness fuzz smoke test (ISSUE 2 satellite).
//!
//! The frontend's contract is *diagnostics, not panics*: any byte soup —
//! random ASCII/exotic strings, truncated corpus programs, corpus programs
//! with random single-byte mutations — must come back from
//! [`safeflow_syntax::parse_source`] as a `ParseResult` whose failures are
//! ordinary diagnostics. Seeds come from the deterministic SplitMix64
//! property harness, so a failing case prints its replay seed.
//!
//! This is a *smoke* test: a few hundred cases in a couple of seconds, run
//! on every `cargo test` and via `make fuzz-smoke` (which cranks the case
//! count up through `FUZZ_CASES`).

use safeflow_corpus::{figure2_example, systems};
use safeflow_syntax::parse_source;
use safeflow_util::prop::run_cases;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn cases() -> u64 {
    std::env::var("FUZZ_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(200)
}

/// Parsing must return (it may diagnose anything it likes) — a panic is
/// the only failure.
fn must_not_panic(name: &str, src: &str) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let parsed = parse_source(name, src);
        // Touch the diagnostics so rendering is exercised too.
        let _ = parsed.diags.render_all(&parsed.sources);
    }));
    assert!(
        outcome.is_ok(),
        "parser panicked on {name} (len {}): {:?}...",
        src.len(),
        src.chars().take(120).collect::<String>()
    );
}

fn corpus_sources() -> Vec<&'static str> {
    let mut srcs: Vec<&'static str> = systems().into_iter().map(|s| s.core_source).collect();
    srcs.push(figure2_example());
    srcs
}

#[test]
fn random_garbage_yields_diagnostics_not_panics() {
    run_cases(cases(), |gen| {
        let src = gen.arbitrary_string(400);
        must_not_panic("garbage.c", &src);
    });
}

#[test]
fn tokeny_garbage_yields_diagnostics_not_panics() {
    // Strings biased toward the lexer's interesting alphabet: numbers,
    // escapes, comment/annotation openers, operators.
    let alphabet: Vec<char> =
        "0123456789abcdefxXeE.+-*/\\'\"{}()[];,<>=!&|%^~# \n\t_ASfloatint".chars().collect();
    run_cases(cases(), |gen| {
        let src = gen.string_of(&alphabet, 0, 400);
        must_not_panic("tokeny.c", &src);
    });
}

#[test]
fn truncated_corpus_programs_never_panic() {
    let srcs = corpus_sources();
    run_cases(cases(), |gen| {
        let src = gen.pick(&srcs);
        // Truncate at an arbitrary *byte* (may split a UTF-8 char: use a
        // lossy re-decode like a real tool reading a torn file would).
        let cut = gen.usize(0, src.len() + 1);
        let truncated = String::from_utf8_lossy(&src.as_bytes()[..cut]);
        must_not_panic("truncated.c", &truncated);
    });
}

#[test]
fn mutated_corpus_programs_never_panic() {
    let srcs = corpus_sources();
    run_cases(cases(), |gen| {
        let src = gen.pick(&srcs);
        let mut bytes = src.as_bytes().to_vec();
        for _ in 0..gen.usize(1, 8) {
            let at = gen.usize(0, bytes.len());
            match gen.usize(0, 3) {
                0 => bytes[at] = gen.usize(0, 256) as u8,
                1 => {
                    bytes.insert(at, gen.usize(0, 256) as u8);
                }
                _ => {
                    bytes.remove(at);
                }
            }
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        must_not_panic("mutated.c", &mutated);
    });
}

#[test]
fn pathological_literals_never_panic() {
    // Directed cases for historically panic-prone lexer paths: overlong
    // hex escapes (i64 overflow), unterminated constructs, bare prefixes.
    for src in [
        r#"char c = '\xffffffffffffffffffffff';"#,
        r#"char *s = "\xffffffffffffffffffffff";"#,
        "int x = 0x;",
        "int x = 0xFFFFFFFFFFFFFFFFFFFF;",
        "int x = 099999999999999999999;",
        "float f = 1e99999999;",
        "float f = .5e+;",
        "int x = 'a",
        "char *s = \"never closed",
        "/* never closed",
        "/** SafeFlow Annotation assume(shmvar(p,",
        "/** SafeFlow Annotation ***",
        "#include \"missing.h\"\nint main() { return 0; }",
    ] {
        must_not_panic("pathological.c", src);
    }
}
