//! End-to-end frontend tests: preprocess → lex → parse.

use safeflow_syntax::annot::Annotation;
use safeflow_syntax::ast::*;
use safeflow_syntax::{parse_source, ParseResult};

fn parse_ok(src: &str) -> TranslationUnit {
    let ParseResult { unit, diags, sources } = parse_source("test.c", src);
    assert!(!diags.has_errors(), "parse errors:\n{}", diags.render_all(&sources));
    unit
}

fn parse_err(src: &str) -> safeflow_syntax::Diagnostics {
    let ParseResult { diags, .. } = parse_source("test.c", src);
    assert!(diags.has_errors(), "expected parse errors, got none");
    diags
}

#[test]
fn parse_globals_and_multi_declarators() {
    let tu = parse_ok("int a; float b = 1.5; int c, *d, e[10];");
    let names: Vec<_> = tu.globals().map(|g| g.name).collect();
    assert_eq!(names, vec!["a", "b", "c", "d", "e"]);
    let d = tu.globals().find(|g| g.name == "d").unwrap();
    assert!(matches!(tu.ast.type_expr(d.ty).kind, TypeExprKind::Ptr(_)));
    let e = tu.globals().find(|g| g.name == "e").unwrap();
    assert!(matches!(tu.ast.type_expr(e.ty).kind, TypeExprKind::Array(..)));
}

#[test]
fn parse_struct_definition_and_reference() {
    let tu =
        parse_ok("struct Point { int x; int y; };\nstruct Point origin;\nstruct Point pts[4];");
    let s = tu.struct_def("Point").unwrap();
    assert_eq!(s.fields.len(), 2);
    assert!(!s.is_union);
    let g = tu.globals().find(|g| g.name == "origin").unwrap();
    assert_eq!(tu.ast.type_expr(g.ty).kind, TypeExprKind::Struct("Point".into()));
}

#[test]
fn parse_typedef_struct_idiom() {
    let tu = parse_ok("typedef struct { float control; int valid; } SHMData;\nSHMData *p;");
    // The anonymous struct is hoisted with a synthetic name; the typedef
    // refers to it.
    let td = tu.items.iter().find_map(|i| match i {
        Item::Typedef(t) => Some(t),
        _ => None,
    });
    let td = td.expect("typedef present");
    assert_eq!(td.name, "SHMData");
    assert!(matches!(tu.ast.type_expr(td.ty).kind, TypeExprKind::Struct(_)));
    // And the typedef name works as a type afterwards.
    let p = tu.globals().find(|g| g.name == "p").unwrap();
    assert!(matches!(tu.ast.type_expr(p.ty).kind, TypeExprKind::Ptr(_)));
}

#[test]
fn parse_named_typedef_struct() {
    let tu = parse_ok("typedef struct Node { int v; struct Node *next; } Node;\nNode *head;");
    let s = tu.struct_def("Node").unwrap();
    assert_eq!(s.fields.len(), 2);
}

#[test]
fn parse_enum_definition() {
    let tu = parse_ok("enum Mode { IDLE, ACTIVE = 5, SHUTDOWN };\nenum Mode m;");
    let e = tu.items.iter().find_map(|i| match i {
        Item::Enum(e) => Some(e),
        _ => None,
    });
    let e = e.expect("enum present");
    assert_eq!(e.variants.len(), 3);
    assert_eq!(e.variants[0].0, "IDLE");
    assert!(e.variants[1].1.is_some());
}

#[test]
fn parse_function_definition() {
    let tu =
        parse_ok("int add(int a, int b) { return a + b; }\nvoid nop(void) { }\nfloat silent();");
    let add = tu.function("add").unwrap();
    assert_eq!(add.params.len(), 2);
    assert!(add.body.is_some());
    let nop = tu.function("nop").unwrap();
    assert!(nop.params.is_empty());
    let silent = tu.function("silent").unwrap();
    assert!(silent.body.is_none());
}

#[test]
fn parse_varargs_prototype() {
    let tu = parse_ok("int printf(char *fmt, ...);");
    assert!(tu.function("printf").unwrap().varargs);
}

#[test]
fn parse_control_flow_statements() {
    let tu = parse_ok(
        r#"
        int f(int n) {
            int acc = 0;
            int i;
            for (i = 0; i < n; i++) {
                if (i % 2 == 0) { acc += i; } else acc -= 1;
            }
            while (acc > 100) acc /= 2;
            do { acc++; } while (acc < 0);
            switch (acc) {
                case 0: return 0;
                case 1:
                case 2: acc = 5; break;
                default: break;
            }
            return acc;
        }
        "#,
    );
    let f = tu.function("f").unwrap();
    let body = f.body.as_ref().unwrap();
    assert!(body.items.len() >= 6);
    // Find the switch and check its arms.
    let has_switch = body.items.iter().any(
        |s| matches!(&tu.ast.stmt(*s).kind, StmtKind::Switch { cases, .. } if cases.len() == 4),
    );
    assert!(has_switch, "switch with 4 labels expected");
}

#[test]
fn parse_for_with_declaration_init() {
    let tu = parse_ok("int g(void) { int s = 0; for (int i = 0; i < 4; ++i) s += i; return s; }");
    let f = tu.function("g").unwrap();
    let body = f.body.as_ref().unwrap();
    let has_for_decl = body.items.iter().any(|s| {
        matches!(&tu.ast.stmt(*s).kind, StmtKind::For { init: Some(init), .. }
            if matches!(tu.ast.stmt(*init).kind, StmtKind::Decl(_)))
    });
    assert!(has_for_decl);
}

#[test]
fn parse_expression_precedence() {
    let tu = parse_ok("int x = 2 + 3 * 4;");
    let g = tu.globals().next().unwrap();
    match tu.ast.init(g.init.unwrap()) {
        Initializer::Expr(e) => match &tu.ast.expr(*e).kind {
            ExprKind::Binary(BinOp::Add, lhs, rhs) => {
                assert!(matches!(tu.ast.expr(*lhs).kind, ExprKind::IntLit(2)));
                assert!(matches!(tu.ast.expr(*rhs).kind, ExprKind::Binary(BinOp::Mul, ..)));
            }
            other => panic!("expected Add at root, got {other:?}"),
        },
        other => panic!("expected expr initializer, got {other:?}"),
    }
}

#[test]
fn parse_logical_operators_are_distinct() {
    let tu = parse_ok("int f(int a, int b) { return a && b || !a; }");
    let f = tu.function("f").unwrap();
    let ret = f.body.as_ref().unwrap().items[0];
    match &tu.ast.stmt(ret).kind {
        StmtKind::Return(Some(e)) => {
            assert!(matches!(tu.ast.expr(*e).kind, ExprKind::LogicalOr(..)));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn parse_pointer_member_and_index_chain() {
    let tu = parse_ok(
        "typedef struct { float v[8]; } D;\nfloat get(D *d, int i) { return d->v[i + 1]; }",
    );
    let f = tu.function("get").unwrap();
    match &tu.ast.stmt(f.body.as_ref().unwrap().items[0]).kind {
        StmtKind::Return(Some(e)) => match &tu.ast.expr(*e).kind {
            ExprKind::Index(base, _) => {
                assert!(matches!(&tu.ast.expr(*base).kind, ExprKind::Member { arrow: true, .. }));
            }
            other => panic!("expected index, got {other:?}"),
        },
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn parse_casts_and_sizeof() {
    let tu = parse_ok(
        r#"
        typedef struct { int a; } T;
        void *shmat(int id, void *addr, int flg);
        void init(void) {
            void *raw = shmat(0, 0, 0);
            T *t = (T *) raw;
            int n = sizeof(T);
            int m = sizeof t;
        }
        "#,
    );
    let f = tu.function("init").unwrap();
    assert_eq!(f.body.as_ref().unwrap().items.len(), 4);
}

#[test]
fn parse_conditional_and_comma() {
    let tu = parse_ok("int f(int a) { int b; b = a > 0 ? a : -a; a = (a++, a + 1); return b; }");
    assert!(tu.function("f").is_some());
}

#[test]
fn parse_address_of_and_deref() {
    let tu = parse_ok("void f(void) { int x = 3; int *p = &x; *p = 4; }");
    assert!(tu.function("f").is_some());
}

#[test]
fn header_annotation_attaches_to_function() {
    let tu = parse_ok(
        r#"
        typedef struct { float control; } SHMData;
        SHMData *noncoreCtrl;
        float decision(float safeControl)
        /***SafeFlow Annotation
            assume(core(noncoreCtrl, 0, sizeof(SHMData))) /***/
        {
            return safeControl;
        }
        "#,
    );
    let f = tu.function("decision").unwrap();
    assert_eq!(f.annotations.len(), 1);
    assert!(
        matches!(&f.annotations[0], Annotation::AssumeCore { ptr, .. } if ptr == "noncoreCtrl")
    );
}

#[test]
fn statement_annotation_becomes_annotation_stmt() {
    let tu = parse_ok(
        r#"
        void sendControl(float v);
        void step(float output) {
            /** SafeFlow Annotation assert(safe(output)) */
            sendControl(output);
        }
        "#,
    );
    let f = tu.function("step").unwrap();
    let items = &f.body.as_ref().unwrap().items;
    assert!(matches!(
        &tu.ast.stmt(items[0]).kind,
        StmtKind::Annotation(Annotation::AssertSafe { var, .. }) if var == "output"
    ));
}

#[test]
fn multiple_annotations_one_comment() {
    let tu = parse_ok(
        r#"
        typedef struct { float c; } SHMData;
        SHMData *feedback; SHMData *noncoreCtrl;
        void initComm(void)
        /** SafeFlow Annotation shminit */
        {
            /** SafeFlow Annotation
                assume(shmvar(feedback, sizeof(SHMData)))
                assume(shmvar(noncoreCtrl, sizeof(SHMData)))
                assume(noncore(noncoreCtrl))
            */
        }
        "#,
    );
    let f = tu.function("initComm").unwrap();
    assert_eq!(f.annotations.len(), 1);
    assert!(matches!(f.annotations[0], Annotation::ShmInit { .. }));
    // The three postconditions become a block of annotation statements.
    let items = &f.body.as_ref().unwrap().items;
    let count = count_annotations(&tu.ast, items);
    assert_eq!(count, 3);
}

fn count_annotations(ast: &Ast, items: &[StmtId]) -> usize {
    items
        .iter()
        .map(|s| match &ast.stmt(*s).kind {
            StmtKind::Annotation(_) => 1,
            StmtKind::Block(b) => count_annotations(ast, &b.items),
            _ => 0,
        })
        .sum()
}

#[test]
fn figure2_core_controller_parses() {
    // A faithful transcription of the paper's Figure 2 (simplified core
    // controller of the inverted pendulum Simplex implementation).
    let tu = parse_ok(
        r#"
        typedef struct { float control; float track; float angle; } SHMData;
        typedef SHMData Feedback;
        SHMData *noncoreCtrl;
        SHMData *feedback;
        int shmget(int key, int size, int flags);
        void *shmat(int shmid, void *addr, int flags);
        int checkSafety(SHMData *fb, SHMData *ctrl);
        void getFeedback(SHMData *fb);
        void computeSafety(SHMData *fb, float *safe);
        void Unlock(int lock);
        void Lock(int lock);
        void wait(int tsecs);
        void sendControl(float output);
        int shmLock; int tsecs;

        float decision(Feedback *f, float safeControl, SHMData *ctrl)
        /***SafeFlow Annotation
            assume(core(noncoreCtrl, 0, sizeof(SHMData))) /***/
        {
            if (checkSafety(feedback, noncoreCtrl))
                return noncoreCtrl->control;
            else
                return safeControl;
        }

        int main() {
            void *shmStart;
            int shmid;
            float safeControl;
            shmid = shmget(42, 2 * sizeof(SHMData), 0);
            shmStart = shmat(shmid, 0, 0);
            feedback = (SHMData *) shmStart;
            noncoreCtrl = feedback + 1;
            while (1) {
                float output;
                getFeedback(feedback);
                computeSafety(feedback, &safeControl);
                Unlock(shmLock);
                wait(tsecs);
                Lock(shmLock);
                output = decision(feedback, safeControl, noncoreCtrl);
                /**SafeFlow Annotation
                assert(safe(output)); /***/
                sendControl(output);
            }
            return 0;
        }
        "#,
    );
    assert!(tu.function("decision").unwrap().annotations.len() == 1);
    assert!(tu.function("main").is_some());
    assert_eq!(tu.functions().count(), 2);
}

#[test]
fn goto_rejected() {
    let d = parse_err("void f(void) { goto out; }");
    assert!(d.iter().any(|x| x.message.contains("goto")));
}

#[test]
fn function_pointer_call_rejected() {
    let d = parse_err("void f(int *p) { (*p)(); }");
    assert!(d.iter().any(|x| x.message.contains("indirect calls")));
}

#[test]
fn missing_semicolon_recovers() {
    // One error, but both functions should still be visible.
    let ParseResult { unit, diags, .. } =
        parse_source("t.c", "int f(void) { return 1 }\nint g(void) { return 2; }");
    assert!(diags.has_errors());
    assert!(unit.function("g").is_some());
}

#[test]
fn static_and_extern_storage() {
    let tu = parse_ok("static int counter; extern int outside; static void helper(void) { }");
    assert_eq!(tu.globals().find(|g| g.name == "counter").unwrap().storage, Storage::Static);
    assert_eq!(tu.globals().find(|g| g.name == "outside").unwrap().storage, Storage::Extern);
    assert_eq!(tu.function("helper").unwrap().storage, Storage::Static);
}

#[test]
fn unsigned_and_long_types() {
    let tu = parse_ok("unsigned int a; unsigned char b; long c; unsigned long d; short e;");
    let a = tu.globals().find(|g| g.name == "a").unwrap();
    assert_eq!(tu.ast.type_expr(a.ty).kind, TypeExprKind::Int(Signedness::Unsigned));
    let d = tu.globals().find(|g| g.name == "d").unwrap();
    assert_eq!(tu.ast.type_expr(d.ty).kind, TypeExprKind::Long(Signedness::Unsigned));
}

#[test]
fn array_initializer_list() {
    let tu = parse_ok("float gains[3] = { 1.0, 2.5, 0.0 };");
    let g = tu.globals().next().unwrap();
    match tu.ast.init(g.init.unwrap()) {
        Initializer::List(items, _) => assert_eq!(items.len(), 3),
        other => panic!("expected list, got {other:?}"),
    }
}

#[test]
fn nested_initializer_list() {
    let tu = parse_ok("float m[2][2] = { { 1.0, 0.0 }, { 0.0, 1.0 } };");
    let g = tu.globals().next().unwrap();
    match tu.ast.init(g.init.unwrap()) {
        Initializer::List(items, _) => {
            assert_eq!(items.len(), 2);
            assert!(matches!(tu.ast.init(items[0]), Initializer::List(..)));
        }
        other => panic!("expected list, got {other:?}"),
    }
}

#[test]
fn preprocessor_macro_in_function() {
    let tu = parse_ok("#define LIMIT 100\nint f(int x) { if (x > LIMIT) return LIMIT; return x; }");
    assert!(tu.function("f").is_some());
}

#[test]
fn string_concatenation() {
    let tu = parse_ok(r#"void log2(char *m); void f(void) { log2("a" "b"); }"#);
    let f = tu.function("f").unwrap();
    match &tu.ast.stmt(f.body.as_ref().unwrap().items[0]).kind {
        StmtKind::Expr(e) => match &tu.ast.expr(*e).kind {
            ExprKind::Call { args, .. } => {
                assert!(matches!(&tu.ast.expr(args[0]).kind, ExprKind::StrLit(s) if *s == "ab"));
            }
            other => panic!("unexpected {other:?}"),
        },
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn unions_parse() {
    let tu = parse_ok("union U { int i; float f; };\nunion U u;");
    // Unions are stored as struct defs with the flag set (C has a single
    // tag namespace, so lookup by tag finds it).
    let s = tu.struct_def("U").unwrap();
    assert!(s.is_union);
    let u = tu.items.iter().find_map(|i| match i {
        Item::Struct(s) if s.is_union => Some(s),
        _ => None,
    });
    assert!(u.is_some());
}

#[test]
fn empty_translation_unit() {
    let tu = parse_ok("");
    assert!(tu.items.is_empty());
}

#[test]
fn deeply_nested_expressions_do_not_overflow() {
    // Nesting below the limit parses fine.
    let mut src = String::from("int x = ");
    for _ in 0..48 {
        src.push('(');
    }
    src.push('1');
    for _ in 0..48 {
        src.push(')');
    }
    src.push(';');
    let _ = parse_ok(&src);

    // Nesting beyond the limit is rejected with a diagnostic, not a crash.
    let mut deep = String::from("int x = ");
    for _ in 0..500 {
        deep.push('(');
    }
    deep.push('1');
    for _ in 0..500 {
        deep.push(')');
    }
    deep.push(';');
    let d = parse_err(&deep);
    assert!(d.iter().any(|x| x.message.contains("nesting too deep")));
}

#[test]
fn annotation_marker_inside_string_is_not_an_annotation() {
    let tu = parse_ok(
        r#"void log2(char *s); void f(void) { log2("SafeFlow Annotation assert(safe(x))"); }"#,
    );
    let f = tu.function("f").unwrap();
    // No annotation statement — the marker only counts inside comments.
    assert!(f
        .body
        .as_ref()
        .unwrap()
        .items
        .iter()
        .all(|s| !matches!(tu.ast.stmt(*s).kind, StmtKind::Annotation(_))));
}

#[test]
fn comment_like_sequences_inside_strings() {
    let tu =
        parse_ok(r#"void log2(char *s); void f(void) { log2("/* not a comment */ // neither"); }"#);
    assert!(tu.function("f").is_some());
}

#[test]
fn division_not_mistaken_for_comment() {
    let tu = parse_ok("int f(int a, int b) { return a / b / 2; }");
    assert!(tu.function("f").is_some());
}

#[test]
fn sizeof_of_array_variable() {
    let tu = parse_ok("float hist[16]; long f(void) { return sizeof(hist); }");
    assert!(tu.function("f").is_some());
}

#[test]
fn empty_function_bodies_and_params() {
    let tu = parse_ok("void a(void) {}\nvoid b() {}\nint c(int x) { return x; }");
    assert_eq!(tu.functions().count(), 3);
}
