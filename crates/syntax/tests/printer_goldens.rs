//! Parse-equivalence snapshot tests (ISSUE 6 satellite).
//!
//! The arena/interning frontend overhaul must be observationally invisible:
//! for every checked-in fixture and `tests/oracle-repros/*.c`, the printed
//! AST (`printer::print_unit`) and rendered diagnostics must stay
//! byte-identical to goldens captured with the pre-refactor boxed-`String`
//! frontend. Corpus generator output rides along as extra coverage because
//! the generators are deterministic.
//!
//! Regenerate with `UPDATE_GOLDENS=1 cargo test -p safeflow-syntax --test
//! printer_goldens` — but only when an *intentional* grammar or printer
//! change lands; a diff here during a pure refactor is a bug.

use safeflow_corpus::{figure2_example, systems};
use safeflow_syntax::{parse_source, printer};
use std::fs;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

/// Parses `src` and renders the full observable frontend output: printed
/// AST, then (if any) rendered diagnostics. Both halves participate in the
/// byte-identity contract.
fn snapshot(name: &str, src: &str) -> String {
    let parsed = parse_source(name, src);
    let mut out = printer::print_unit(&parsed.unit);
    let diags = parsed.diags.render_all(&parsed.sources);
    if !diags.is_empty() {
        out.push_str("=== diagnostics ===\n");
        out.push_str(&diags);
    }
    out
}

/// All fixture sources: every checked-in `.c` file plus the deterministic
/// corpus generators. Names double as golden file stems.
fn fixtures() -> Vec<(String, String)> {
    let root = repo_root();
    let mut out = Vec::new();
    let mut checked_in: Vec<PathBuf> = Vec::new();
    for dir in ["tests/oracle-repros", "examples/incremental"] {
        let mut files: Vec<_> = fs::read_dir(root.join(dir))
            .unwrap_or_else(|e| panic!("read {dir}: {e}"))
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "c"))
            .collect();
        files.sort();
        checked_in.extend(files);
    }
    for path in checked_in {
        let stem = path.file_stem().unwrap().to_str().unwrap().to_string();
        let src = fs::read_to_string(&path).unwrap();
        out.push((stem, src));
    }
    out.push(("corpus-fig2".to_string(), figure2_example().to_string()));
    for sys in systems() {
        out.push((format!("corpus-{}", sys.name), sys.core_source.to_string()));
    }
    out
}

#[test]
fn printer_output_matches_pre_refactor_goldens() {
    let dir = goldens_dir();
    let bless = std::env::var("UPDATE_GOLDENS").is_ok();
    if bless {
        fs::create_dir_all(&dir).unwrap();
    }
    let mut failures = Vec::new();
    for (stem, src) in fixtures() {
        let got = snapshot(&format!("{stem}.c"), &src);
        let golden_path = dir.join(format!("{stem}.golden"));
        if bless {
            fs::write(&golden_path, &got).unwrap();
            continue;
        }
        let want = fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden_path.display()));
        if got != want {
            // Show the first diverging line so the failure is actionable
            // without a diff tool.
            let line = got
                .lines()
                .zip(want.lines())
                .position(|(a, b)| a != b)
                .map(|i| i + 1)
                .unwrap_or_else(|| got.lines().count().min(want.lines().count()) + 1);
            failures.push(format!("{stem}: first divergence at line {line}"));
        }
    }
    assert!(
        failures.is_empty(),
        "printer output drifted from pre-refactor goldens:\n{}",
        failures.join("\n")
    );
}

#[test]
fn diagnostics_rendering_matches_goldens_on_crlf_and_tab_source() {
    // Directed snapshot for the PR 6 span regressions: CRLF line endings
    // and hard tabs before an annotation must render the same line/col and
    // caret as before the zero-copy lexer.
    let src = "int x;\r\n\t/** SafeFlow Annotation assume(shmvar(p, sizeof(Missing))) */\r\nfloat bad = ;\r\n";
    let got = snapshot("crlf-diag.c", src);
    let golden_path = goldens_dir().join("crlf-diag.golden");
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        fs::create_dir_all(goldens_dir()).unwrap();
        fs::write(&golden_path, &got).unwrap();
        return;
    }
    let want = fs::read_to_string(&golden_path).unwrap();
    assert_eq!(got, want, "CRLF/tab diagnostic rendering drifted");
}
