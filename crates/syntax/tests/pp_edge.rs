//! Preprocessor edge-case suite (ISSUE 8 satellite).
//!
//! Locks the three directive-handling bugs the ISSUE names as
//! integration-level regressions (they also have unit repros in pp.rs),
//! plus the conformance behaviors around them: nested `#elif` chains,
//! function-like macro recursion and arity diagnostics, diagnostic
//! anchoring inside included files, and the parallel-replay contract —
//! diagnostics and AST byte-identical at every `--jobs` value on
//! macro-heavy multi-file programs.

use safeflow_syntax::pp::VirtualFs;
use safeflow_syntax::printer::print_unit;
use safeflow_syntax::{parse_program, parse_program_jobs, parse_source, ParseResult};

fn fs(files: &[(&str, &str)]) -> VirtualFs {
    let mut fs = VirtualFs::new();
    for (n, t) in files {
        fs.add(*n, *t);
    }
    fs
}

fn rendered_diags(r: &ParseResult) -> String {
    r.diags.render_all(&r.sources)
}

// --- Repro 1: skipped groups must not evaluate nested conditions. ---

#[test]
fn disabled_block_with_unsupported_condition_is_silent() {
    // The inner condition uses a form the evaluator rejects; inside
    // `#if 0` it must never be evaluated, so the program is clean.
    let src = "#if 0\n#if SOME_TARGET_ONLY_FORM(v2,\n#error not for this target\n#endif\n#endif\nint ok;\n";
    let r = parse_source("skip.c", src);
    assert!(!r.diags.has_errors(), "{}", rendered_diags(&r));
    assert_eq!(print_unit(&r.unit).matches("ok").count(), 1);
}

#[test]
fn disabled_block_does_not_define_or_include() {
    let files = [
        ("main.c", "#ifdef NOPE\n#include \"missing.h\"\n#define HIDDEN 1\n#endif\n#ifdef HIDDEN\nint bad;\n#endif\nint good;\n"),
    ];
    let r = parse_program("main.c", &fs(&files));
    assert!(!r.diags.has_errors(), "{}", rendered_diags(&r));
    let printed = print_unit(&r.unit);
    assert!(printed.contains("good"));
    assert!(!printed.contains("bad"));
}

// --- Repro 2: trailing comments on directive lines. ---

#[test]
fn undef_with_trailing_block_comment_takes_effect() {
    let src = "#define FOO 1\n#undef FOO /* retired: see note */\n#ifdef FOO\nint stale;\n#endif\nint fresh;\n";
    let r = parse_source("undef.c", src);
    assert!(!r.diags.has_errors(), "{}", rendered_diags(&r));
    let printed = print_unit(&r.unit);
    assert!(printed.contains("fresh"));
    assert!(!printed.contains("stale"));
}

#[test]
fn ifdef_with_trailing_line_comment_matches() {
    let src = "#define FOO 1\n#ifdef FOO // enabled on all targets\nint yes;\n#endif\n";
    let r = parse_source("ifdef.c", src);
    assert!(!r.diags.has_errors(), "{}", rendered_diags(&r));
    assert!(print_unit(&r.unit).contains("yes"));
}

// --- Repro 3: `defined (X)` with whitespace before the paren. ---

#[test]
fn defined_with_space_before_paren_sees_the_macro() {
    let src =
        "#define HAVE_SHM 1\n#if defined (HAVE_SHM)\nint with;\n#else\nint without;\n#endif\n";
    let r = parse_source("defined.c", src);
    assert!(!r.diags.has_errors(), "{}", rendered_diags(&r));
    let printed = print_unit(&r.unit);
    assert!(printed.contains("with"));
    assert!(!printed.contains("without"));
}

// --- Nested #elif chains. ---

#[test]
fn nested_elif_chains_select_exactly_one_branch() {
    let src = "\
#define TARGET 3
#if TARGET == 1
int t1;
#elif TARGET == 2
int t2;
#elif TARGET == 3
#if defined(VARIANT)
int t3v;
#elif TARGET * 2 == 6
int t3;
#else
int t3d;
#endif
#elif TARGET == 4
int t4;
#else
int td;
#endif
";
    let r = parse_source("elif.c", src);
    assert!(!r.diags.has_errors(), "{}", rendered_diags(&r));
    let printed = print_unit(&r.unit);
    for sym in ["t1", "t2", "t3v", "t3d", "t4", "td"] {
        assert!(!printed.contains(&format!("{sym};")), "branch {sym} must not be taken");
    }
    assert!(printed.contains("t3;"));
}

#[test]
fn elif_chain_stops_evaluating_after_taken_branch() {
    // Conditions after the taken branch are dead: even a malformed one
    // must not diagnose (C skips them entirely).
    let src = "#if 1\nint a;\n#elif 1 +\nint b;\n#elif )(\nint c;\n#endif\n";
    let r = parse_source("dead.c", src);
    assert!(!r.diags.has_errors(), "{}", rendered_diags(&r));
    assert!(print_unit(&r.unit).contains("a;"));
}

// --- Function-like macro recursion and arity diagnostics. ---

#[test]
fn recursive_function_macros_diagnose_nothing_and_terminate() {
    let src = "#define LOOP(x) LOOP(x)\n#define PING(x) PONG(x)\n#define PONG(x) PING(x)\nint a = LOOP(1);\nint b = PING(2);\n";
    let r = parse_source("recur.c", src);
    // Blue-painted recursive names survive as plain identifiers; the
    // parser then sees calls to undeclared functions, which the subset
    // parses fine (diagnosis happens later, in analysis).
    assert!(!r.diags.has_errors(), "{}", rendered_diags(&r));
    let printed = print_unit(&r.unit);
    assert!(printed.contains("LOOP"));
    assert!(printed.contains("PING") || printed.contains("PONG"));
}

#[test]
fn arity_errors_are_diagnosed_with_the_macro_name() {
    let src = "#define CLAMP(v, lo, hi) ((v) < (lo) ? (lo) : (v))\nint a = CLAMP(1);\nint b = CLAMP(1, 2, 3, 4);\n";
    let r = parse_source("arity.c", src);
    assert!(r.diags.has_errors());
    let text = rendered_diags(&r);
    assert!(text.contains("CLAMP"), "{text}");
    assert!(text.contains("expects 3 argument(s), got 1"), "{text}");
    assert!(text.contains("expects 3 argument(s), got 4"), "{text}");
}

#[test]
fn unterminated_invocation_is_an_error_not_a_hang() {
    let src = "#define F(a, b) ((a) + (b))\nint x = F(1,\n";
    let r = parse_source("unterm.c", src);
    assert!(r.diags.has_errors());
    assert!(rendered_diags(&r).contains("unterminated invocation"), "{}", rendered_diags(&r));
}

// --- Include-diagnostic anchoring. ---

#[test]
fn errors_in_included_files_anchor_in_the_included_file() {
    let files = [
        ("main.c", "#include \"inner.h\"\nint after;\n"),
        ("inner.h", "int ok;\n#if 1 /\nint bad;\n#endif\n"),
    ];
    let r = parse_program("main.c", &fs(&files));
    assert!(r.diags.has_errors());
    let text = rendered_diags(&r);
    // The malformed-condition error must point into inner.h, not main.c.
    assert!(text.contains("inner.h"), "{text}");
}

#[test]
fn macro_use_site_errors_anchor_at_the_use_site_file() {
    let files = [
        ("main.c", "#define ADD(a, b) ((a) + (b))\n#include \"user.c\"\n"),
        ("user.c", "int y = ADD(1);\n"),
    ];
    let r = parse_program("main.c", &fs(&files));
    assert!(r.diags.has_errors());
    let text = rendered_diags(&r);
    assert!(text.contains("user.c"), "arity error must anchor at the use site: {text}");
}

#[test]
fn error_directive_reports_its_message_and_file() {
    let files = [
        ("main.c", "#include \"cfg.h\"\nint x;\n"),
        ("cfg.h", "#ifndef MODE\n#error MODE must be defined by the build\n#endif\n"),
    ];
    let r = parse_program("main.c", &fs(&files));
    assert!(r.diags.has_errors());
    let text = rendered_diags(&r);
    assert!(text.contains("MODE must be defined"), "{text}");
    assert!(text.contains("cfg.h"), "{text}");
}

// --- Parallel-replay byte identity on macro-heavy programs. ---

#[test]
fn macro_heavy_program_is_byte_identical_at_every_jobs_value() {
    // A program leaning on everything new at once: function-like macros
    // crossing file boundaries, config conditionals, guarded headers,
    // plus a deliberate arity error so the diagnostic path is covered
    // by the byte-identity check too.
    let files = [
        (
            "main.c",
            "#include \"cfg.h\"\n#include \"lib.c\"\nint main() { int u; u = STEP(BASE, 2); u = STEP(u);\n#if MODE >= 2 && defined(EXTRA)\n u = u + 1;\n#endif\n return u; }\n",
        ),
        ("cfg.h", "#ifndef CFG_H\n#define CFG_H\n#define MODE 3\n#define BASE (MODE * 10)\n#define EXTRA 1\n#endif\n"),
        ("lib.c", "#include \"cfg.h\"\n#define STEP(x, k) ((x) + (k) * MODE)\nint helper(int v) { return STEP(v, 1); }\n"),
    ];
    let vfs = fs(&files);
    let reference = parse_program("main.c", &vfs);
    assert!(reference.diags.has_errors(), "the one-arg STEP use must diagnose");
    let ref_printed = print_unit(&reference.unit);
    let ref_diags = rendered_diags(&reference);
    for jobs in [1usize, 2, 8] {
        let got = parse_program_jobs("main.c", &vfs, jobs);
        assert_eq!(print_unit(&got.unit), ref_printed, "AST diverged at jobs={jobs}");
        assert_eq!(rendered_diags(&got), ref_diags, "diagnostics diverged at jobs={jobs}");
    }
}
