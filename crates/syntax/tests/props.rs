//! Property-based robustness tests for the frontend.
//!
//! The frontend must never panic: arbitrary bytes produce diagnostics, not
//! crashes. This matters because SafeFlow is run over user-supplied C code.

use safeflow_syntax::annot::parse_annotation_body;
use safeflow_syntax::diag::Diagnostics;
use safeflow_syntax::lexer::lex;
use safeflow_syntax::source::SourceMap;
use safeflow_syntax::span::{FileId, Span};
use safeflow_syntax::{parse_source, pp::VirtualFs};
use safeflow_util::prop::run_cases;

/// The lexer terminates with an Eof token on arbitrary input.
#[test]
fn lexer_never_panics() {
    run_cases(256, |g| {
        let src = g.arbitrary_string(200);
        let mut diags = Diagnostics::new();
        let toks = lex(FileId(0), &src, &mut diags);
        assert!(!toks.is_empty());
        assert_eq!(toks.last().unwrap().kind, safeflow_syntax::token::TokenKind::Eof);
    });
}

/// The full pipeline (pp → lex → parse) never panics on arbitrary input.
#[test]
fn parser_never_panics() {
    run_cases(256, |g| {
        let src = g.arbitrary_string(400);
        let _ = parse_source("fuzz.c", &src);
    });
}

/// The pipeline never panics on inputs biased toward C-looking token soup
/// (more likely to reach deep parser paths than pure noise).
#[test]
fn parser_never_panics_on_c_soup() {
    const VOCAB: &[&str] = &[
        "int",
        "float",
        "struct",
        "typedef",
        "if",
        "else",
        "while",
        "for",
        "return",
        "(",
        ")",
        "{",
        "}",
        "[",
        "]",
        ";",
        ",",
        "*",
        "&",
        "=",
        "==",
        "->",
        ".",
        "x",
        "y",
        "main",
        "42",
        "3.5",
        "\"s\"",
        "'c'",
        "sizeof",
        "switch",
        "case",
        "default",
        "/** SafeFlow Annotation assert(safe(x)) */",
    ];
    run_cases(256, |g| {
        let parts = g.vec_of(0, 80, |g| *g.pick(VOCAB));
        let src = parts.join(" ");
        let _ = parse_source("soup.c", &src);
    });
}

/// The annotation mini-parser never panics.
#[test]
fn annotation_parser_never_panics() {
    run_cases(256, |g| {
        let body = g.arbitrary_string(120);
        let mut sources = SourceMap::new();
        let mut diags = Diagnostics::new();
        let _ = parse_annotation_body(&body, Span::dummy(), &mut sources, &mut diags);
    });
}

/// The preprocessor never panics on arbitrary directive soup.
#[test]
fn preprocessor_never_panics() {
    const LINES: &[&str] = &[
        "#define A 1",
        "#define B A",
        "#undef A",
        "#ifdef A",
        "#ifndef B",
        "#else",
        "#endif",
        "#if 1",
        "#if 0",
        "#elif 1",
        "#include \"x.h\"",
        "#pragma once",
        "int x;",
        "A",
        "B",
    ];
    run_cases(256, |g| {
        let lines = g.vec_of(0, 30, |g| *g.pick(LINES));
        let mut fs = VirtualFs::new();
        fs.add("x.h", "int from_header;");
        fs.add("main.c", lines.join("\n"));
        let _ = safeflow_syntax::parse_program("main.c", &fs);
    });
}

/// Integer literals round-trip through the lexer.
#[test]
fn int_literals_round_trip() {
    run_cases(256, |g| {
        let v = g.i64(0, i64::from(i32::MAX));
        let mut diags = Diagnostics::new();
        let toks = lex(FileId(0), &format!("{v}"), &mut diags);
        assert!(!diags.has_errors());
        assert_eq!(toks[0].kind, safeflow_syntax::token::TokenKind::IntLit(v));
    });
}

/// Identifiers round-trip through the lexer.
#[test]
fn identifiers_round_trip() {
    const HEAD: &[char] = &['a', 'b', 'c', 'x', 'y', 'z', 'A', 'Q', 'Z', '_'];
    const TAIL: &[char] = &['a', 'e', 'k', 'p', 'w', 'B', 'R', 'X', '_', '0', '3', '7', '9'];
    run_cases(256, |g| {
        let mut name = String::new();
        name.push(*g.pick(HEAD));
        name.push_str(&g.string_of(TAIL, 0, 21));
        if safeflow_syntax::token::Keyword::from_str(&name).is_some() {
            return; // keyword collision: skip the case
        }
        let mut diags = Diagnostics::new();
        let toks = lex(FileId(0), &name, &mut diags);
        assert!(!diags.has_errors());
        assert_eq!(toks[0].kind, safeflow_syntax::token::TokenKind::Ident(name.as_str().into()));
    });
}
