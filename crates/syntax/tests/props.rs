//! Property-based robustness tests for the frontend.
//!
//! The frontend must never panic: arbitrary bytes produce diagnostics, not
//! crashes. This matters because SafeFlow is run over user-supplied C code.

use proptest::prelude::*;
use safeflow_syntax::annot::parse_annotation_body;
use safeflow_syntax::diag::Diagnostics;
use safeflow_syntax::lexer::lex;
use safeflow_syntax::source::SourceMap;
use safeflow_syntax::span::{FileId, Span};
use safeflow_syntax::{parse_source, pp::VirtualFs};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer terminates with an Eof token on arbitrary input.
    #[test]
    fn lexer_never_panics(src in ".*") {
        let mut diags = Diagnostics::new();
        let toks = lex(FileId(0), &src, &mut diags);
        prop_assert!(!toks.is_empty());
        prop_assert_eq!(&toks.last().unwrap().kind, &safeflow_syntax::token::TokenKind::Eof);
    }

    /// The full pipeline (pp → lex → parse) never panics on arbitrary input.
    #[test]
    fn parser_never_panics(src in ".{0,400}") {
        let _ = parse_source("fuzz.c", &src);
    }

    /// The pipeline never panics on inputs biased toward C-looking token
    /// soup (more likely to reach deep parser paths than pure noise).
    #[test]
    fn parser_never_panics_on_c_soup(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "int", "float", "struct", "typedef", "if", "else", "while",
                "for", "return", "(", ")", "{", "}", "[", "]", ";", ",",
                "*", "&", "=", "==", "->", ".", "x", "y", "main", "42",
                "3.5", "\"s\"", "'c'", "sizeof", "switch", "case", "default",
                "/** SafeFlow Annotation assert(safe(x)) */",
            ]),
            0..80,
        )
    ) {
        let src = parts.join(" ");
        let _ = parse_source("soup.c", &src);
    }

    /// The annotation mini-parser never panics.
    #[test]
    fn annotation_parser_never_panics(body in ".{0,120}") {
        let mut sources = SourceMap::new();
        let mut diags = Diagnostics::new();
        let _ = parse_annotation_body(&body, Span::dummy(), &mut sources, &mut diags);
    }

    /// The preprocessor never panics on arbitrary directive soup.
    #[test]
    fn preprocessor_never_panics(
        lines in prop::collection::vec(
            prop::sample::select(vec![
                "#define A 1", "#define B A", "#undef A", "#ifdef A",
                "#ifndef B", "#else", "#endif", "#if 1", "#if 0", "#elif 1",
                "#include \"x.h\"", "#pragma once", "int x;", "A", "B",
            ]),
            0..30,
        )
    ) {
        let mut fs = VirtualFs::new();
        fs.add("x.h", "int from_header;");
        fs.add("main.c", lines.join("\n"));
        let _ = safeflow_syntax::parse_program("main.c", &fs);
    }

    /// Integer literals round-trip through the lexer.
    #[test]
    fn int_literals_round_trip(v in 0i64..=i64::from(i32::MAX)) {
        let mut diags = Diagnostics::new();
        let toks = lex(FileId(0), &format!("{v}"), &mut diags);
        prop_assert!(!diags.has_errors());
        prop_assert_eq!(&toks[0].kind, &safeflow_syntax::token::TokenKind::IntLit(v));
    }

    /// Identifiers round-trip through the lexer.
    #[test]
    fn identifiers_round_trip(name in "[a-zA-Z_][a-zA-Z0-9_]{0,20}") {
        prop_assume!(safeflow_syntax::token::Keyword::from_str(&name).is_none());
        let mut diags = Diagnostics::new();
        let toks = lex(FileId(0), &name, &mut diags);
        prop_assert!(!diags.has_errors());
        prop_assert_eq!(&toks[0].kind, &safeflow_syntax::token::TokenKind::Ident(name));
    }
}
