//! The SafeFlow annotation language (paper §3.1, §3.2.1, §3.4.3).
//!
//! Annotations are embedded in C comments that begin with the marker string
//! `SafeFlow Annotation`. The grammar is deliberately tiny:
//!
//! ```text
//! annotation := 'assume' '(' fact ')'
//!             | 'assert' '(' 'safe' '(' ident ')' ')'
//!             | 'shminit'
//! fact       := 'core'    '(' ident ',' aexpr ',' aexpr ')'
//!             | 'shmvar'  '(' ident ',' aexpr ')'
//!             | 'noncore' '(' ident ')'
//!             | 'label'   '(' ident [',' ident] ')'
//!             | 'declassifier' '(' ident ',' ident ')'
//!             | 'channel' '(' ident ',' aexpr ',' ident ')'
//!             | 'declassify' '(' ident ',' aexpr ',' aexpr ',' ident ')'
//! aexpr      := integer | 'sizeof' '(' type-name ')' | ident
//!             | aexpr ('+'|'-'|'*'|'/') aexpr | '(' aexpr ')'
//! ```
//!
//! The `label`/`declassifier`/`channel`/`declassify` facts belong to the
//! label-lattice policy extension: `label` declares a policy label
//! (optionally above another), `declassifier` allows monitors to relabel
//! between a declared pair, `channel` declares a non-core shared-memory
//! channel endpoint carrying a declared label, and `assume(declassify(...))`
//! is the labeled generalization of `assume(core(...))`.
//!
//! Multiple annotations may share a comment block. Size expressions are kept
//! symbolic ([`AnnExpr`]) and evaluated later against the program's type
//! layouts.

use crate::diag::Diagnostics;
use crate::lexer::lex;
use crate::source::SourceMap;
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};

/// A symbolic constant expression inside an annotation.
#[derive(Debug, Clone, PartialEq)]
pub enum AnnExpr {
    /// Integer literal.
    Int(i64),
    /// `sizeof(TypeName)` / `sizeof(struct Tag)` — resolved during binding.
    Sizeof(String),
    /// A named compile-time constant (e.g. an enum constant).
    Ident(String),
    /// Sum.
    Add(Box<AnnExpr>, Box<AnnExpr>),
    /// Difference.
    Sub(Box<AnnExpr>, Box<AnnExpr>),
    /// Product.
    Mul(Box<AnnExpr>, Box<AnnExpr>),
    /// Quotient (checked nonzero at evaluation).
    Div(Box<AnnExpr>, Box<AnnExpr>),
}

impl AnnExpr {
    /// Evaluates with `resolve` supplying values for `sizeof` and named
    /// constants. Returns `None` on unresolved names or division by zero.
    pub fn eval(&self, resolve: &dyn Fn(&AnnExpr) -> Option<i64>) -> Option<i64> {
        match self {
            AnnExpr::Int(v) => Some(*v),
            AnnExpr::Sizeof(_) | AnnExpr::Ident(_) => resolve(self),
            AnnExpr::Add(a, b) => Some(a.eval(resolve)? + b.eval(resolve)?),
            AnnExpr::Sub(a, b) => Some(a.eval(resolve)? - b.eval(resolve)?),
            AnnExpr::Mul(a, b) => Some(a.eval(resolve)? * b.eval(resolve)?),
            AnnExpr::Div(a, b) => {
                let d = b.eval(resolve)?;
                if d == 0 {
                    None
                } else {
                    Some(a.eval(resolve)? / d)
                }
            }
        }
    }
}

/// A parsed SafeFlow annotation.
#[derive(Debug, Clone, PartialEq)]
pub enum Annotation {
    /// `assume(core(ptr, offset, size))` — within the annotated (monitoring)
    /// function and its callees, the shared-memory locations reachable from
    /// `ptr` in `[offset, offset+size)` may be treated as core (paper §3.1).
    AssumeCore {
        /// Shared-memory pointer name (local or global).
        ptr: String,
        /// Byte offset of the assumed-core extent.
        offset: AnnExpr,
        /// Byte length of the assumed-core extent.
        size: AnnExpr,
        /// Source location of the annotation comment.
        span: Span,
    },
    /// `assert(safe(x))` — the local value `x` must not depend on any
    /// unmonitored non-core value (paper §3.1: critical data).
    AssertSafe {
        /// Asserted variable name.
        var: String,
        /// Source location.
        span: Span,
    },
    /// `shminit` — marks a shared-memory initializing function, exempting it
    /// (and its callees) from restriction P3 (paper §3.2.1).
    ShmInit {
        /// Source location.
        span: Span,
    },
    /// `assume(shmvar(ptr, size))` — post-condition of an initializing
    /// function: `ptr` addresses `size` bytes of shared memory
    /// (paper §3.2.1).
    ShmVar {
        /// Shared-memory pointer name.
        ptr: String,
        /// Total byte size addressed through the pointer.
        size: AnnExpr,
        /// Source location.
        span: Span,
    },
    /// `assume(noncore(x))` — the shared region named by pointer `x` (or the
    /// socket descriptor `x`, §3.4.3) may be written by non-core components.
    Noncore {
        /// Pointer or descriptor name.
        target: String,
        /// Source location.
        span: Span,
    },
    /// `label(name)` / `label(name, below)` — declares a policy label,
    /// optionally directly above `below` in the lattice order (the
    /// label-lattice policy extension).
    Label {
        /// Declared label name.
        name: String,
        /// Label this one sits directly above, if any.
        below: Option<String>,
        /// Source location.
        span: Span,
    },
    /// `declassifier(from, to)` — monitors may relabel `from`-labeled
    /// data to `to`.
    Declassifier {
        /// Source label name.
        from: String,
        /// Target label name.
        to: String,
        /// Source location.
        span: Span,
    },
    /// `channel(ptr, size, label)` — post-condition of an initializing
    /// function: `ptr` addresses `size` bytes of non-core shared memory
    /// carrying the declared `label` (a labeled channel endpoint; the
    /// labeled generalization of `shmvar` + `noncore`).
    Channel {
        /// Shared-memory pointer name.
        ptr: String,
        /// Total byte size addressed through the pointer.
        size: AnnExpr,
        /// Declared channel label.
        label: String,
        /// Source location.
        span: Span,
    },
    /// `assume(declassify(ptr, offset, size, to))` — within the annotated
    /// function and its callees, reads of the region extent are relabeled
    /// to `to` (the labeled generalization of `assume(core(...))`; needs a
    /// matching `declassifier` in the policy).
    AssumeDeclassify {
        /// Shared-memory pointer name (local or global).
        ptr: String,
        /// Byte offset of the declassified extent.
        offset: AnnExpr,
        /// Byte length of the declassified extent.
        size: AnnExpr,
        /// Target label.
        to: String,
        /// Source location.
        span: Span,
    },
}

impl Annotation {
    /// Source location of the annotation.
    pub fn span(&self) -> Span {
        match self {
            Annotation::AssumeCore { span, .. }
            | Annotation::AssertSafe { span, .. }
            | Annotation::ShmInit { span }
            | Annotation::ShmVar { span, .. }
            | Annotation::Noncore { span, .. }
            | Annotation::Label { span, .. }
            | Annotation::Declassifier { span, .. }
            | Annotation::Channel { span, .. }
            | Annotation::AssumeDeclassify { span, .. } => *span,
        }
    }

    /// Whether this annotation is function-level (applies to the whole
    /// function) rather than attached to a program point.
    pub fn is_function_level(&self) -> bool {
        !matches!(self, Annotation::AssertSafe { .. })
    }

    fn set_span(&mut self, new: Span) {
        match self {
            Annotation::AssumeCore { span, .. }
            | Annotation::AssertSafe { span, .. }
            | Annotation::ShmInit { span }
            | Annotation::ShmVar { span, .. }
            | Annotation::Noncore { span, .. }
            | Annotation::Label { span, .. }
            | Annotation::Declassifier { span, .. }
            | Annotation::Channel { span, .. }
            | Annotation::AssumeDeclassify { span, .. } => *span = new,
        }
    }
}

/// Parses the body of one annotation comment into its annotations.
///
/// `span` is the comment's location and `sources`/`diags` receive a synthetic
/// file for sub-lexing plus any syntax errors.
pub fn parse_annotation_body(
    body: &str,
    span: Span,
    sources: &mut SourceMap,
    diags: &mut Diagnostics,
) -> Vec<Annotation> {
    let file = sources.add_file("<annotation>", body.to_string());
    let mut local = Diagnostics::new();
    let tokens = lex(file, body, &mut local);
    if local.has_errors() {
        diags.error(span, "malformed SafeFlow annotation (lexical error in body)");
        return Vec::new();
    }
    let mut parser = AnnParser { tokens, pos: 0, span, diags };
    let mut out = Vec::new();
    while !parser.at_eof() {
        // Annotations may be separated by semicolons/commas or just laid out
        // on separate lines.
        if parser.eat_punct(Punct::Semi) || parser.eat_punct(Punct::Comma) {
            continue;
        }
        let start = parser.pos;
        match parser.parse_one() {
            Some(mut a) => {
                a.set_span(parser.real_span(start));
                out.push(a);
            }
            None => break,
        }
    }
    out
}

struct AnnParser<'d> {
    tokens: Vec<Token>,
    pos: usize,
    span: Span,
    diags: &'d mut Diagnostics,
}

impl<'d> AnnParser<'d> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos.min(self.tokens.len() - 1)].kind;
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        k
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    /// Maps a synthetic-file offset range back into the real source file.
    ///
    /// The sub-lexed body is a verbatim substring of the real file whose
    /// first byte sits at `self.span.lo` (the lexer's annotation-token span
    /// covers exactly the payload text), so the mapping is a plain offset
    /// shift. Dummy base spans (unit tests parse bodies with no backing
    /// file) stay dummy.
    fn map_to_real(&self, lo: u32, hi: u32) -> Span {
        if self.span.is_dummy() {
            return self.span;
        }
        Span::new(self.span.file, self.span.lo + lo, (self.span.lo + hi).min(self.span.hi))
    }

    /// The real-file span of the annotation that started at token index
    /// `start` and ran through the last consumed token.
    fn real_span(&self, start: usize) -> Span {
        let lo = self.tokens[start.min(self.tokens.len() - 1)].span.lo;
        let last = self.pos.saturating_sub(1).max(start).min(self.tokens.len() - 1);
        let hi = self.tokens[last].span.hi.max(lo);
        self.map_to_real(lo, hi)
    }

    /// The real-file span of the current token — the anchor for syntax
    /// errors inside the annotation body.
    fn here(&self) -> Span {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        self.map_to_real(t.span.lo, t.span.hi)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> bool {
        if self.eat_punct(p) {
            true
        } else {
            self.diags.error(
                self.here(),
                format!(
                    "malformed SafeFlow annotation: expected `{}`, found {}",
                    p.as_str(),
                    self.peek().describe()
                ),
            );
            false
        }
    }

    fn expect_ident(&mut self) -> Option<String> {
        let at = self.here();
        match self.bump() {
            TokenKind::Ident(s) => Some(s.as_str().to_string()),
            other => {
                self.diags.error(
                    at,
                    format!(
                        "malformed SafeFlow annotation: expected identifier, found {}",
                        other.describe()
                    ),
                );
                None
            }
        }
    }

    fn parse_one(&mut self) -> Option<Annotation> {
        let head = self.expect_ident()?;
        match head.as_str() {
            "assume" => {
                self.expect_punct(Punct::LParen).then_some(())?;
                let fact = self.parse_fact()?;
                self.expect_punct(Punct::RParen).then_some(())?;
                Some(fact)
            }
            "assert" => {
                self.expect_punct(Punct::LParen).then_some(())?;
                let inner = self.expect_ident()?;
                if inner != "safe" {
                    self.diags.error(
                        self.here(),
                        format!("assert annotations only support `safe(x)`, found `{inner}`"),
                    );
                    return None;
                }
                self.expect_punct(Punct::LParen).then_some(())?;
                let var = self.expect_ident()?;
                self.expect_punct(Punct::RParen).then_some(())?;
                self.expect_punct(Punct::RParen).then_some(())?;
                Some(Annotation::AssertSafe { var, span: self.span })
            }
            "shminit" => Some(Annotation::ShmInit { span: self.span }),
            // Tolerate writing the facts without the assume() wrapper, which
            // the paper's Figure 3 uses for post-conditions.
            "core" | "shmvar" | "noncore" | "label" | "declassifier" | "channel" | "declassify" => {
                self.pos -= 1;
                self.parse_fact()
            }
            other => {
                self.diags.error(
                    self.here(),
                    format!(
                        "unknown SafeFlow annotation `{other}` (expected assume/assert/shminit)"
                    ),
                );
                None
            }
        }
    }

    fn parse_fact(&mut self) -> Option<Annotation> {
        let head = self.expect_ident()?;
        match head.as_str() {
            "core" => {
                self.expect_punct(Punct::LParen).then_some(())?;
                let ptr = self.expect_ident()?;
                self.expect_punct(Punct::Comma).then_some(())?;
                let offset = self.parse_expr()?;
                self.expect_punct(Punct::Comma).then_some(())?;
                let size = self.parse_expr()?;
                self.expect_punct(Punct::RParen).then_some(())?;
                Some(Annotation::AssumeCore { ptr, offset, size, span: self.span })
            }
            "shmvar" => {
                self.expect_punct(Punct::LParen).then_some(())?;
                let ptr = self.expect_ident()?;
                self.expect_punct(Punct::Comma).then_some(())?;
                let size = self.parse_expr()?;
                self.expect_punct(Punct::RParen).then_some(())?;
                Some(Annotation::ShmVar { ptr, size, span: self.span })
            }
            "noncore" => {
                self.expect_punct(Punct::LParen).then_some(())?;
                let target = self.expect_ident()?;
                self.expect_punct(Punct::RParen).then_some(())?;
                Some(Annotation::Noncore { target, span: self.span })
            }
            "label" => {
                self.expect_punct(Punct::LParen).then_some(())?;
                let name = self.expect_ident()?;
                let below =
                    if self.eat_punct(Punct::Comma) { Some(self.expect_ident()?) } else { None };
                self.expect_punct(Punct::RParen).then_some(())?;
                Some(Annotation::Label { name, below, span: self.span })
            }
            "declassifier" => {
                self.expect_punct(Punct::LParen).then_some(())?;
                let from = self.expect_ident()?;
                self.expect_punct(Punct::Comma).then_some(())?;
                let to = self.expect_ident()?;
                self.expect_punct(Punct::RParen).then_some(())?;
                Some(Annotation::Declassifier { from, to, span: self.span })
            }
            "channel" => {
                self.expect_punct(Punct::LParen).then_some(())?;
                let ptr = self.expect_ident()?;
                self.expect_punct(Punct::Comma).then_some(())?;
                let size = self.parse_expr()?;
                self.expect_punct(Punct::Comma).then_some(())?;
                let label = self.expect_ident()?;
                self.expect_punct(Punct::RParen).then_some(())?;
                Some(Annotation::Channel { ptr, size, label, span: self.span })
            }
            "declassify" => {
                self.expect_punct(Punct::LParen).then_some(())?;
                let ptr = self.expect_ident()?;
                self.expect_punct(Punct::Comma).then_some(())?;
                let offset = self.parse_expr()?;
                self.expect_punct(Punct::Comma).then_some(())?;
                let size = self.parse_expr()?;
                self.expect_punct(Punct::Comma).then_some(())?;
                let to = self.expect_ident()?;
                self.expect_punct(Punct::RParen).then_some(())?;
                Some(Annotation::AssumeDeclassify { ptr, offset, size, to, span: self.span })
            }
            other => {
                self.diags.error(
                    self.here(),
                    format!(
                        "unknown assumption `{other}` (expected core/shmvar/noncore/label/\
                         declassifier/channel/declassify)"
                    ),
                );
                None
            }
        }
    }

    /// Precedence-climbing over `+ - * /`.
    fn parse_expr(&mut self) -> Option<AnnExpr> {
        self.parse_additive()
    }

    fn parse_additive(&mut self) -> Option<AnnExpr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            if self.eat_punct(Punct::Plus) {
                let rhs = self.parse_multiplicative()?;
                lhs = AnnExpr::Add(Box::new(lhs), Box::new(rhs));
            } else if self.eat_punct(Punct::Minus) {
                let rhs = self.parse_multiplicative()?;
                lhs = AnnExpr::Sub(Box::new(lhs), Box::new(rhs));
            } else {
                return Some(lhs);
            }
        }
    }

    fn parse_multiplicative(&mut self) -> Option<AnnExpr> {
        let mut lhs = self.parse_atom()?;
        loop {
            if self.eat_punct(Punct::Star) {
                let rhs = self.parse_atom()?;
                lhs = AnnExpr::Mul(Box::new(lhs), Box::new(rhs));
            } else if self.eat_punct(Punct::Slash) {
                let rhs = self.parse_atom()?;
                lhs = AnnExpr::Div(Box::new(lhs), Box::new(rhs));
            } else {
                return Some(lhs);
            }
        }
    }

    fn parse_atom(&mut self) -> Option<AnnExpr> {
        match self.bump() {
            TokenKind::IntLit(v) => Some(AnnExpr::Int(v)),
            TokenKind::Punct(Punct::LParen) => {
                let e = self.parse_expr()?;
                self.expect_punct(Punct::RParen).then_some(())?;
                Some(e)
            }
            TokenKind::Keyword(Keyword::Sizeof) => {
                self.expect_punct(Punct::LParen).then_some(())?;
                // Accept `sizeof(Name)`, `sizeof(struct Tag)`, and primitive
                // type names.
                let name = match self.bump() {
                    TokenKind::Ident(s) => s.as_str().to_string(),
                    TokenKind::Keyword(Keyword::Struct) | TokenKind::Keyword(Keyword::Union) => {
                        self.expect_ident()?
                    }
                    TokenKind::Keyword(k) => k.as_str().to_string(),
                    other => {
                        self.diags.error(
                            self.here(),
                            format!("malformed sizeof in annotation: found {}", other.describe()),
                        );
                        return None;
                    }
                };
                self.expect_punct(Punct::RParen).then_some(())?;
                Some(AnnExpr::Sizeof(name))
            }
            TokenKind::Ident(s) => Some(AnnExpr::Ident(s.as_str().to_string())),
            other => {
                self.diags.error(
                    self.here(),
                    format!("malformed annotation expression: found {}", other.describe()),
                );
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(body: &str) -> Vec<Annotation> {
        let mut sources = SourceMap::new();
        let mut diags = Diagnostics::new();
        let anns = parse_annotation_body(body, Span::dummy(), &mut sources, &mut diags);
        assert!(!diags.has_errors(), "{diags:?}");
        anns
    }

    #[test]
    fn parse_assume_core_figure2() {
        let anns = parse_ok("assume(core(noncoreCtrl, 0, sizeof(SHMData)))");
        assert_eq!(anns.len(), 1);
        match &anns[0] {
            Annotation::AssumeCore { ptr, offset, size, .. } => {
                assert_eq!(ptr, "noncoreCtrl");
                assert_eq!(*offset, AnnExpr::Int(0));
                assert_eq!(*size, AnnExpr::Sizeof("SHMData".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_assert_safe() {
        let anns = parse_ok("assert(safe(output))");
        assert_eq!(
            anns,
            vec![Annotation::AssertSafe { var: "output".into(), span: Span::dummy() }]
        );
        assert!(!anns[0].is_function_level());
    }

    #[test]
    fn parse_shminit_and_postconditions_figure3() {
        let anns = parse_ok(
            "shminit\nassume(shmvar(feedback, sizeof(SHMData)))\nassume(shmvar(noncoreCtrl, sizeof(SHMData)))\nassume(noncore(noncoreCtrl))",
        );
        assert_eq!(anns.len(), 4);
        assert!(matches!(anns[0], Annotation::ShmInit { .. }));
        assert!(matches!(&anns[1], Annotation::ShmVar { ptr, .. } if ptr == "feedback"));
        assert!(matches!(&anns[3], Annotation::Noncore { target, .. } if target == "noncoreCtrl"));
        assert!(anns.iter().all(|a| a.is_function_level()));
    }

    #[test]
    fn parse_bare_fact_without_assume() {
        let anns = parse_ok("noncore(sock)");
        assert!(matches!(&anns[0], Annotation::Noncore { target, .. } if target == "sock"));
    }

    #[test]
    fn parse_arithmetic_size() {
        let anns = parse_ok("assume(shmvar(buf, 4 * sizeof(int) + 8))");
        match &anns[0] {
            Annotation::ShmVar { size, .. } => {
                let v = size
                    .eval(&|e| match e {
                        AnnExpr::Sizeof(n) if n == "int" => Some(4),
                        _ => None,
                    })
                    .unwrap();
                assert_eq!(v, 24);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_sizeof_struct_tag() {
        let anns = parse_ok("assume(core(p, 0, sizeof(struct Data)))");
        match &anns[0] {
            Annotation::AssumeCore { size, .. } => {
                assert_eq!(*size, AnnExpr::Sizeof("Data".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_policy_label_declarations() {
        let anns =
            parse_ok("label(sensor_a)\nlabel(fused, sensor_a)\ndeclassifier(fused, trusted)");
        assert_eq!(anns.len(), 3);
        assert!(
            matches!(&anns[0], Annotation::Label { name, below: None, .. } if name == "sensor_a")
        );
        match &anns[1] {
            Annotation::Label { name, below, .. } => {
                assert_eq!(name, "fused");
                assert_eq!(below.as_deref(), Some("sensor_a"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &anns[2] {
            Annotation::Declassifier { from, to, .. } => {
                assert_eq!(from, "fused");
                assert_eq!(to, "trusted");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(anns.iter().all(|a| a.is_function_level()));
    }

    #[test]
    fn parse_labeled_channel_endpoint() {
        let anns = parse_ok("assume(channel(gyro, sizeof(SHMData), sensor_a))");
        match &anns[0] {
            Annotation::Channel { ptr, size, label, .. } => {
                assert_eq!(ptr, "gyro");
                assert_eq!(*size, AnnExpr::Sizeof("SHMData".into()));
                assert_eq!(label, "sensor_a");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_assume_declassify() {
        let anns = parse_ok("assume(declassify(gyro, 0, sizeof(SHMData), fused))");
        match &anns[0] {
            Annotation::AssumeDeclassify { ptr, offset, size, to, .. } => {
                assert_eq!(ptr, "gyro");
                assert_eq!(*offset, AnnExpr::Int(0));
                assert_eq!(*size, AnnExpr::Sizeof("SHMData".into()));
                assert_eq!(to, "fused");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn eval_division_by_zero_is_none() {
        let e = AnnExpr::Div(Box::new(AnnExpr::Int(4)), Box::new(AnnExpr::Int(0)));
        assert_eq!(e.eval(&|_| None), None);
    }

    #[test]
    fn unknown_annotation_reports_error() {
        let mut sources = SourceMap::new();
        let mut diags = Diagnostics::new();
        let anns = parse_annotation_body("frobnicate(x)", Span::dummy(), &mut sources, &mut diags);
        assert!(anns.is_empty());
        assert!(diags.has_errors());
    }

    #[test]
    fn malformed_assert_reports_error() {
        let mut sources = SourceMap::new();
        let mut diags = Diagnostics::new();
        let _ = parse_annotation_body("assert(unsafe(x))", Span::dummy(), &mut sources, &mut diags);
        assert!(diags.has_errors());
    }

    #[test]
    fn multiple_annotations_with_separators() {
        let anns = parse_ok("assume(noncore(a)); assume(noncore(b))");
        assert_eq!(anns.len(), 2);
    }

    /// Lexes `src` as a real file and parses its (single) annotation
    /// comment, returning the annotations plus the source map holding the
    /// real file — the end-to-end path the parser proper uses.
    fn parse_from_source(src: &str) -> (Vec<Annotation>, SourceMap) {
        let mut sources = SourceMap::new();
        let file = sources.add_file("fixture.c", src.to_string());
        let mut diags = Diagnostics::new();
        let toks = lex(file, src, &mut diags);
        let (body, span) = toks
            .iter()
            .find_map(|t| match &t.kind {
                TokenKind::Annotation(b) => Some((*b, t.span)),
                _ => None,
            })
            .expect("fixture must contain an annotation");
        let anns = parse_annotation_body(body.as_str(), span, &mut sources, &mut diags);
        assert!(!diags.has_errors(), "{diags:?}");
        (anns, sources)
    }

    #[test]
    fn each_annotation_gets_its_own_real_span() {
        let src = "/** SafeFlow Annotation\n    shminit\n    assume(noncore(ptr))\n*/";
        let (anns, _) = parse_from_source(src);
        assert_eq!(anns.len(), 2);
        let snip = |s: Span| &src[s.lo as usize..s.hi as usize];
        assert_eq!(snip(anns[0].span()), "shminit");
        assert_eq!(snip(anns[1].span()), "assume(noncore(ptr))");
    }

    #[test]
    fn crlf_and_tab_sources_agree_with_line_col() {
        // CRLF endings and tab indentation: the annotation's span must
        // resolve to the line/column of the annotation text itself.
        let src =
            "int x;\r\n/** SafeFlow Annotation\r\n\tassume(noncore(ptr))\r\n\tassert(safe(x))\r\n*/\r\n";
        let (anns, sources) = parse_from_source(src);
        assert_eq!(anns.len(), 2);
        let f = sources.file(anns[0].span().file);
        assert_eq!(f.name, "fixture.c");
        // `assume` starts right after the tab on line 3: character column 2.
        assert_eq!(f.line_col(anns[0].span().lo), (3, 2));
        assert_eq!(f.line_col(anns[1].span().lo), (4, 2));
        assert_eq!(sources.describe(anns[1].span()), "fixture.c:4:2");
    }

    #[test]
    fn annotation_syntax_errors_point_inside_the_annotation() {
        let src = "/** SafeFlow Annotation\r\n\tassume(noncore(42))\r\n*/";
        let mut sources = SourceMap::new();
        let file = sources.add_file("bad.c", src.to_string());
        let mut diags = Diagnostics::new();
        let toks = lex(file, src, &mut diags);
        let (body, span) = toks
            .iter()
            .find_map(|t| match &t.kind {
                TokenKind::Annotation(b) => Some((*b, t.span)),
                _ => None,
            })
            .unwrap();
        let _ = parse_annotation_body(body.as_str(), span, &mut sources, &mut diags);
        assert!(diags.has_errors());
        let err = diags.iter().find(|d| d.severity == crate::diag::Severity::Error).unwrap();
        // The anchor is the offending `42` token in the real file, not the
        // comment opener: line 2, character column 17 (after the tab).
        assert_eq!(sources.describe(err.span), "bad.c:2:17");
    }
}
