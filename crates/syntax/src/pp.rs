//! A conforming-ish C preprocessor.
//!
//! Supports what embedded control code (and the monorepo-scale corpus)
//! actually uses:
//!
//! * `#include "name"` / `#include <name>` resolved against a
//!   [`VirtualFs`] (cycle-checked, depth-limited),
//! * object-like `#define NAME tokens...` and **function-like**
//!   `#define NAME(a, b) tokens...` with argument substitution and rescan
//!   (self-referential expansion is recursion-guarded, C99 6.10.3.4-style),
//! * `#undef NAME`,
//! * `#ifdef` / `#ifndef` / `#if` / `#elif` / `#else` / `#endif` with a
//!   full integer constant-expression evaluator: arithmetic, shifts,
//!   comparisons, bitwise and logical operators (short-circuiting),
//!   `?:`, parentheses, `defined NAME` / `defined(NAME)`, character
//!   constants, and macro expansion inside conditions,
//! * correct skipped-group semantics: directives inside an inactive
//!   branch are tracked for nesting but never evaluated, never define or
//!   undefine macros, and never diagnose their conditions,
//! * `#pragma` (ignored) and `#error` (diagnosed when reached).
//!
//! Intentionally restricted (diagnosed, never silently mis-expanded):
//! stringize `#` and token-paste `##` in macro bodies, variadic macros,
//! and macro invocations whose argument list crosses a directive or
//! end-of-file boundary. See DESIGN.md §14 for the full conformance map.
//!
//! The preprocessor is the sequential spine of parallel parsing: files are
//! lexed on a worker pool, but inclusion, conditional evaluation, and
//! macro expansion replay in strict sequential order over the pre-lexed
//! token caches ([`preprocess_with_cache`]), so diagnostic order and
//! `FileId` assignment are byte-identical at every `--jobs` value.

use crate::diag::Diagnostics;
use crate::lexer::lex;
use crate::source::SourceMap;
use crate::span::Span;
use crate::token::{Punct, Token, TokenKind};
use safeflow_util::Symbol;
use std::collections::HashMap;
use std::rc::Rc;

/// Maximum `#include` nesting depth before the preprocessor assumes a cycle.
const MAX_INCLUDE_DEPTH: usize = 32;

/// Maximum macro-expansion nesting depth (distinct macros active at once).
/// Beyond this the expander emits the token unexpanded with a diagnostic —
/// deep chains are always a runaway definition, never real embedded code.
const MAX_EXPANSION_DEPTH: usize = 128;

/// Cap on tokens produced by macro expansion for one program. A chain of
/// multiplying macro bodies grows exponentially; past this cap expansion
/// degrades to pass-through (with one diagnostic) instead of exhausting
/// memory.
const MAX_EXPANDED_TOKENS: usize = 1 << 22;

/// An in-memory file system the preprocessor resolves `#include`s against.
///
/// # Examples
///
/// ```
/// use safeflow_syntax::pp::VirtualFs;
///
/// let mut fs = VirtualFs::new();
/// fs.add("shm.h", "#define SHM_SIZE 128\n");
/// assert!(fs.get("shm.h").is_some());
/// ```
#[derive(Debug, Default, Clone)]
pub struct VirtualFs {
    files: HashMap<String, String>,
}

impl VirtualFs {
    /// Creates an empty virtual file system.
    pub fn new() -> Self {
        VirtualFs::default()
    }

    /// Adds (or replaces) a file.
    pub fn add(&mut self, name: impl Into<String>, text: impl Into<String>) -> &mut Self {
        self.files.insert(name.into(), text.into());
        self
    }

    /// Fetches a file's contents by name.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.files.get(name).map(|s| s.as_str())
    }

    /// Names of all files, sorted for determinism.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.files.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }
}

/// A macro definition: object-like (`params == None`) or function-like
/// (`params == Some(...)`, possibly empty for `F()`).
#[derive(Debug)]
struct Macro {
    params: Option<Vec<Symbol>>,
    body: Vec<Token>,
}

/// A pre-lexed source file fed to [`preprocess_with_cache`]: its token
/// stream (spans already carry the pre-registered `FileId`) and the lexer
/// diagnostics for the file, surfaced once at first inclusion so emission
/// order matches the sequential preprocessor exactly.
pub(crate) struct LexedFile {
    pub(crate) tokens: Vec<Token>,
    pub(crate) diags: Option<Diagnostics>,
}

/// Runs the preprocessor on `main_name` (looked up in `fs`), returning the
/// fully expanded token stream (ending in a single `Eof`).
///
/// All files touched are registered in `sources`; problems are reported to
/// `diags`.
pub fn preprocess(
    main_name: &str,
    fs: &VirtualFs,
    sources: &mut SourceMap,
    diags: &mut Diagnostics,
) -> Vec<Token> {
    let mut cache = HashMap::new();
    preprocess_with_cache(main_name, fs, sources, diags, &mut cache)
}

/// [`preprocess`] over pre-lexed files: any file present in `cache` reuses
/// its registered `FileId` and token stream instead of being re-lexed at
/// inclusion time. This is the hook parallel translation-unit parsing uses
/// — lexing happens on the worker pool, while inclusion/expansion order
/// (and therefore diagnostic order) stays exactly sequential.
pub(crate) fn preprocess_with_cache(
    main_name: &str,
    fs: &VirtualFs,
    sources: &mut SourceMap,
    diags: &mut Diagnostics,
    cache: &mut HashMap<String, LexedFile>,
) -> Vec<Token> {
    let mut pp = Preprocessor {
        fs,
        sources,
        diags,
        cache,
        macros: HashMap::new(),
        include_stack: Vec::new(),
        out: Vec::new(),
        produced: 0,
        overflowed: false,
    };
    pp.process_file(main_name, Span::dummy());
    let eof_span = pp.out.last().map(|t| t.span).unwrap_or(Span::dummy());
    pp.out.push(Token::new(TokenKind::Eof, eof_span));
    pp.out
}

struct Preprocessor<'a> {
    fs: &'a VirtualFs,
    sources: &'a mut SourceMap,
    diags: &'a mut Diagnostics,
    cache: &'a mut HashMap<String, LexedFile>,
    macros: HashMap<Symbol, Rc<Macro>>,
    include_stack: Vec<String>,
    out: Vec<Token>,
    /// Tokens produced by macro expansion so far (the blowup guard).
    produced: usize,
    overflowed: bool,
}

/// State of one `#if`/`#ifdef` region.
#[derive(Debug, Clone, Copy)]
struct CondState {
    /// Are we currently emitting tokens in this region?
    active: bool,
    /// Has any branch of this region been taken yet? (Set immediately for
    /// groups opened inside a skipped region, so no nested branch can ever
    /// activate.)
    taken: bool,
    /// Was the *enclosing* context active?
    parent_active: bool,
    /// Has `#else` been seen? (`#elif`/`#else` after it are errors.)
    seen_else: bool,
}

impl<'a> Preprocessor<'a> {
    fn process_file(&mut self, name: &str, include_span: Span) {
        if self.include_stack.iter().any(|n| n == name) {
            self.diags.error(include_span, format!("#include cycle involving \"{name}\""));
            return;
        }
        if self.include_stack.len() >= MAX_INCLUDE_DEPTH {
            self.diags.error(include_span, "#include nesting too deep");
            return;
        }
        // A cached file reuses its pre-registered FileId and token stream
        // (taken and restored around processing — tokens are `Copy` but the
        // vector itself must survive repeated inclusion); an uncached file
        // is registered and lexed here, as the sequential path always did.
        let (tokens, cached) = match self.cache.get_mut(name) {
            Some(f) => {
                if let Some(d) = f.diags.take() {
                    self.diags.append(d);
                }
                (std::mem::take(&mut f.tokens), true)
            }
            None => {
                let Some(text) = self.fs.get(name) else {
                    self.diags.error(include_span, format!("included file \"{name}\" not found"));
                    return;
                };
                let text = text.to_string();
                let file_id = self.sources.add_file(name, text.clone());
                (lex(file_id, &text, self.diags), false)
            }
        };
        self.include_stack.push(name.to_string());

        let mut conds: Vec<CondState> = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let tok = tokens[i];
            let active = conds.last().map(|c| c.active).unwrap_or(true);
            match tok.kind {
                TokenKind::Directive(d) => {
                    self.handle_directive(d.as_str(), tok.span, &mut conds, active);
                    i += 1;
                }
                TokenKind::Eof => i += 1,
                _ if !active => i += 1,
                TokenKind::Ident(_) => {
                    // Expansion may consume following tokens (a
                    // function-like macro's argument list), so it drives
                    // the cursor itself.
                    let mut out = std::mem::take(&mut self.out);
                    let mut hide = Vec::new();
                    i = self.expand_one(&tokens, i, &mut hide, &mut out);
                    self.out = out;
                }
                _ => {
                    self.out.push(tok);
                    i += 1;
                }
            }
        }
        if !conds.is_empty() {
            self.diags.error(include_span, format!("unterminated #if/#ifdef in \"{name}\""));
        }
        self.include_stack.pop();
        if cached {
            if let Some(f) = self.cache.get_mut(name) {
                f.tokens = tokens;
            }
        }
    }

    /// Expands the token at `toks[i]` into `out`, consuming the argument
    /// list when it begins a function-like macro invocation. Returns the
    /// index of the first unconsumed token. `hide` is the stack of macro
    /// names currently being expanded: occurrences of those names are
    /// emitted verbatim ("painted blue"), which is what terminates
    /// self-referential expansion.
    fn expand_one(
        &mut self,
        toks: &[Token],
        i: usize,
        hide: &mut Vec<Symbol>,
        out: &mut Vec<Token>,
    ) -> usize {
        let tok = toks[i];
        let TokenKind::Ident(name) = tok.kind else {
            out.push(tok);
            return i + 1;
        };
        if self.overflowed || hide.contains(&name) {
            out.push(tok);
            return i + 1;
        }
        let Some(mac) = self.macros.get(&name).cloned() else {
            out.push(tok);
            return i + 1;
        };
        if hide.len() >= MAX_EXPANSION_DEPTH {
            self.diags.error(
                tok.span,
                format!("macro expansion nested deeper than {MAX_EXPANSION_DEPTH} levels"),
            );
            out.push(tok);
            return i + 1;
        }
        match &mac.params {
            None => {
                hide.push(name);
                let mut j = 0;
                while j < mac.body.len() {
                    j = self.expand_one(&mac.body, j, hide, out);
                }
                hide.pop();
                self.bump_produced(mac.body.len(), tok.span);
                i + 1
            }
            Some(params) => {
                // A function-like macro name not followed by `(` is an
                // ordinary identifier (C99 6.10.3p10).
                if !matches!(toks.get(i + 1).map(|t| t.kind), Some(TokenKind::Punct(Punct::LParen)))
                {
                    out.push(tok);
                    return i + 1;
                }
                let Some((args, after)) = self.collect_args(toks, i + 2, tok.span, name) else {
                    out.push(tok);
                    return i + 1;
                };
                // `F()` with zero declared parameters arrives as one empty
                // argument; collapse it.
                let argc = if params.is_empty() && args.len() == 1 && args[0].is_empty() {
                    0
                } else {
                    args.len()
                };
                if argc != params.len() {
                    self.diags.error(
                        tok.span,
                        format!(
                            "macro `{}` expects {} argument(s), got {argc}",
                            name.as_str(),
                            params.len()
                        ),
                    );
                    return after;
                }
                // Arguments are fully macro-expanded *before* substitution
                // (and before `name` joins the hide stack), as C does.
                let expanded_args: Vec<Vec<Token>> = args
                    .iter()
                    .map(|arg| {
                        let mut buf = Vec::new();
                        let mut j = 0;
                        while j < arg.len() {
                            j = self.expand_one(arg, j, hide, &mut buf);
                        }
                        buf
                    })
                    .collect();
                let mut subst = Vec::new();
                for bt in &mac.body {
                    match bt.kind {
                        TokenKind::Ident(p) => match params.iter().position(|q| *q == p) {
                            Some(k) => subst.extend_from_slice(&expanded_args[k]),
                            None => subst.push(*bt),
                        },
                        _ => subst.push(*bt),
                    }
                }
                self.bump_produced(subst.len(), tok.span);
                // Rescan the substituted body for further expansion.
                hide.push(name);
                let mut j = 0;
                while j < subst.len() {
                    j = self.expand_one(&subst, j, hide, out);
                }
                hide.pop();
                after
            }
        }
    }

    /// Collects a function-like macro's arguments starting just after the
    /// opening `(` at `toks[start]`. Commas at paren depth 1 separate
    /// arguments; nested parens nest. Returns the arguments and the index
    /// after the closing `)`, or `None` (with a diagnostic) if the
    /// invocation runs into a directive or end of file.
    fn collect_args(
        &mut self,
        toks: &[Token],
        start: usize,
        span: Span,
        name: Symbol,
    ) -> Option<(Vec<Vec<Token>>, usize)> {
        let mut args: Vec<Vec<Token>> = vec![Vec::new()];
        let mut depth = 1usize;
        let mut j = start;
        while j < toks.len() {
            let t = toks[j];
            match t.kind {
                TokenKind::Punct(Punct::LParen) => {
                    depth += 1;
                    args.last_mut().unwrap().push(t);
                }
                TokenKind::Punct(Punct::RParen) => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((args, j + 1));
                    }
                    args.last_mut().unwrap().push(t);
                }
                TokenKind::Punct(Punct::Comma) if depth == 1 => args.push(Vec::new()),
                TokenKind::Eof | TokenKind::Directive(_) => break,
                _ => args.last_mut().unwrap().push(t),
            }
            j += 1;
        }
        self.diags.error(
            span,
            format!(
                "unterminated invocation of macro `{}` (argument list must close before the \
                 next directive or end of file)",
                name.as_str()
            ),
        );
        None
    }

    /// Accounts `n` freshly produced expansion tokens toward the blowup cap.
    fn bump_produced(&mut self, n: usize, span: Span) {
        self.produced += n;
        if self.produced > MAX_EXPANDED_TOKENS && !self.overflowed {
            self.overflowed = true;
            self.diags.error(
                span,
                format!(
                    "macro expansion produced more than {MAX_EXPANDED_TOKENS} tokens; \
                     further expansion disabled"
                ),
            );
        }
    }

    fn handle_directive(
        &mut self,
        text: &str,
        span: Span,
        conds: &mut Vec<CondState>,
        active: bool,
    ) {
        let (word, rest) = split_word(text);
        match word {
            "include" => {
                if !active {
                    return;
                }
                let rest = rest.trim();
                let name = rest
                    .strip_prefix('"')
                    .and_then(|r| r.strip_suffix('"'))
                    .or_else(|| rest.strip_prefix('<').and_then(|r| r.strip_suffix('>')));
                match name {
                    Some(n) => self.process_file(n, span),
                    None => self.diags.error(span, "malformed #include"),
                }
            }
            "define" => {
                if !active {
                    return;
                }
                self.handle_define(rest, span);
            }
            "undef" => {
                if !active {
                    return;
                }
                let (name, _) = split_word(rest.trim_start());
                if !is_macro_name(name) {
                    self.diags.error(span, "#undef with no macro name");
                    return;
                }
                self.macros.remove(&Symbol::intern(name));
            }
            "ifdef" | "ifndef" => {
                if !active {
                    // Skipped group: track nesting only, never consult the
                    // macro table.
                    conds.push(CondState {
                        active: false,
                        taken: true,
                        parent_active: false,
                        seen_else: false,
                    });
                    return;
                }
                let (name, _) = split_word(rest.trim_start());
                if !is_macro_name(name) {
                    self.diags.error(span, format!("#{word} with no macro name"));
                }
                let defined = self.macros.contains_key(&Symbol::intern(name));
                let cond = if word == "ifdef" { defined } else { !defined };
                conds.push(CondState {
                    active: cond,
                    taken: cond,
                    parent_active: true,
                    seen_else: false,
                });
            }
            "if" => {
                if !active {
                    // Skipped group: the condition must NOT be evaluated —
                    // it may use forms only meaningful on another target.
                    conds.push(CondState {
                        active: false,
                        taken: true,
                        parent_active: false,
                        seen_else: false,
                    });
                    return;
                }
                let cond = self.eval_if_condition(rest.trim(), span);
                conds.push(CondState {
                    active: cond,
                    taken: cond,
                    parent_active: true,
                    seen_else: false,
                });
            }
            "else" => match conds.last_mut() {
                Some(c) => {
                    if c.seen_else {
                        self.diags.error(span, "#else after #else");
                    }
                    c.seen_else = true;
                    c.active = c.parent_active && !c.taken;
                    c.taken = true;
                }
                None => self.diags.error(span, "#else without matching #if"),
            },
            "elif" => match conds.last() {
                Some(c) => {
                    if c.seen_else {
                        self.diags.error(span, "#elif after #else");
                    }
                    // Evaluate the condition only when this group could
                    // still take a branch; a skipped or already-satisfied
                    // group must not diagnose (or expand macros in) its
                    // remaining conditions.
                    let live = c.parent_active && !c.taken && !c.seen_else;
                    let cond = live && self.eval_if_condition(rest.trim(), span);
                    let c = conds.last_mut().unwrap();
                    c.active = cond;
                    if cond {
                        c.taken = true;
                    }
                }
                None => self.diags.error(span, "#elif without matching #if"),
            },
            "endif" => {
                if conds.pop().is_none() {
                    self.diags.error(span, "#endif without matching #if");
                }
            }
            "pragma" => {}
            "error" => {
                if active {
                    self.diags.error(span, format!("#error {rest}"));
                }
            }
            other => {
                if active {
                    self.diags
                        .error(span, format!("unsupported preprocessor directive `#{other}`"));
                }
            }
        }
    }

    /// Parses and records one `#define` (object-like or function-like).
    fn handle_define(&mut self, rest: &str, span: Span) {
        let rest = rest.trim_start();
        let (name, after_name) = split_word(rest);
        if !is_macro_name(name) {
            self.diags.error(span, "#define with no macro name");
            return;
        }
        // Function-like iff `(` immediately follows the name, no space.
        let (params, body) = if let Some(paren_rest) = after_name.strip_prefix('(') {
            let Some(close) = paren_rest.find(')') else {
                self.diags.error(
                    span,
                    format!("unterminated parameter list in function-like macro `{name}`"),
                );
                return;
            };
            let inner = &paren_rest[..close];
            let body = &paren_rest[close + 1..];
            let mut params = Vec::new();
            if !inner.trim().is_empty() {
                for p in inner.split(',') {
                    let p = p.trim();
                    if p == "..." {
                        self.diags.error(span, format!("variadic macro `{name}` is not supported"));
                        return;
                    }
                    if !is_macro_name(p) {
                        self.diags
                            .error(span, format!("malformed parameter `{p}` in macro `{name}`"));
                        return;
                    }
                    let sym = Symbol::intern(p);
                    if params.contains(&sym) {
                        self.diags
                            .error(span, format!("duplicate parameter `{p}` in macro `{name}`"));
                        return;
                    }
                    params.push(sym);
                }
            }
            (Some(params), body)
        } else {
            (None, after_name)
        };
        let body = body.trim();
        if body.contains('#') {
            self.diags.error(
                span,
                format!("`#`/`##` operators are not supported in the body of macro `{name}`"),
            );
            return;
        }
        let mini = self.sources.add_file(format!("<macro {name}>"), body.to_string());
        let mut body_toks = lex(mini, body, self.diags);
        body_toks.retain(|t| t.kind != TokenKind::Eof);
        self.macros.insert(Symbol::intern(name), Rc::new(Macro { params, body: body_toks }));
    }

    /// Evaluates a `#if`/`#elif` condition: lex, resolve `defined`,
    /// macro-expand, then fold the C integer constant expression.
    /// Evaluation errors anchor at the directive's span and render the
    /// offending condition text.
    fn eval_if_condition(&mut self, expr: &str, span: Span) -> bool {
        if expr.is_empty() {
            self.diags.error(span, "#if with no condition");
            return false;
        }
        let mini = self.sources.add_file("<#if>", expr.to_string());
        let mut toks = lex(mini, expr, self.diags);
        toks.retain(|t| t.kind != TokenKind::Eof);
        let resolved = match self.resolve_defined(&toks) {
            Ok(r) => r,
            Err(msg) => {
                self.diags.error(span, format!("in #if condition `{expr}`: {msg}"));
                return false;
            }
        };
        let mut expanded = Vec::new();
        let mut hide = Vec::new();
        let mut j = 0;
        while j < resolved.len() {
            j = self.expand_one(&resolved, j, &mut hide, &mut expanded);
        }
        let mut ev = CondEval { toks: &expanded, i: 0, live: true, failed: None };
        let v = ev.ternary();
        if ev.failed.is_none() && ev.i < expanded.len() {
            ev.failed =
                Some(format!("unexpected {} after expression", expanded[ev.i].kind.describe()));
        }
        match ev.failed {
            Some(msg) => {
                self.diags.error(span, format!("in #if condition `{expr}`: {msg}"));
                false
            }
            None => v != 0,
        }
    }

    /// Replaces `defined NAME` / `defined(NAME)` with `1`/`0` tokens
    /// before macro expansion, per C99 6.10.1p1.
    fn resolve_defined(&mut self, toks: &[Token]) -> Result<Vec<Token>, String> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            let t = toks[i];
            let is_defined = matches!(t.kind, TokenKind::Ident(s) if s == "defined");
            if !is_defined {
                out.push(t);
                i += 1;
                continue;
            }
            let (name, consumed) = match toks.get(i + 1).map(|t| t.kind) {
                Some(TokenKind::Ident(n)) => (n, 2),
                Some(TokenKind::Punct(Punct::LParen)) => {
                    match (toks.get(i + 2).map(|t| t.kind), toks.get(i + 3).map(|t| t.kind)) {
                        (Some(TokenKind::Ident(n)), Some(TokenKind::Punct(Punct::RParen))) => {
                            (n, 4)
                        }
                        _ => return Err("malformed `defined` operator".to_string()),
                    }
                }
                _ => return Err("expected a macro name after `defined`".to_string()),
            };
            let v = i64::from(self.macros.contains_key(&name));
            out.push(Token::new(TokenKind::IntLit(v), t.span));
            i += consumed;
        }
        Ok(out)
    }
}

/// Evaluator for preprocessed `#if` conditions: a precedence-climbing
/// parser over the expanded token list, computing with wrapping `i64`
/// arithmetic (the paper's targets are ILP32, but conditional folds only
/// compare small configuration constants). Remaining identifiers and
/// keywords evaluate to 0, as C requires. The first error wins and is
/// carried out-of-band in `failed`; `live` suppresses division-by-zero in
/// short-circuited operands (`0 && 1/0` is fine, as in C).
struct CondEval<'a> {
    toks: &'a [Token],
    i: usize,
    live: bool,
    failed: Option<String>,
}

impl<'a> CondEval<'a> {
    fn fail(&mut self, msg: String) -> i64 {
        if self.failed.is_none() {
            self.failed = Some(msg);
        }
        0
    }

    fn peek_punct(&self) -> Option<Punct> {
        match self.toks.get(self.i).map(|t| t.kind) {
            Some(TokenKind::Punct(p)) => Some(p),
            _ => None,
        }
    }

    fn ternary(&mut self) -> i64 {
        let cond = self.binary(0);
        if self.peek_punct() != Some(Punct::Question) {
            return cond;
        }
        self.i += 1;
        let outer_live = self.live;
        self.live = outer_live && cond != 0;
        let then = self.ternary();
        self.live = outer_live;
        if self.peek_punct() != Some(Punct::Colon) {
            return self.fail("expected `:` in conditional".to_string());
        }
        self.i += 1;
        self.live = outer_live && cond == 0;
        let els = self.ternary();
        self.live = outer_live;
        if cond != 0 {
            then
        } else {
            els
        }
    }

    /// Binding power of a binary operator, or `None` if `p` is not one.
    fn prec(p: Punct) -> Option<u8> {
        Some(match p {
            Punct::PipePipe => 1,
            Punct::AmpAmp => 2,
            Punct::Pipe => 3,
            Punct::Caret => 4,
            Punct::Amp => 5,
            Punct::EqEq | Punct::Ne => 6,
            Punct::Lt | Punct::Gt | Punct::Le | Punct::Ge => 7,
            Punct::Shl | Punct::Shr => 8,
            Punct::Plus | Punct::Minus => 9,
            Punct::Star | Punct::Slash | Punct::Percent => 10,
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> i64 {
        let mut lhs = self.unary();
        while let Some(op) = self.peek_punct() {
            let Some(prec) = Self::prec(op) else { break };
            if prec < min_prec {
                break;
            }
            self.i += 1;
            // Logical operators short-circuit: the right operand still
            // parses, but arithmetic faults in it are not errors.
            let outer_live = self.live;
            match op {
                Punct::AmpAmp => self.live = outer_live && lhs != 0,
                Punct::PipePipe => self.live = outer_live && lhs == 0,
                _ => {}
            }
            let rhs = self.binary(prec + 1);
            self.live = outer_live;
            lhs = self.apply(op, lhs, rhs);
            if self.failed.is_some() {
                return 0;
            }
        }
        lhs
    }

    fn apply(&mut self, op: Punct, a: i64, b: i64) -> i64 {
        match op {
            Punct::PipePipe => i64::from(a != 0 || b != 0),
            Punct::AmpAmp => i64::from(a != 0 && b != 0),
            Punct::Pipe => a | b,
            Punct::Caret => a ^ b,
            Punct::Amp => a & b,
            Punct::EqEq => i64::from(a == b),
            Punct::Ne => i64::from(a != b),
            Punct::Lt => i64::from(a < b),
            Punct::Gt => i64::from(a > b),
            Punct::Le => i64::from(a <= b),
            Punct::Ge => i64::from(a >= b),
            Punct::Shl => a.wrapping_shl(b as u32 & 63),
            Punct::Shr => a.wrapping_shr(b as u32 & 63),
            Punct::Plus => a.wrapping_add(b),
            Punct::Minus => a.wrapping_sub(b),
            Punct::Star => a.wrapping_mul(b),
            Punct::Slash | Punct::Percent => {
                if b == 0 {
                    if self.live {
                        return self.fail("division by zero".to_string());
                    }
                    return 0;
                }
                if op == Punct::Slash {
                    a.wrapping_div(b)
                } else {
                    a.wrapping_rem(b)
                }
            }
            _ => unreachable!("apply called on non-binary operator"),
        }
    }

    fn unary(&mut self) -> i64 {
        match self.peek_punct() {
            Some(Punct::Bang) => {
                self.i += 1;
                i64::from(self.unary() == 0)
            }
            Some(Punct::Tilde) => {
                self.i += 1;
                !self.unary()
            }
            Some(Punct::Minus) => {
                self.i += 1;
                self.unary().wrapping_neg()
            }
            Some(Punct::Plus) => {
                self.i += 1;
                self.unary()
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> i64 {
        let Some(tok) = self.toks.get(self.i) else {
            return self.fail("unexpected end of condition".to_string());
        };
        match tok.kind {
            TokenKind::IntLit(v) => {
                self.i += 1;
                v
            }
            TokenKind::CharLit(v) => {
                self.i += 1;
                v
            }
            // Identifiers surviving macro expansion (and keywords, which
            // have no meaning at preprocessing time) evaluate to 0.
            TokenKind::Ident(_) | TokenKind::Keyword(_) => {
                self.i += 1;
                0
            }
            TokenKind::Punct(Punct::LParen) => {
                self.i += 1;
                let v = self.ternary();
                if self.peek_punct() == Some(Punct::RParen) {
                    self.i += 1;
                    v
                } else {
                    self.fail("expected `)` in condition".to_string())
                }
            }
            TokenKind::FloatLit(_) => {
                self.fail("floating-point constants are not allowed in #if".to_string())
            }
            ref other => self.fail(format!("unexpected {}", other.describe())),
        }
    }
}

/// Whether `s` is a valid macro (or macro-parameter) name.
fn is_macro_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn split_word(s: &str) -> (&str, &str) {
    let s = s.trim_start();
    match s.find(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(main: &str, files: &[(&str, &str)]) -> (Vec<TokenKind>, Diagnostics) {
        let mut fs = VirtualFs::new();
        for (n, t) in files {
            fs.add(*n, *t);
        }
        let mut sources = SourceMap::new();
        let mut diags = Diagnostics::new();
        let toks = preprocess(main, &fs, &mut sources, &mut diags);
        (toks.into_iter().map(|t| t.kind).collect(), diags)
    }

    fn idents(toks: &[TokenKind]) -> Vec<String> {
        toks.iter()
            .filter_map(|t| match t {
                TokenKind::Ident(s) => Some(s.as_str().to_string()),
                _ => None,
            })
            .collect()
    }

    fn ints(toks: &[TokenKind]) -> Vec<i64> {
        toks.iter()
            .filter_map(|t| match t {
                TokenKind::IntLit(v) => Some(*v),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn object_macro_expansion() {
        let (toks, d) = run("m.c", &[("m.c", "#define N 42\nint x = N;")]);
        assert!(!d.has_errors());
        assert!(toks.contains(&TokenKind::IntLit(42)));
        assert!(!idents(&toks).contains(&"N".to_string()));
    }

    #[test]
    fn nested_macro_expansion() {
        let (toks, d) = run("m.c", &[("m.c", "#define A B\n#define B 7\nint x = A;")]);
        assert!(!d.has_errors());
        assert!(toks.contains(&TokenKind::IntLit(7)));
    }

    #[test]
    fn self_referential_macro_terminates() {
        let (toks, d) = run("m.c", &[("m.c", "#define X X\nint X;")]);
        assert!(!d.has_errors());
        assert!(idents(&toks).contains(&"X".to_string()));
    }

    #[test]
    fn function_like_macro_expands_arguments() {
        let (toks, d) = run("m.c", &[("m.c", "#define SQ(x) ((x)*(x))\nint y = SQ(3);")]);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(ints(&toks), vec![3, 3]);
        assert!(!idents(&toks).contains(&"SQ".to_string()));
    }

    #[test]
    fn function_like_macro_multi_arg_and_nested_calls() {
        let src =
            "#define ADD(a, b) ((a) + (b))\n#define TWICE(x) ADD(x, x)\nint y = TWICE(ADD(1, 2));";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors(), "{d:?}");
        // TWICE(ADD(1,2)) -> ((ADD(1,2)) + (ADD(1,2))) -> ((((1)+(2))) + (((1)+(2))))
        assert_eq!(ints(&toks), vec![1, 2, 1, 2]);
        assert!(!idents(&toks).iter().any(|s| s == "ADD" || s == "TWICE"));
    }

    #[test]
    fn function_like_name_without_parens_is_plain_ident() {
        let (toks, d) = run("m.c", &[("m.c", "#define F(x) (x)\nint F;")]);
        assert!(!d.has_errors());
        assert!(idents(&toks).contains(&"F".to_string()));
    }

    #[test]
    fn function_like_arity_mismatch_diagnosed() {
        let (_, d) = run("m.c", &[("m.c", "#define ADD(a, b) ((a)+(b))\nint y = ADD(1);")]);
        assert!(d.has_errors());
        assert!(format!("{d:?}").contains("expects 2 argument(s), got 1"), "{d:?}");
    }

    #[test]
    fn function_like_recursion_is_guarded() {
        let src = "#define F(x) F(x)\nint y = F(1);";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors(), "{d:?}");
        // F(1) expands to F(1); the inner F is painted blue and survives.
        assert!(idents(&toks).contains(&"F".to_string()));
        assert!(toks.contains(&TokenKind::IntLit(1)));
    }

    #[test]
    fn mutually_recursive_function_macros_terminate() {
        let src = "#define A(x) B(x)\n#define B(x) A(x)\nint y = A(1);";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors(), "{d:?}");
        assert!(idents(&toks).contains(&"A".to_string()));
    }

    #[test]
    fn zero_arg_function_macro() {
        let (toks, d) = run("m.c", &[("m.c", "#define NIL() 0\nint y = NIL();")]);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(ints(&toks), vec![0]);
    }

    #[test]
    fn commas_in_nested_parens_do_not_split_args() {
        let src = "#define FST(p, q) (p)\n#define PAIR(a, b) (a, b)\nint y = FST(PAIR(1, 2), 3);";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(ints(&toks), vec![1, 2]);
    }

    #[test]
    fn unterminated_invocation_diagnosed() {
        let (_, d) = run("m.c", &[("m.c", "#define F(x) (x)\nint y = F(1\n#define Z 2\n;")]);
        assert!(d.has_errors());
        assert!(format!("{d:?}").contains("unterminated invocation"), "{d:?}");
    }

    #[test]
    fn variadic_and_paste_are_rejected() {
        let (_, d) = run("m.c", &[("m.c", "#define V(a, ...) (a)\n")]);
        assert!(d.has_errors());
        let (_, d) = run("m.c", &[("m.c", "#define P(a, b) a ## b\n")]);
        assert!(d.has_errors());
    }

    #[test]
    fn include_splices_file() {
        let (toks, d) = run("main.c", &[("main.c", "#include \"h.h\"\nint b;"), ("h.h", "int a;")]);
        assert!(!d.has_errors());
        assert_eq!(idents(&toks), vec!["a", "b"]);
    }

    #[test]
    fn include_cycle_detected() {
        let (_, d) = run("a.h", &[("a.h", "#include \"b.h\""), ("b.h", "#include \"a.h\"")]);
        assert!(d.has_errors());
    }

    #[test]
    fn missing_include_reported() {
        let (_, d) = run("m.c", &[("m.c", "#include \"nope.h\"")]);
        assert!(d.has_errors());
    }

    #[test]
    fn macro_defined_in_one_file_used_in_another() {
        let files: &[(&str, &str)] = &[
            ("main.c", "#define SCALE(x) ((x) * 4)\n#include \"u.c\"\n"),
            ("u.c", "int y = SCALE(2);"),
        ];
        let (toks, d) = run("main.c", files);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(ints(&toks), vec![2, 4]);
    }

    #[test]
    fn ifdef_branches() {
        let src = "#define YES 1\n#ifdef YES\nint a;\n#else\nint b;\n#endif\n#ifdef NO\nint c;\n#else\nint d;\n#endif";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors());
        assert_eq!(idents(&toks), vec!["a", "d"]);
    }

    #[test]
    fn ifndef_and_undef() {
        let src = "#define F 1\n#undef F\n#ifndef F\nint ok;\n#endif";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors());
        assert_eq!(idents(&toks), vec!["ok"]);
    }

    #[test]
    fn if_integer_conditions() {
        let src = "#if 0\nint a;\n#elif 1\nint b;\n#else\nint c;\n#endif";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors());
        assert_eq!(idents(&toks), vec!["b"]);
    }

    #[test]
    fn if_defined_condition() {
        let src = "#define HAVE 1\n#if defined(HAVE)\nint y;\n#endif\n#if !defined(MISSING)\nint z;\n#endif";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors());
        assert_eq!(idents(&toks), vec!["y", "z"]);
    }

    #[test]
    fn if_defined_with_space_before_paren() {
        // Regression (ISSUE 8): `defined (X)` with whitespace before the
        // paren used to fall into a string-prefix branch that looked up
        // the literal symbol "(X)" and always evaluated false.
        let src =
            "#define X 1\n#if defined (X)\nint yes;\n#endif\n#if defined ( X )\nint also;\n#endif";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(idents(&toks), vec!["yes", "also"]);
    }

    #[test]
    fn if_arithmetic_and_logical_operators() {
        let cases: &[(&str, bool)] = &[
            ("1 + 1 == 2", true),
            ("2 * 3 > 5", true),
            ("7 / 2 == 3", true),
            ("7 % 2 == 1", true),
            ("1 << 4 == 16", true),   // shift binds tighter than == in C
            ("1 << (4 == 16)", true), // 1 << 0
            ("(16 >> 2) == 4", true),
            ("-1 < 0", true),
            ("!0 && !!1", true),
            ("1 && 0", false),
            ("0 || 2", true),
            ("~0 == -1", true),
            ("(1 ? 10 : 20) == 10", true),
            ("(0 ? 10 : 20) == 20", true),
            ("'A' == 65", true),
            ("(3 | 4) == 7 && (3 & 2) == 2 && (3 ^ 1) == 2", true),
            ("1 == 1 == 1", true), // (1 == 1) == 1
            ("10 >= 10 && 10 <= 10 && 9 != 10", true),
        ];
        for (cond, expect) in cases {
            let src = format!("#if {cond}\nint yes;\n#else\nint no;\n#endif");
            let (toks, d) = run("m.c", &[("m.c", src.as_str())]);
            assert!(!d.has_errors(), "`{cond}`: {d:?}");
            let want = if *expect { "yes" } else { "no" };
            assert_eq!(idents(&toks), vec![want], "condition `{cond}`");
        }
    }

    #[test]
    fn if_macro_expansion_in_condition() {
        let src = "#define LEVEL 3\n#define DOUBLE(x) ((x) * 2)\n#if DOUBLE(LEVEL) == 6\nint yes;\n#endif";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(idents(&toks), vec!["yes"]);
    }

    #[test]
    fn if_undefined_identifier_is_zero() {
        let src = "#if UNDEFINED_THING\nint a;\n#else\nint b;\n#endif\n#if UNDEFINED_THING == 0\nint c;\n#endif";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(idents(&toks), vec!["b", "c"]);
    }

    #[test]
    fn if_short_circuit_suppresses_division_by_zero() {
        let src =
            "#define N 0\n#if defined(N) && N != 0 && 10 / N > 1\nint a;\n#else\nint b;\n#endif";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(idents(&toks), vec!["b"]);
    }

    #[test]
    fn if_division_by_zero_diagnosed_when_live() {
        let (_, d) = run("m.c", &[("m.c", "#if 1 / 0\nint a;\n#endif")]);
        assert!(d.has_errors());
        assert!(format!("{d:?}").contains("division by zero"), "{d:?}");
    }

    #[test]
    fn if_malformed_condition_diagnosed() {
        for src in [
            "#if 1 +\nint a;\n#endif",
            "#if (1\nint a;\n#endif",
            "#if 1 2\nint a;\n#endif",
            "#if\nint a;\n#endif",
        ] {
            let (_, d) = run("m.c", &[("m.c", src)]);
            assert!(d.has_errors(), "`{src}` must diagnose");
        }
    }

    #[test]
    fn skipped_group_does_not_evaluate_nested_conditions() {
        // Regression (ISSUE 8): conditions inside a skipped group used to
        // be evaluated anyway, so target-specific forms the old evaluator
        // did not support produced spurious errors.
        let src = "#if 0\n#if SOME_TARGET_FLAG(3)\nint a;\n#endif\n#elif 0\n#else\n#endif\nint x;";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(idents(&toks), vec!["x"]);
    }

    #[test]
    fn skipped_group_does_not_divide_by_zero() {
        let src = "#if 0\n#if 1 / 0\nint a;\n#endif\n#endif\nint x;";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(idents(&toks), vec!["x"]);
    }

    #[test]
    fn taken_branch_suppresses_later_elif_evaluation() {
        // Once a branch is taken, later #elif conditions are dead and must
        // not be evaluated (or diagnosed).
        let src = "#if 1\nint a;\n#elif BOGUS(\nint b;\n#endif";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(idents(&toks), vec!["a"]);
    }

    #[test]
    fn nested_elif_chains() {
        let src = "#define MODE 2\n\
                   #if MODE == 1\nint m1;\n\
                   #elif MODE == 2\n\
                   #if defined(SUB)\nint s1;\n#elif MODE > 1\nint s2;\n#else\nint s3;\n#endif\n\
                   #elif MODE == 3\nint m3;\n\
                   #else\nint me;\n#endif";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(idents(&toks), vec!["s2"]);
    }

    #[test]
    fn else_after_else_diagnosed() {
        let (_, d) = run("m.c", &[("m.c", "#if 0\n#else\n#else\n#endif")]);
        assert!(d.has_errors());
        let (_, d) = run("m.c", &[("m.c", "#if 0\n#else\n#elif 1\n#endif")]);
        assert!(d.has_errors());
    }

    #[test]
    fn directive_with_trailing_comment_strips_cleanly() {
        // Regression (ISSUE 8): trailing comments on directive lines must
        // not leak into the macro name.
        let src = "#define FOO 1\n#undef FOO /* why */\n#ifdef FOO\nint bad;\n#endif\nint ok;";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(idents(&toks), vec!["ok"]);

        let src = "#define FOO 1\n#ifdef FOO // note\nint yes;\n#endif";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(idents(&toks), vec!["yes"]);
    }

    #[test]
    fn function_like_macro_rejected_forms_still_diagnose() {
        // The restricted forms stay restricted: variadic + paste.
        let (_, d) = run("m.c", &[("m.c", "#define SQ(x, ...) ((x)*(x))\n")]);
        assert!(d.has_errors());
    }

    #[test]
    fn unterminated_if_reported() {
        let (_, d) = run("m.c", &[("m.c", "#ifdef X\nint a;\n")]);
        assert!(d.has_errors());
    }

    #[test]
    fn error_directive_in_inactive_branch_ignored() {
        let src = "#ifdef NOPE\n#error should not fire\n#endif\nint x;";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors());
        assert_eq!(idents(&toks), vec!["x"]);
    }

    #[test]
    fn guard_pattern_include_twice() {
        let h = "#ifndef H_H\n#define H_H 1\nint once;\n#endif";
        let main = "#include \"h.h\"\n#include \"h2.h\"";
        // h2.h includes h.h again; the guard must prevent a duplicate.
        let (toks, d) =
            run("main.c", &[("main.c", main), ("h.h", h), ("h2.h", "#include \"h.h\"")]);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(idents(&toks), vec!["once"]);
    }

    #[test]
    fn macros_inactive_branch_not_defined() {
        let src =
            "#ifdef NOPE\n#define HIDDEN 5\n#endif\n#ifdef HIDDEN\nint bad;\n#endif\nint good;";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors());
        assert_eq!(idents(&toks), vec!["good"]);
    }

    #[test]
    fn expansion_depth_guard_fires() {
        // 200 chained object macros: deeper than MAX_EXPANSION_DEPTH.
        let mut src = String::new();
        for i in 0..200 {
            src.push_str(&format!("#define D{i} D{}\n", i + 1));
        }
        src.push_str("#define D200 1\nint x = D0;\n");
        let (_, d) = run("m.c", &[("m.c", src.as_str())]);
        assert!(d.has_errors());
        assert!(format!("{d:?}").contains("nested deeper"), "{d:?}");
    }

    #[test]
    fn annotations_survive_preprocessing() {
        let src = "/** SafeFlow Annotation assert(safe(x)) */ int x;";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors());
        assert!(matches!(toks[0], TokenKind::Annotation(_)));
    }
}
