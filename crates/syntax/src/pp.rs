//! A lightweight C preprocessor.
//!
//! Supports what embedded control code in the paper's corpus needs:
//!
//! * `#include "name"` resolved against a [`VirtualFs`] (cycle-checked),
//! * object-like `#define NAME tokens...` / `#undef NAME`,
//! * `#ifdef` / `#ifndef` / `#if <int>` / `#if defined(X)` / `#else` /
//!   `#endif`,
//! * `#pragma` (ignored) and `#error` (diagnosed when reached).
//!
//! Function-like macros are rejected with a diagnostic: the paper's language
//! restrictions target analyzable embedded C, and none of the corpus needs
//! them.

use crate::diag::Diagnostics;
use crate::lexer::lex;
use crate::source::SourceMap;
use crate::token::{Token, TokenKind};
use safeflow_util::Symbol;
use std::collections::HashMap;

/// Maximum `#include` nesting depth before the preprocessor assumes a cycle.
const MAX_INCLUDE_DEPTH: usize = 32;

/// An in-memory file system the preprocessor resolves `#include`s against.
///
/// # Examples
///
/// ```
/// use safeflow_syntax::pp::VirtualFs;
///
/// let mut fs = VirtualFs::new();
/// fs.add("shm.h", "#define SHM_SIZE 128\n");
/// assert!(fs.get("shm.h").is_some());
/// ```
#[derive(Debug, Default, Clone)]
pub struct VirtualFs {
    files: HashMap<String, String>,
}

impl VirtualFs {
    /// Creates an empty virtual file system.
    pub fn new() -> Self {
        VirtualFs::default()
    }

    /// Adds (or replaces) a file.
    pub fn add(&mut self, name: impl Into<String>, text: impl Into<String>) -> &mut Self {
        self.files.insert(name.into(), text.into());
        self
    }

    /// Fetches a file's contents by name.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.files.get(name).map(|s| s.as_str())
    }

    /// Names of all files, sorted for determinism.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.files.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }
}

#[derive(Debug, Clone)]
struct Macro {
    body: Vec<Token>,
}

/// A pre-lexed source file fed to [`preprocess_with_cache`]: its token
/// stream (spans already carry the pre-registered `FileId`) and the lexer
/// diagnostics for the file, surfaced once at first inclusion so emission
/// order matches the sequential preprocessor exactly.
pub(crate) struct LexedFile {
    pub(crate) tokens: Vec<Token>,
    pub(crate) diags: Option<Diagnostics>,
}

/// Runs the preprocessor on `main_name` (looked up in `fs`), returning the
/// fully expanded token stream (ending in a single `Eof`).
///
/// All files touched are registered in `sources`; problems are reported to
/// `diags`.
pub fn preprocess(
    main_name: &str,
    fs: &VirtualFs,
    sources: &mut SourceMap,
    diags: &mut Diagnostics,
) -> Vec<Token> {
    let mut cache = HashMap::new();
    preprocess_with_cache(main_name, fs, sources, diags, &mut cache)
}

/// [`preprocess`] over pre-lexed files: any file present in `cache` reuses
/// its registered `FileId` and token stream instead of being re-lexed at
/// inclusion time. This is the hook parallel translation-unit parsing uses
/// — lexing happens on the worker pool, while inclusion/expansion order
/// (and therefore diagnostic order) stays exactly sequential.
pub(crate) fn preprocess_with_cache(
    main_name: &str,
    fs: &VirtualFs,
    sources: &mut SourceMap,
    diags: &mut Diagnostics,
    cache: &mut HashMap<String, LexedFile>,
) -> Vec<Token> {
    let mut pp = Preprocessor {
        fs,
        sources,
        diags,
        cache,
        macros: HashMap::new(),
        include_stack: Vec::new(),
        out: Vec::new(),
    };
    pp.process_file(main_name, crate::span::Span::dummy());
    let eof_span = pp.out.last().map(|t| t.span).unwrap_or(crate::span::Span::dummy());
    pp.out.push(Token::new(TokenKind::Eof, eof_span));
    pp.out
}

struct Preprocessor<'a> {
    fs: &'a VirtualFs,
    sources: &'a mut SourceMap,
    diags: &'a mut Diagnostics,
    cache: &'a mut HashMap<String, LexedFile>,
    macros: HashMap<Symbol, Macro>,
    include_stack: Vec<String>,
    out: Vec<Token>,
}

/// State of one `#if`/`#ifdef` region.
#[derive(Debug, Clone, Copy)]
struct CondState {
    /// Are we currently emitting tokens in this region?
    active: bool,
    /// Has any branch of this region been taken yet?
    taken: bool,
    /// Was the *enclosing* context active?
    parent_active: bool,
}

impl<'a> Preprocessor<'a> {
    fn process_file(&mut self, name: &str, include_span: crate::span::Span) {
        if self.include_stack.iter().any(|n| n == name) {
            self.diags.error(include_span, format!("#include cycle involving \"{name}\""));
            return;
        }
        if self.include_stack.len() >= MAX_INCLUDE_DEPTH {
            self.diags.error(include_span, "#include nesting too deep");
            return;
        }
        // A cached file reuses its pre-registered FileId and token stream
        // (taken and restored around processing — tokens are `Copy` but the
        // vector itself must survive repeated inclusion); an uncached file
        // is registered and lexed here, as the sequential path always did.
        let (tokens, cached) = match self.cache.get_mut(name) {
            Some(f) => {
                if let Some(d) = f.diags.take() {
                    self.diags.append(d);
                }
                (std::mem::take(&mut f.tokens), true)
            }
            None => {
                let Some(text) = self.fs.get(name) else {
                    self.diags.error(include_span, format!("included file \"{name}\" not found"));
                    return;
                };
                let text = text.to_string();
                let file_id = self.sources.add_file(name, text.clone());
                (lex(file_id, &text, self.diags), false)
            }
        };
        self.include_stack.push(name.to_string());

        let mut conds: Vec<CondState> = Vec::new();
        for tok in tokens.iter().copied() {
            let active = conds.last().map(|c| c.active).unwrap_or(true);
            match tok.kind {
                TokenKind::Directive(d) => {
                    self.handle_directive(d.as_str(), tok.span, &mut conds, active);
                }
                TokenKind::Eof => {}
                TokenKind::Ident(name) if active => {
                    let mut in_progress = Vec::new();
                    self.expand_ident(name, tok, &mut in_progress);
                }
                _ if active => self.out.push(tok),
                _ => {}
            }
        }
        if !conds.is_empty() {
            self.diags.error(include_span, format!("unterminated #if/#ifdef in \"{name}\""));
        }
        self.include_stack.pop();
        if cached {
            if let Some(f) = self.cache.get_mut(name) {
                f.tokens = tokens;
            }
        }
    }

    fn expand_ident(&mut self, name: Symbol, tok: Token, in_progress: &mut Vec<Symbol>) {
        if in_progress.contains(&name) {
            self.out.push(tok);
            return;
        }
        let Some(mac) = self.macros.get(&name).cloned() else {
            self.out.push(tok);
            return;
        };
        in_progress.push(name);
        for body_tok in mac.body {
            match body_tok.kind {
                TokenKind::Ident(inner) => self.expand_ident(inner, body_tok, in_progress),
                _ => self.out.push(body_tok),
            }
        }
        in_progress.pop();
    }

    fn handle_directive(
        &mut self,
        text: &str,
        span: crate::span::Span,
        conds: &mut Vec<CondState>,
        active: bool,
    ) {
        let (word, rest) = split_word(text);
        match word {
            "include" => {
                if !active {
                    return;
                }
                let rest = rest.trim();
                let name = rest
                    .strip_prefix('"')
                    .and_then(|r| r.strip_suffix('"'))
                    .or_else(|| rest.strip_prefix('<').and_then(|r| r.strip_suffix('>')));
                match name {
                    Some(n) => self.process_file(n, span),
                    None => self.diags.error(span, "malformed #include"),
                }
            }
            "define" => {
                if !active {
                    return;
                }
                let (name, body) = split_word(rest.trim_start());
                if name.is_empty() {
                    self.diags.error(span, "#define with no macro name");
                    return;
                }
                if body.starts_with('(')
                    || rest.trim_start().len() > name.len()
                        && rest.trim_start().as_bytes().get(name.len()) == Some(&b'(')
                {
                    self.diags.error(
                        span,
                        format!("function-like macro `{name}` is not supported by the restricted preprocessor"),
                    );
                    return;
                }
                let mini = self.sources.add_file(format!("<macro {name}>"), body.to_string());
                let mut body_toks = lex(mini, body, self.diags);
                body_toks.retain(|t| t.kind != TokenKind::Eof);
                self.macros.insert(Symbol::intern(name), Macro { body: body_toks });
            }
            "undef" => {
                if !active {
                    return;
                }
                self.macros.remove(&Symbol::intern(rest.trim()));
            }
            "ifdef" | "ifndef" => {
                let defined = self.macros.contains_key(&Symbol::intern(rest.trim()));
                let cond = if word == "ifdef" { defined } else { !defined };
                conds.push(CondState {
                    active: active && cond,
                    taken: active && cond,
                    parent_active: active,
                });
            }
            "if" => {
                let cond = self.eval_if_condition(rest.trim(), span);
                conds.push(CondState {
                    active: active && cond,
                    taken: active && cond,
                    parent_active: active,
                });
            }
            "else" => match conds.last_mut() {
                Some(c) => {
                    c.active = c.parent_active && !c.taken;
                    c.taken = true;
                }
                None => self.diags.error(span, "#else without matching #if"),
            },
            "elif" => {
                let cond = self.eval_if_condition(rest.trim(), span);
                match conds.last_mut() {
                    Some(c) => {
                        c.active = c.parent_active && !c.taken && cond;
                        if c.active {
                            c.taken = true;
                        }
                    }
                    None => self.diags.error(span, "#elif without matching #if"),
                }
            }
            "endif" => {
                if conds.pop().is_none() {
                    self.diags.error(span, "#endif without matching #if");
                }
            }
            "pragma" => {}
            "error" => {
                if active {
                    self.diags.error(span, format!("#error {rest}"));
                }
            }
            other => {
                if active {
                    self.diags
                        .error(span, format!("unsupported preprocessor directive `#{other}`"));
                }
            }
        }
    }

    fn eval_if_condition(&mut self, expr: &str, span: crate::span::Span) -> bool {
        let expr = expr.trim();
        if let Ok(v) = expr.parse::<i64>() {
            return v != 0;
        }
        if let Some(inner) = expr
            .strip_prefix("defined(")
            .and_then(|r| r.strip_suffix(')'))
            .or_else(|| expr.strip_prefix("defined ").map(|r| r.trim()))
        {
            return self.macros.contains_key(&Symbol::intern(inner.trim()));
        }
        if let Some(inner) = expr.strip_prefix("!defined(").and_then(|r| r.strip_suffix(')')) {
            return !self.macros.contains_key(&Symbol::intern(inner.trim()));
        }
        // Fall back: a bare macro name that expands to an int.
        if let Some(mac) = self.macros.get(&Symbol::intern(expr)) {
            if let Some(Token { kind: TokenKind::IntLit(v), .. }) = mac.body.first() {
                return *v != 0;
            }
        }
        self.diags.error(
            span,
            format!("unsupported #if condition `{expr}` (only integers and defined() are allowed)"),
        );
        false
    }
}

fn split_word(s: &str) -> (&str, &str) {
    let s = s.trim_start();
    match s.find(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(main: &str, files: &[(&str, &str)]) -> (Vec<TokenKind>, Diagnostics) {
        let mut fs = VirtualFs::new();
        for (n, t) in files {
            fs.add(*n, *t);
        }
        let mut sources = SourceMap::new();
        let mut diags = Diagnostics::new();
        let toks = preprocess(main, &fs, &mut sources, &mut diags);
        (toks.into_iter().map(|t| t.kind).collect(), diags)
    }

    fn idents(toks: &[TokenKind]) -> Vec<String> {
        toks.iter()
            .filter_map(|t| match t {
                TokenKind::Ident(s) => Some(s.as_str().to_string()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn object_macro_expansion() {
        let (toks, d) = run("m.c", &[("m.c", "#define N 42\nint x = N;")]);
        assert!(!d.has_errors());
        assert!(toks.contains(&TokenKind::IntLit(42)));
        assert!(!idents(&toks).contains(&"N".to_string()));
    }

    #[test]
    fn nested_macro_expansion() {
        let (toks, d) = run("m.c", &[("m.c", "#define A B\n#define B 7\nint x = A;")]);
        assert!(!d.has_errors());
        assert!(toks.contains(&TokenKind::IntLit(7)));
    }

    #[test]
    fn self_referential_macro_terminates() {
        let (toks, d) = run("m.c", &[("m.c", "#define X X\nint X;")]);
        assert!(!d.has_errors());
        assert!(idents(&toks).contains(&"X".to_string()));
    }

    #[test]
    fn include_splices_file() {
        let (toks, d) = run("main.c", &[("main.c", "#include \"h.h\"\nint b;"), ("h.h", "int a;")]);
        assert!(!d.has_errors());
        assert_eq!(idents(&toks), vec!["a", "b"]);
    }

    #[test]
    fn include_cycle_detected() {
        let (_, d) = run("a.h", &[("a.h", "#include \"b.h\""), ("b.h", "#include \"a.h\"")]);
        assert!(d.has_errors());
    }

    #[test]
    fn missing_include_reported() {
        let (_, d) = run("m.c", &[("m.c", "#include \"nope.h\"")]);
        assert!(d.has_errors());
    }

    #[test]
    fn ifdef_branches() {
        let src = "#define YES 1\n#ifdef YES\nint a;\n#else\nint b;\n#endif\n#ifdef NO\nint c;\n#else\nint d;\n#endif";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors());
        assert_eq!(idents(&toks), vec!["a", "d"]);
    }

    #[test]
    fn ifndef_and_undef() {
        let src = "#define F 1\n#undef F\n#ifndef F\nint ok;\n#endif";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors());
        assert_eq!(idents(&toks), vec!["ok"]);
    }

    #[test]
    fn if_integer_conditions() {
        let src = "#if 0\nint a;\n#elif 1\nint b;\n#else\nint c;\n#endif";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors());
        assert_eq!(idents(&toks), vec!["b"]);
    }

    #[test]
    fn if_defined_condition() {
        let src = "#define HAVE 1\n#if defined(HAVE)\nint y;\n#endif\n#if !defined(MISSING)\nint z;\n#endif";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors());
        assert_eq!(idents(&toks), vec!["y", "z"]);
    }

    #[test]
    fn function_like_macro_rejected() {
        let (_, d) = run("m.c", &[("m.c", "#define SQ(x) ((x)*(x))\n")]);
        assert!(d.has_errors());
    }

    #[test]
    fn unterminated_if_reported() {
        let (_, d) = run("m.c", &[("m.c", "#ifdef X\nint a;\n")]);
        assert!(d.has_errors());
    }

    #[test]
    fn error_directive_in_inactive_branch_ignored() {
        let src = "#ifdef NOPE\n#error should not fire\n#endif\nint x;";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors());
        assert_eq!(idents(&toks), vec!["x"]);
    }

    #[test]
    fn guard_pattern_include_twice() {
        let h = "#ifndef H_H\n#define H_H 1\nint once;\n#endif";
        let main = "#include \"h.h\"\n#include \"h2.h\"";
        // h2.h includes h.h again; the guard must prevent a duplicate.
        let (toks, d) =
            run("main.c", &[("main.c", main), ("h.h", h), ("h2.h", "#include \"h.h\"")]);
        assert!(!d.has_errors(), "{d:?}");
        assert_eq!(idents(&toks), vec!["once"]);
    }

    #[test]
    fn macros_inactive_branch_not_defined() {
        let src =
            "#ifdef NOPE\n#define HIDDEN 5\n#endif\n#ifdef HIDDEN\nint bad;\n#endif\nint good;";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors());
        assert_eq!(idents(&toks), vec!["good"]);
    }

    #[test]
    fn annotations_survive_preprocessing() {
        let src = "/** SafeFlow Annotation assert(safe(x)) */ int x;";
        let (toks, d) = run("m.c", &[("m.c", src)]);
        assert!(!d.has_errors());
        assert!(matches!(toks[0], TokenKind::Annotation(_)));
    }
}
