//! Abstract syntax tree for the C subset.
//!
//! Nodes live in `Vec`-backed tables inside [`Ast`] and reference each
//! other through 4-byte ids ([`ExprId`], [`StmtId`], [`TypeId`],
//! [`InitId`]) instead of per-node `Box`es; identifiers and literals are
//! interned [`Symbol`]s instead of owned `String`s. One parse therefore
//! performs a handful of `Vec` growths instead of one heap allocation per
//! node, nodes are cache-dense, and ids are `Copy` — consumers walk the
//! tree by indexing the arena owned by the [`TranslationUnit`].
//!
//! Id assignment is a pure function of parse order, so parsing the same
//! token stream twice yields structurally identical (and `==`) arenas.

use crate::annot::Annotation;
use crate::span::Span;
use safeflow_util::Symbol;

/// Index of an expression node in the [`Ast`] expression table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

/// Index of a statement node in the [`Ast`] statement table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(u32);

/// Index of a type-expression node in the [`Ast`] type table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(u32);

/// Index of an initializer node in the [`Ast`] initializer table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InitId(u32);

/// The node arena backing one translation unit: flat tables the id types
/// index into. Allocation only ever appends, so ids are stable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ast {
    exprs: Vec<Expr>,
    stmts: Vec<Stmt>,
    types: Vec<TypeExpr>,
    inits: Vec<Initializer>,
}

impl Ast {
    /// The expression node behind `id`.
    pub fn expr(&self, id: ExprId) -> &Expr {
        &self.exprs[id.0 as usize]
    }

    /// The statement node behind `id`.
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        &self.stmts[id.0 as usize]
    }

    /// The type-expression node behind `id`.
    pub fn type_expr(&self, id: TypeId) -> &TypeExpr {
        &self.types[id.0 as usize]
    }

    /// The initializer node behind `id`.
    pub fn init(&self, id: InitId) -> &Initializer {
        &self.inits[id.0 as usize]
    }

    /// Appends an expression node.
    pub fn alloc_expr(&mut self, e: Expr) -> ExprId {
        self.exprs.push(e);
        ExprId(self.exprs.len() as u32 - 1)
    }

    /// Appends a statement node.
    pub fn alloc_stmt(&mut self, s: Stmt) -> StmtId {
        self.stmts.push(s);
        StmtId(self.stmts.len() as u32 - 1)
    }

    /// Appends a type-expression node.
    pub fn alloc_type(&mut self, t: TypeExpr) -> TypeId {
        self.types.push(t);
        TypeId(self.types.len() as u32 - 1)
    }

    /// Appends an initializer node.
    pub fn alloc_init(&mut self, i: Initializer) -> InitId {
        self.inits.push(i);
        InitId(self.inits.len() as u32 - 1)
    }

    /// Allocates `T*` for an existing type node (same span).
    pub fn ptr_to(&mut self, inner: TypeId) -> TypeId {
        let span = self.type_expr(inner).span;
        self.alloc_type(TypeExpr::new(TypeExprKind::Ptr(inner), span))
    }

    /// Whether `id` is syntactically `void`.
    pub fn is_void(&self, id: TypeId) -> bool {
        self.type_expr(id).kind == TypeExprKind::Void
    }

    /// Total node count across all tables (arena size metric).
    pub fn node_count(&self) -> usize {
        self.exprs.len() + self.stmts.len() + self.types.len() + self.inits.len()
    }
}

/// Whether an integer type is signed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signedness {
    /// Default/explicitly signed.
    Signed,
    /// Declared `unsigned`.
    Unsigned,
}

/// A syntactic type expression (before semantic resolution).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeExpr {
    /// The shape of the type.
    pub kind: TypeExprKind,
    /// Where it was written.
    pub span: Span,
}

impl TypeExpr {
    /// Pairs a kind with its span.
    pub fn new(kind: TypeExprKind, span: Span) -> Self {
        TypeExpr { kind, span }
    }
}

/// Type expression shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TypeExprKind {
    /// `void`.
    Void,
    /// `char` / `unsigned char`.
    Char(Signedness),
    /// `short` / `unsigned short`.
    Short(Signedness),
    /// `int` / `unsigned int`.
    Int(Signedness),
    /// `long` / `unsigned long` (also `long long`).
    Long(Signedness),
    /// `float`.
    Float,
    /// `double`.
    Double,
    /// A typedef name.
    Named(Symbol),
    /// `struct Tag`.
    Struct(Symbol),
    /// `union Tag`.
    Union(Symbol),
    /// `enum Tag`.
    Enum(Symbol),
    /// Pointer to another type.
    Ptr(TypeId),
    /// Array with an optional constant size expression.
    Array(TypeId, Option<ExprId>),
}

/// Storage class on a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Storage {
    /// No storage class written.
    #[default]
    None,
    /// `static`.
    Static,
    /// `extern`.
    Extern,
    /// `typedef` (handled structurally, kept for diagnostics).
    Typedef,
}

/// A struct/union field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: Symbol,
    /// Field type.
    pub ty: TypeId,
    /// Source location.
    pub span: Span,
}

/// A `struct`/`union` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Tag name (anonymous structs are given synthetic names by the parser).
    pub name: Symbol,
    /// Declared fields in order.
    pub fields: Vec<Field>,
    /// `true` for `union`.
    pub is_union: bool,
    /// Source location.
    pub span: Span,
}

/// An `enum` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumDef {
    /// Tag name if present.
    pub name: Option<Symbol>,
    /// Enumerators with optional explicit values.
    pub variants: Vec<(Symbol, Option<ExprId>, Span)>,
    /// Source location.
    pub span: Span,
}

/// A `typedef`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Typedef {
    /// New type name.
    pub name: Symbol,
    /// Aliased type.
    pub ty: TypeId,
    /// Source location.
    pub span: Span,
}

/// An initializer: scalar expression or brace list.
#[derive(Debug, Clone, PartialEq)]
pub enum Initializer {
    /// `= expr`.
    Expr(ExprId),
    /// `= { ... }`.
    List(Vec<InitId>, Span),
}

impl Initializer {
    /// Source location of the initializer.
    pub fn span(&self, ast: &Ast) -> Span {
        match self {
            Initializer::Expr(e) => ast.expr(*e).span,
            Initializer::List(_, s) => *s,
        }
    }
}

/// A variable declaration (global or local).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: Symbol,
    /// Declared type.
    pub ty: TypeId,
    /// Optional initializer.
    pub init: Option<InitId>,
    /// Storage class.
    pub storage: Storage,
    /// Source location.
    pub span: Span,
}

/// A function parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Param {
    /// Parameter name (the empty symbol in prototypes without names).
    pub name: Symbol,
    /// Parameter type.
    pub ty: TypeId,
    /// Source location.
    pub span: Span,
}

/// A function definition or prototype.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: Symbol,
    /// Return type.
    pub ret: TypeId,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// `true` if declared with a trailing `...`.
    pub varargs: bool,
    /// Body; `None` for prototypes / extern declarations.
    pub body: Option<Block>,
    /// SafeFlow annotations written at the function header (between the
    /// declarator and `{`, per the paper's Figure 2 style).
    pub annotations: Vec<Annotation>,
    /// Storage class.
    pub storage: Storage,
    /// Source location (of the declarator).
    pub span: Span,
}

/// A `{ ... }` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements/declarations in order.
    pub items: Vec<StmtId>,
    /// Source location.
    pub span: Span,
}

/// One `case`/`default` arm of a `switch`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// Constant label; `None` is `default`.
    pub label: Option<ExprId>,
    /// Statements until the next label (fallthrough is represented by an
    /// empty tail and handled during lowering).
    pub stmts: Vec<StmtId>,
    /// Source location of the label.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Statement shape.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Expression statement.
    Expr(ExprId),
    /// Local variable declaration.
    Decl(VarDecl),
    /// Nested block.
    Block(Block),
    /// `if (cond) then [else els]`.
    If {
        /// Condition.
        cond: ExprId,
        /// Then-branch.
        then: StmtId,
        /// Optional else-branch.
        els: Option<StmtId>,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: ExprId,
        /// Loop body.
        body: StmtId,
    },
    /// `do body while (cond);`.
    DoWhile {
        /// Loop body.
        body: StmtId,
        /// Condition.
        cond: ExprId,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Init clause: declaration or expression.
        init: Option<StmtId>,
        /// Optional condition.
        cond: Option<ExprId>,
        /// Optional step expression.
        step: Option<ExprId>,
        /// Loop body.
        body: StmtId,
    },
    /// `switch (scrutinee) { cases }`.
    Switch {
        /// Scrutinee expression.
        scrutinee: ExprId,
        /// Case arms in order.
        cases: Vec<SwitchCase>,
    },
    /// `return [expr];`.
    Return(Option<ExprId>),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
    /// A SafeFlow annotation in statement position (e.g. `assert(safe(x))`
    /// before the statement it guards).
    Annotation(Annotation),
    /// `;`.
    Empty,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`.
    Neg,
    /// `+` (no-op, kept for fidelity).
    Plus,
    /// `!`.
    Not,
    /// `~`.
    BitNot,
    /// `*`.
    Deref,
    /// `&`.
    AddrOf,
}

/// Binary operators (excluding assignment and short-circuit forms, which the
/// AST represents explicitly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Rem,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `&`.
    BitAnd,
    /// `^`.
    BitXor,
    /// `|`.
    BitOr,
}

impl BinOp {
    /// Whether the operator is a comparison producing a boolean-ish int.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Expression shape.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Pairs a kind with its span.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

/// Expression shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer constant.
    IntLit(i64),
    /// Floating constant.
    FloatLit(f64),
    /// Character constant.
    CharLit(i64),
    /// String literal.
    StrLit(Symbol),
    /// Variable / function reference.
    Ident(Symbol),
    /// Unary operation.
    Unary(UnOp, ExprId),
    /// Arithmetic/relational/bitwise binary operation.
    Binary(BinOp, ExprId, ExprId),
    /// Short-circuit `&&`.
    LogicalAnd(ExprId, ExprId),
    /// Short-circuit `||`.
    LogicalOr(ExprId, ExprId),
    /// Assignment; `op` is `Some` for compound forms like `+=`.
    Assign {
        /// Compound operator, if any.
        op: Option<BinOp>,
        /// Target lvalue.
        lhs: ExprId,
        /// Source value.
        rhs: ExprId,
    },
    /// Ternary conditional.
    Conditional {
        /// Condition.
        cond: ExprId,
        /// Value if nonzero.
        then: ExprId,
        /// Value if zero.
        els: ExprId,
    },
    /// Function call. The restricted subset only allows direct calls, so the
    /// callee is a name.
    Call {
        /// Called function name.
        callee: Symbol,
        /// Arguments in order.
        args: Vec<ExprId>,
    },
    /// Array indexing `base[index]`.
    Index(ExprId, ExprId),
    /// Member access; `arrow` distinguishes `->` from `.`.
    Member {
        /// Base expression.
        base: ExprId,
        /// Field name.
        field: Symbol,
        /// `true` for `->`.
        arrow: bool,
    },
    /// Type cast.
    Cast(TypeId, ExprId),
    /// `sizeof(type)`.
    SizeofType(TypeId),
    /// `sizeof expr`.
    SizeofExpr(ExprId),
    /// Pre-increment/decrement; `true` = increment.
    PreIncDec(ExprId, bool),
    /// Post-increment/decrement; `true` = increment.
    PostIncDec(ExprId, bool),
    /// Comma operator.
    Comma(ExprId, ExprId),
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `struct`/`union` definition.
    Struct(StructDef),
    /// `enum` definition.
    Enum(EnumDef),
    /// `typedef`.
    Typedef(Typedef),
    /// Global variable.
    Global(VarDecl),
    /// Function definition or prototype.
    Func(FuncDef),
}

impl Item {
    /// Source location of the item.
    pub fn span(&self) -> Span {
        match self {
            Item::Struct(s) => s.span,
            Item::Enum(e) => e.span,
            Item::Typedef(t) => t.span,
            Item::Global(g) => g.span,
            Item::Func(f) => f.span,
        }
    }

    /// Declared name of the item, if it has one.
    pub fn name(&self) -> Option<&str> {
        match self {
            Item::Struct(s) => Some(s.name.as_str()),
            Item::Enum(e) => e.name.map(|n| n.as_str()),
            Item::Typedef(t) => Some(t.name.as_str()),
            Item::Global(g) => Some(g.name.as_str()),
            Item::Func(f) => Some(f.name.as_str()),
        }
    }
}

/// A parsed translation unit (one preprocessed program) together with the
/// node arena its items index into.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TranslationUnit {
    /// Items in declaration order.
    pub items: Vec<Item>,
    /// The node arena all item subtrees live in.
    pub ast: Ast,
}

impl TranslationUnit {
    /// Iterates over all function definitions (those with bodies).
    pub fn functions(&self) -> impl Iterator<Item = &FuncDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Func(f) if f.body.is_some() => Some(f),
            _ => None,
        })
    }

    /// Finds a function (definition or prototype) by name.
    pub fn function(&self, name: &str) -> Option<&FuncDef> {
        // Prefer a definition over a prototype.
        let mut proto = None;
        for item in &self.items {
            if let Item::Func(f) = item {
                if f.name == name {
                    if f.body.is_some() {
                        return Some(f);
                    }
                    proto = Some(f);
                }
            }
        }
        proto
    }

    /// Iterates over global variable declarations.
    pub fn globals(&self) -> impl Iterator<Item = &VarDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Global(g) => Some(g),
            _ => None,
        })
    }

    /// Finds a struct/union definition by tag name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.items.iter().find_map(|i| match i {
            Item::Struct(s) if s.name == name => Some(s),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_arena_helpers() {
        let mut ast = Ast::default();
        let t = ast.alloc_type(TypeExpr::new(TypeExprKind::Int(Signedness::Signed), Span::dummy()));
        assert!(!ast.is_void(t));
        let p = ast.ptr_to(t);
        assert_eq!(ast.type_expr(p).kind, TypeExprKind::Ptr(t));
        assert_eq!(ast.node_count(), 2);
    }

    #[test]
    fn translation_unit_lookup_prefers_definition() {
        let mut ast = Ast::default();
        let void = ast.alloc_type(TypeExpr::new(TypeExprKind::Void, Span::dummy()));
        let proto = FuncDef {
            name: Symbol::intern("f"),
            ret: void,
            params: vec![],
            varargs: false,
            body: None,
            annotations: vec![],
            storage: Storage::None,
            span: Span::dummy(),
        };
        let mut def = proto.clone();
        def.body = Some(Block { items: vec![], span: Span::dummy() });
        let tu = TranslationUnit { items: vec![Item::Func(proto), Item::Func(def)], ast };
        assert!(tu.function("f").unwrap().body.is_some());
        assert_eq!(tu.functions().count(), 1);
    }

    #[test]
    fn binop_comparison_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::Ne.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::BitOr.is_comparison());
    }
}
