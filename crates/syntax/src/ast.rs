//! Abstract syntax tree for the C subset.
//!
//! The tree is deliberately plain (boxed enums with spans) — the programs the
//! paper analyzes are small core components, so arena cleverness buys
//! nothing.

use crate::annot::Annotation;
use crate::span::Span;

/// Whether an integer type is signed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signedness {
    /// Default/explicitly signed.
    Signed,
    /// Declared `unsigned`.
    Unsigned,
}

/// A syntactic type expression (before semantic resolution).
#[derive(Debug, Clone, PartialEq)]
pub struct TypeExpr {
    /// The shape of the type.
    pub kind: TypeExprKind,
    /// Where it was written.
    pub span: Span,
}

impl TypeExpr {
    /// Pairs a kind with its span.
    pub fn new(kind: TypeExprKind, span: Span) -> Self {
        TypeExpr { kind, span }
    }

    /// Convenience: `T*` for this type.
    pub fn ptr_to(self) -> TypeExpr {
        let span = self.span;
        TypeExpr::new(TypeExprKind::Ptr(Box::new(self)), span)
    }

    /// Returns `true` if this is syntactically `void`.
    pub fn is_void(&self) -> bool {
        self.kind == TypeExprKind::Void
    }
}

/// Type expression shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExprKind {
    /// `void`.
    Void,
    /// `char` / `unsigned char`.
    Char(Signedness),
    /// `short` / `unsigned short`.
    Short(Signedness),
    /// `int` / `unsigned int`.
    Int(Signedness),
    /// `long` / `unsigned long` (also `long long`).
    Long(Signedness),
    /// `float`.
    Float,
    /// `double`.
    Double,
    /// A typedef name.
    Named(String),
    /// `struct Tag`.
    Struct(String),
    /// `union Tag`.
    Union(String),
    /// `enum Tag`.
    Enum(String),
    /// Pointer to another type.
    Ptr(Box<TypeExpr>),
    /// Array with an optional constant size expression.
    Array(Box<TypeExpr>, Option<Box<Expr>>),
}

/// Storage class on a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Storage {
    /// No storage class written.
    #[default]
    None,
    /// `static`.
    Static,
    /// `extern`.
    Extern,
    /// `typedef` (handled structurally, kept for diagnostics).
    Typedef,
}

/// A struct/union field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: TypeExpr,
    /// Source location.
    pub span: Span,
}

/// A `struct`/`union` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Tag name (anonymous structs are given synthetic names by the parser).
    pub name: String,
    /// Declared fields in order.
    pub fields: Vec<Field>,
    /// `true` for `union`.
    pub is_union: bool,
    /// Source location.
    pub span: Span,
}

/// An `enum` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumDef {
    /// Tag name if present.
    pub name: Option<String>,
    /// Enumerators with optional explicit values.
    pub variants: Vec<(String, Option<Expr>, Span)>,
    /// Source location.
    pub span: Span,
}

/// A `typedef`.
#[derive(Debug, Clone, PartialEq)]
pub struct Typedef {
    /// New type name.
    pub name: String,
    /// Aliased type.
    pub ty: TypeExpr,
    /// Source location.
    pub span: Span,
}

/// An initializer: scalar expression or brace list.
#[derive(Debug, Clone, PartialEq)]
pub enum Initializer {
    /// `= expr`.
    Expr(Expr),
    /// `= { ... }`.
    List(Vec<Initializer>, Span),
}

impl Initializer {
    /// Source location of the initializer.
    pub fn span(&self) -> Span {
        match self {
            Initializer::Expr(e) => e.span,
            Initializer::List(_, s) => *s,
        }
    }
}

/// A variable declaration (global or local).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// Optional initializer.
    pub init: Option<Initializer>,
    /// Storage class.
    pub storage: Storage,
    /// Source location.
    pub span: Span,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name (empty string in prototypes without names).
    pub name: String,
    /// Parameter type.
    pub ty: TypeExpr,
    /// Source location.
    pub span: Span,
}

/// A function definition or prototype.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: TypeExpr,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// `true` if declared with a trailing `...`.
    pub varargs: bool,
    /// Body; `None` for prototypes / extern declarations.
    pub body: Option<Block>,
    /// SafeFlow annotations written at the function header (between the
    /// declarator and `{`, per the paper's Figure 2 style).
    pub annotations: Vec<Annotation>,
    /// Storage class.
    pub storage: Storage,
    /// Source location (of the declarator).
    pub span: Span,
}

/// A `{ ... }` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements/declarations in order.
    pub items: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// One `case`/`default` arm of a `switch`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// Constant label; `None` is `default`.
    pub label: Option<Expr>,
    /// Statements until the next label (fallthrough is represented by an
    /// empty tail and handled during lowering).
    pub stmts: Vec<Stmt>,
    /// Source location of the label.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Statement shape.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Expression statement.
    Expr(Expr),
    /// Local variable declaration.
    Decl(VarDecl),
    /// Nested block.
    Block(Block),
    /// `if (cond) then [else els]`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Box<Stmt>,
        /// Optional else-branch.
        els: Option<Box<Stmt>>,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);`.
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Init clause: declaration or expression.
        init: Option<Box<Stmt>>,
        /// Optional condition.
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `switch (scrutinee) { cases }`.
    Switch {
        /// Scrutinee expression.
        scrutinee: Expr,
        /// Case arms in order.
        cases: Vec<SwitchCase>,
    },
    /// `return [expr];`.
    Return(Option<Expr>),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
    /// A SafeFlow annotation in statement position (e.g. `assert(safe(x))`
    /// before the statement it guards).
    Annotation(Annotation),
    /// `;`.
    Empty,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`.
    Neg,
    /// `+` (no-op, kept for fidelity).
    Plus,
    /// `!`.
    Not,
    /// `~`.
    BitNot,
    /// `*`.
    Deref,
    /// `&`.
    AddrOf,
}

/// Binary operators (excluding assignment and short-circuit forms, which the
/// AST represents explicitly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Rem,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `&`.
    BitAnd,
    /// `^`.
    BitXor,
    /// `|`.
    BitOr,
}

impl BinOp {
    /// Whether the operator is a comparison producing a boolean-ish int.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Expression shape.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Pairs a kind with its span.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

/// Expression shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer constant.
    IntLit(i64),
    /// Floating constant.
    FloatLit(f64),
    /// Character constant.
    CharLit(i64),
    /// String literal.
    StrLit(String),
    /// Variable / function reference.
    Ident(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Arithmetic/relational/bitwise binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Short-circuit `&&`.
    LogicalAnd(Box<Expr>, Box<Expr>),
    /// Short-circuit `||`.
    LogicalOr(Box<Expr>, Box<Expr>),
    /// Assignment; `op` is `Some` for compound forms like `+=`.
    Assign {
        /// Compound operator, if any.
        op: Option<BinOp>,
        /// Target lvalue.
        lhs: Box<Expr>,
        /// Source value.
        rhs: Box<Expr>,
    },
    /// Ternary conditional.
    Conditional {
        /// Condition.
        cond: Box<Expr>,
        /// Value if nonzero.
        then: Box<Expr>,
        /// Value if zero.
        els: Box<Expr>,
    },
    /// Function call. The restricted subset only allows direct calls, so the
    /// callee is a name.
    Call {
        /// Called function name.
        callee: String,
        /// Arguments in order.
        args: Vec<Expr>,
    },
    /// Array indexing `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Member access; `arrow` distinguishes `->` from `.`.
    Member {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// `true` for `->`.
        arrow: bool,
    },
    /// Type cast.
    Cast(TypeExpr, Box<Expr>),
    /// `sizeof(type)`.
    SizeofType(TypeExpr),
    /// `sizeof expr`.
    SizeofExpr(Box<Expr>),
    /// Pre-increment/decrement; `true` = increment.
    PreIncDec(Box<Expr>, bool),
    /// Post-increment/decrement; `true` = increment.
    PostIncDec(Box<Expr>, bool),
    /// Comma operator.
    Comma(Box<Expr>, Box<Expr>),
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `struct`/`union` definition.
    Struct(StructDef),
    /// `enum` definition.
    Enum(EnumDef),
    /// `typedef`.
    Typedef(Typedef),
    /// Global variable.
    Global(VarDecl),
    /// Function definition or prototype.
    Func(FuncDef),
}

impl Item {
    /// Source location of the item.
    pub fn span(&self) -> Span {
        match self {
            Item::Struct(s) => s.span,
            Item::Enum(e) => e.span,
            Item::Typedef(t) => t.span,
            Item::Global(g) => g.span,
            Item::Func(f) => f.span,
        }
    }

    /// Declared name of the item, if it has one.
    pub fn name(&self) -> Option<&str> {
        match self {
            Item::Struct(s) => Some(&s.name),
            Item::Enum(e) => e.name.as_deref(),
            Item::Typedef(t) => Some(&t.name),
            Item::Global(g) => Some(&g.name),
            Item::Func(f) => Some(&f.name),
        }
    }
}

/// A parsed translation unit (one preprocessed program).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TranslationUnit {
    /// Items in declaration order.
    pub items: Vec<Item>,
}

impl TranslationUnit {
    /// Iterates over all function definitions (those with bodies).
    pub fn functions(&self) -> impl Iterator<Item = &FuncDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Func(f) if f.body.is_some() => Some(f),
            _ => None,
        })
    }

    /// Finds a function (definition or prototype) by name.
    pub fn function(&self, name: &str) -> Option<&FuncDef> {
        // Prefer a definition over a prototype.
        let mut proto = None;
        for item in &self.items {
            if let Item::Func(f) = item {
                if f.name == name {
                    if f.body.is_some() {
                        return Some(f);
                    }
                    proto = Some(f);
                }
            }
        }
        proto
    }

    /// Iterates over global variable declarations.
    pub fn globals(&self) -> impl Iterator<Item = &VarDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Global(g) => Some(g),
            _ => None,
        })
    }

    /// Finds a struct/union definition by tag name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.items.iter().find_map(|i| match i {
            Item::Struct(s) if s.name == name => Some(s),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_expr_helpers() {
        let t = TypeExpr::new(TypeExprKind::Int(Signedness::Signed), Span::dummy());
        assert!(!t.is_void());
        let p = t.clone().ptr_to();
        assert_eq!(p.kind, TypeExprKind::Ptr(Box::new(t)));
    }

    #[test]
    fn translation_unit_lookup_prefers_definition() {
        let proto = FuncDef {
            name: "f".into(),
            ret: TypeExpr::new(TypeExprKind::Void, Span::dummy()),
            params: vec![],
            varargs: false,
            body: None,
            annotations: vec![],
            storage: Storage::None,
            span: Span::dummy(),
        };
        let mut def = proto.clone();
        def.body = Some(Block { items: vec![], span: Span::dummy() });
        let tu = TranslationUnit { items: vec![Item::Func(proto), Item::Func(def)] };
        assert!(tu.function("f").unwrap().body.is_some());
        assert_eq!(tu.functions().count(), 1);
    }

    #[test]
    fn binop_comparison_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::Ne.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::BitOr.is_comparison());
    }
}
