//! Recursive-descent parser for the C subset.
//!
//! Consumes the preprocessed token stream and produces a
//! [`TranslationUnit`]. The parser tracks typedef names to disambiguate
//! declarations from expressions, hoists inline `struct` definitions to
//! top-level items, and attaches SafeFlow annotations to functions
//! (header position) or statements (block-item position).
//!
//! Nodes are appended to the unit's [`Ast`] arena as they are reduced, so
//! parsing allocates a handful of growing `Vec`s instead of one `Box` per
//! node; names stay interned [`Symbol`]s straight from the lexer.
//!
//! The subset is the one the paper's language restrictions (§3.2) already
//! demand: no function pointers, no `goto`, no K&R declarations.

use crate::annot::{parse_annotation_body, Annotation};
use crate::ast::*;
use crate::diag::Diagnostics;
use crate::source::SourceMap;
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};
use safeflow_util::Symbol;
use std::collections::HashSet;

/// Parses a preprocessed token stream into a translation unit.
///
/// Errors are reported to `diags`; the parser recovers at item boundaries so
/// a best-effort AST is always returned.
pub fn parse(
    tokens: Vec<Token>,
    sources: &mut SourceMap,
    diags: &mut Diagnostics,
) -> TranslationUnit {
    let mut parser = Parser {
        tokens,
        pos: 0,
        sources,
        diags,
        ast: Ast::default(),
        typedefs: HashSet::new(),
        anon_counter: 0,
        hoisted: Vec::new(),
        pending_fn: None,
        expr_depth: 0,
    };
    parser.parse_translation_unit()
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    sources: &'a mut SourceMap,
    diags: &'a mut Diagnostics,
    /// Node arena for the unit being built.
    ast: Ast,
    typedefs: HashSet<Symbol>,
    anon_counter: u32,
    /// Struct/enum definitions encountered inline, hoisted before the
    /// current item.
    hoisted: Vec<Item>,
    /// Side channel from `parse_declarator_suffix` to its callers: when a
    /// declarator turns out to be a function, its `(return type, params,
    /// varargs)` is stashed here and the returned type is a marker.
    pending_fn: Option<(TypeId, Vec<Param>, bool)>,
    /// Current expression nesting depth, bounded to keep recursive descent
    /// from overflowing the stack on adversarial input.
    expr_depth: u32,
}

/// Maximum expression nesting depth accepted by the parser.
const MAX_EXPR_DEPTH: u32 = 64;

impl<'a> Parser<'a> {
    // ----- token plumbing -------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_nth(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)];
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek().is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek().is_keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Span {
        if self.peek().is_punct(p) {
            self.bump().span
        } else {
            let sp = self.span();
            self.diags.error(
                sp,
                format!("expected `{}`, found {}", p.as_str(), self.peek_kind().describe()),
            );
            sp
        }
    }

    fn expect_ident(&mut self) -> (Symbol, Span) {
        if let TokenKind::Ident(s) = *self.peek_kind() {
            let sp = self.bump().span;
            (s, sp)
        } else {
            let sp = self.span();
            self.diags
                .error(sp, format!("expected identifier, found {}", self.peek_kind().describe()));
            (Symbol::intern("<error>"), sp)
        }
    }

    // ----- arena plumbing -------------------------------------------------

    fn alloc_expr(&mut self, kind: ExprKind, span: Span) -> ExprId {
        self.ast.alloc_expr(Expr::new(kind, span))
    }

    fn alloc_stmt(&mut self, kind: StmtKind, span: Span) -> StmtId {
        self.ast.alloc_stmt(Stmt { kind, span })
    }

    fn espan(&self, id: ExprId) -> Span {
        self.ast.expr(id).span
    }

    /// Skips tokens until a likely item boundary (`;` or `}` at depth 0).
    fn recover_to_item_boundary(&mut self) {
        let mut depth = 0i32;
        while !self.at_eof() {
            match self.peek_kind() {
                TokenKind::Punct(Punct::LBrace) => depth += 1,
                TokenKind::Punct(Punct::RBrace) => {
                    depth -= 1;
                    if depth <= 0 {
                        self.bump();
                        return;
                    }
                }
                TokenKind::Punct(Punct::Semi) if depth == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    fn fresh_anon_name(&mut self, what: &str) -> Symbol {
        self.anon_counter += 1;
        Symbol::intern(&format!("__anon_{what}_{}", self.anon_counter))
    }

    // ----- type recognition ----------------------------------------------

    /// Whether the token at offset `n` can start a declaration.
    fn starts_type_at(&self, n: usize) -> bool {
        match self.peek_nth(n) {
            TokenKind::Keyword(k) => matches!(
                k,
                Keyword::Void
                    | Keyword::Char
                    | Keyword::Short
                    | Keyword::Int
                    | Keyword::Long
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Signed
                    | Keyword::Unsigned
                    | Keyword::Struct
                    | Keyword::Union
                    | Keyword::Enum
                    | Keyword::Const
                    | Keyword::Volatile
                    | Keyword::Static
                    | Keyword::Extern
                    | Keyword::Typedef
            ),
            TokenKind::Ident(s) => self.typedefs.contains(s),
            _ => false,
        }
    }

    fn starts_type(&self) -> bool {
        self.starts_type_at(0)
    }

    // ----- translation unit ----------------------------------------------

    fn parse_translation_unit(&mut self) -> TranslationUnit {
        let mut items = Vec::new();
        let mut pending_annotations: Vec<Annotation> = Vec::new();
        while !self.at_eof() {
            if let TokenKind::Annotation(body) = *self.peek_kind() {
                let sp = self.bump().span;
                let anns = parse_annotation_body(body.as_str(), sp, self.sources, self.diags);
                pending_annotations.extend(anns);
                continue;
            }
            if self.eat_punct(Punct::Semi) {
                continue;
            }
            let before = self.pos;
            match self.parse_item(std::mem::take(&mut pending_annotations)) {
                Some(new_items) => items.extend(new_items),
                None => {
                    self.recover_to_item_boundary();
                }
            }
            if self.pos == before {
                // Safety net against non-advancing loops.
                self.bump();
            }
        }
        if !pending_annotations.is_empty() {
            self.diags.error(
                pending_annotations[0].span(),
                "dangling SafeFlow annotation at end of file",
            );
        }
        TranslationUnit { items, ast: std::mem::take(&mut self.ast) }
    }

    /// Parses one top-level item (plus any hoisted inline definitions).
    fn parse_item(&mut self, leading_annotations: Vec<Annotation>) -> Option<Vec<Item>> {
        let start = self.span();
        let mut storage = Storage::None;
        let mut is_typedef = false;

        // Storage class specifiers (may precede the type).
        loop {
            if self.eat_keyword(Keyword::Typedef) {
                is_typedef = true;
            } else if self.eat_keyword(Keyword::Static) {
                storage = Storage::Static;
            } else if self.eat_keyword(Keyword::Extern) {
                storage = Storage::Extern;
            } else {
                break;
            }
        }

        let base = self.parse_type_specifier()?;

        // Bare `struct S { ... };` / `enum E { ... };` definitions.
        if self.peek().is_punct(Punct::Semi) && !is_typedef {
            self.bump();
            let mut items = std::mem::take(&mut self.hoisted);
            if items.is_empty() {
                self.diags.warning(start, "declaration declares nothing");
            }
            return Some(std::mem::take(&mut items));
        }

        if is_typedef {
            let (ty, name, sp) = self.parse_declarator(base)?;
            if self.pending_fn.take().is_some() {
                self.diags.error(sp, "typedefs of function types are not supported (no function pointers in the restricted subset)");
                return None;
            }
            self.expect_punct(Punct::Semi);
            self.typedefs.insert(name);
            let mut items = std::mem::take(&mut self.hoisted);
            items.push(Item::Typedef(Typedef { name, ty, span: start }));
            return Some(items);
        }

        // First declarator decides function vs variable.
        let (ty, name, declarator_span) = self.parse_declarator(base)?;

        // Function definition or prototype: declarator parsed parameter list.
        if let Some((ret, params, varargs)) = self.pending_fn.take() {
            let _ = ty; // the marker type; the real signature came through the side channel
            let mut annotations = leading_annotations;
            // Header-position annotations (Figure 2 style: between the
            // declarator and the `{`).
            while let TokenKind::Annotation(body) = *self.peek_kind() {
                let sp = self.bump().span;
                annotations.extend(parse_annotation_body(
                    body.as_str(),
                    sp,
                    self.sources,
                    self.diags,
                ));
            }
            let body = if self.peek().is_punct(Punct::LBrace) {
                Some(self.parse_block()?)
            } else {
                self.expect_punct(Punct::Semi);
                None
            };
            let mut items = std::mem::take(&mut self.hoisted);
            items.push(Item::Func(FuncDef {
                name,
                ret,
                params,
                varargs,
                body,
                annotations,
                storage,
                span: declarator_span,
            }));
            return Some(items);
        }

        if !leading_annotations.is_empty() {
            self.diags.error(
                leading_annotations[0].span(),
                "SafeFlow annotations may only precede functions or statements",
            );
        }

        // Global variable(s).
        let mut items = std::mem::take(&mut self.hoisted);
        let mut decl_ty = ty;
        let mut decl_name = name;
        let mut decl_span = declarator_span;
        loop {
            let init =
                if self.eat_punct(Punct::Assign) { Some(self.parse_initializer()?) } else { None };
            items.push(Item::Global(VarDecl {
                name: decl_name,
                ty: decl_ty,
                init,
                storage,
                span: decl_span,
            }));
            if self.eat_punct(Punct::Comma) {
                let (t, n, sp) = self.parse_declarator(base)?;
                if self.pending_fn.take().is_some() {
                    self.diags
                        .error(sp, "function declarator in multi-declarator list is not supported");
                    return None;
                }
                decl_ty = t;
                decl_name = n;
                decl_span = sp;
            } else {
                self.expect_punct(Punct::Semi);
                break;
            }
        }
        Some(items)
    }

    // ----- types and declarators -----------------------------------------

    /// Parses decl-specifiers (without storage classes) into a base type.
    fn parse_type_specifier(&mut self) -> Option<TypeId> {
        let start = self.span();
        // Skip qualifiers.
        while self.eat_keyword(Keyword::Const) || self.eat_keyword(Keyword::Volatile) {}

        if self.eat_keyword(Keyword::Struct) || {
            if self.peek().is_keyword(Keyword::Union) {
                self.bump();
                return self.parse_struct_or_union_body(true, start);
            }
            false
        } {
            return self.parse_struct_or_union_body(false, start);
        }
        if self.eat_keyword(Keyword::Enum) {
            return self.parse_enum_body(start);
        }

        let mut signed: Option<Signedness> = None;
        let mut base: Option<TypeExprKind> = None;
        let mut long_count = 0u8;
        loop {
            match self.peek_kind() {
                TokenKind::Keyword(Keyword::Signed) => {
                    signed = Some(Signedness::Signed);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Unsigned) => {
                    signed = Some(Signedness::Unsigned);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Void) => {
                    base = Some(TypeExprKind::Void);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Char) => {
                    base = Some(TypeExprKind::Char(Signedness::Signed));
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Short) => {
                    base = Some(TypeExprKind::Short(Signedness::Signed));
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Int) => {
                    if base.is_none() {
                        base = Some(TypeExprKind::Int(Signedness::Signed));
                    }
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Long) => {
                    long_count += 1;
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Float) => {
                    base = Some(TypeExprKind::Float);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Double) => {
                    base = Some(TypeExprKind::Double);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Const) | TokenKind::Keyword(Keyword::Volatile) => {
                    self.bump();
                }
                _ => break,
            }
        }

        if base.is_none() && long_count == 0 && signed.is_none() {
            // Typedef name?
            if let TokenKind::Ident(s) = *self.peek_kind() {
                if self.typedefs.contains(&s) {
                    let sp = self.bump().span;
                    return Some(self.ast.alloc_type(TypeExpr::new(TypeExprKind::Named(s), sp)));
                }
            }
            self.diags.error(
                self.span(),
                format!("expected type, found {}", self.peek_kind().describe()),
            );
            return None;
        }

        let s = signed.unwrap_or(Signedness::Signed);
        let kind = if long_count > 0 {
            TypeExprKind::Long(s)
        } else {
            match base {
                Some(TypeExprKind::Char(_)) => TypeExprKind::Char(s),
                Some(TypeExprKind::Short(_)) => TypeExprKind::Short(s),
                Some(TypeExprKind::Int(_)) | None => TypeExprKind::Int(s),
                Some(other) => other,
            }
        };
        let span = start.to(self.span());
        Some(self.ast.alloc_type(TypeExpr::new(kind, span)))
    }

    fn parse_struct_or_union_body(&mut self, is_union: bool, start: Span) -> Option<TypeId> {
        let name = if let TokenKind::Ident(s) = *self.peek_kind() {
            self.bump();
            s
        } else {
            self.fresh_anon_name(if is_union { "union" } else { "struct" })
        };
        if self.eat_punct(Punct::LBrace) {
            let mut fields = Vec::new();
            while !self.peek().is_punct(Punct::RBrace) && !self.at_eof() {
                let base = self.parse_type_specifier()?;
                loop {
                    let (fty, fname, fsp) = self.parse_declarator(base)?;
                    if self.pending_fn.take().is_some() {
                        self.diags.error(
                            fsp,
                            "function members are not supported in the restricted subset",
                        );
                        return None;
                    }
                    fields.push(Field { name: fname, ty: fty, span: fsp });
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.expect_punct(Punct::Semi);
            }
            self.expect_punct(Punct::RBrace);
            self.hoisted.push(Item::Struct(StructDef { name, fields, is_union, span: start }));
        }
        let kind = if is_union { TypeExprKind::Union(name) } else { TypeExprKind::Struct(name) };
        Some(self.ast.alloc_type(TypeExpr::new(kind, start)))
    }

    fn parse_enum_body(&mut self, start: Span) -> Option<TypeId> {
        let name = if let TokenKind::Ident(s) = *self.peek_kind() {
            self.bump();
            Some(s)
        } else {
            None
        };
        if self.eat_punct(Punct::LBrace) {
            let mut variants = Vec::new();
            while !self.peek().is_punct(Punct::RBrace) && !self.at_eof() {
                let (vname, vsp) = self.expect_ident();
                let value = if self.eat_punct(Punct::Assign) {
                    Some(self.parse_conditional_expr()?)
                } else {
                    None
                };
                variants.push((vname, value, vsp));
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RBrace);
            self.hoisted.push(Item::Enum(EnumDef { name, variants, span: start }));
        }
        let tag = name.unwrap_or_else(|| self.fresh_anon_name("enum"));
        Some(self.ast.alloc_type(TypeExpr::new(TypeExprKind::Enum(tag), start)))
    }

    /// Parses `'*'* ident suffix*` against `base`, returning the full type,
    /// the declared name, and its span.
    fn parse_declarator(&mut self, base: TypeId) -> Option<(TypeId, Symbol, Span)> {
        let mut ty = base;
        while self.eat_punct(Punct::Star) {
            // Qualifiers after '*' (e.g. `int * const p`).
            while self.eat_keyword(Keyword::Const) || self.eat_keyword(Keyword::Volatile) {}
            ty = self.ast.ptr_to(ty);
        }
        let (name, name_span) = self.expect_ident();
        self.parse_declarator_suffix(ty, name, name_span)
    }

    fn parse_declarator_suffix(
        &mut self,
        mut ty: TypeId,
        name: Symbol,
        name_span: Span,
    ) -> Option<(TypeId, Symbol, Span)> {
        // Function declarator.
        if self.peek().is_punct(Punct::LParen) {
            self.bump();
            let mut params = Vec::new();
            let mut varargs = false;
            if !self.peek().is_punct(Punct::RParen) {
                loop {
                    if self.eat_punct(Punct::Ellipsis) {
                        varargs = true;
                        break;
                    }
                    if self.peek().is_keyword(Keyword::Void)
                        && self.peek_nth(1) == &TokenKind::Punct(Punct::RParen)
                    {
                        self.bump();
                        break;
                    }
                    let pbase = self.parse_type_specifier()?;
                    let mut pty = pbase;
                    while self.eat_punct(Punct::Star) {
                        while self.eat_keyword(Keyword::Const)
                            || self.eat_keyword(Keyword::Volatile)
                        {}
                        pty = self.ast.ptr_to(pty);
                    }
                    let (pname, psp) = if let TokenKind::Ident(s) = *self.peek_kind() {
                        let sp = self.bump().span;
                        (s, sp)
                    } else {
                        (Symbol::intern(""), self.span())
                    };
                    // Array parameters decay to pointers.
                    while self.eat_punct(Punct::LBracket) {
                        // Discard the size; parameter arrays are pointers.
                        if !self.peek().is_punct(Punct::RBracket) {
                            let _ = self.parse_conditional_expr()?;
                        }
                        self.expect_punct(Punct::RBracket);
                        pty = self.ast.ptr_to(pty);
                    }
                    params.push(Param { name: pname, ty: pty, span: psp });
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
            }
            self.expect_punct(Punct::RParen);
            // Represent the function declarator by a sentinel type node; the
            // real signature travels through `pending_fn`.
            let fn_ty = self.ast.alloc_type(TypeExpr::new(
                TypeExprKind::Struct(Symbol::intern(FUNC_MARKER)),
                name_span,
            ));
            // Stash params/ret through the side channel.
            self.pending_fn = Some((ty, params, varargs));
            return Some((fn_ty, name, name_span));
        }
        // Array suffixes.
        let mut dims = Vec::new();
        while self.eat_punct(Punct::LBracket) {
            let size = if self.peek().is_punct(Punct::RBracket) {
                None
            } else {
                Some(self.parse_conditional_expr()?)
            };
            self.expect_punct(Punct::RBracket);
            dims.push(size);
        }
        for size in dims.into_iter().rev() {
            let sp = self.ast.type_expr(ty).span;
            ty = self.ast.alloc_type(TypeExpr::new(TypeExprKind::Array(ty, size), sp));
        }
        Some((ty, name, name_span))
    }

    fn parse_initializer(&mut self) -> Option<InitId> {
        if self.peek().is_punct(Punct::LBrace) {
            let start = self.bump().span;
            let mut items = Vec::new();
            while !self.peek().is_punct(Punct::RBrace) && !self.at_eof() {
                items.push(self.parse_initializer()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            let end = self.expect_punct(Punct::RBrace);
            Some(self.ast.alloc_init(Initializer::List(items, start.to(end))))
        } else {
            let e = self.parse_assignment_expr()?;
            Some(self.ast.alloc_init(Initializer::Expr(e)))
        }
    }

    // ----- statements ------------------------------------------------------

    fn parse_block(&mut self) -> Option<Block> {
        let start = self.expect_punct(Punct::LBrace);
        let mut items = Vec::new();
        while !self.peek().is_punct(Punct::RBrace) && !self.at_eof() {
            match self.parse_stmt() {
                Some(s) => items.push(s),
                None => {
                    self.recover_in_block();
                }
            }
        }
        let end = self.expect_punct(Punct::RBrace);
        Some(Block { items, span: start.to(end) })
    }

    /// Error recovery inside a block: skip to after the next `;`, or stop at
    /// `}`.
    fn recover_in_block(&mut self) {
        let mut depth = 0i32;
        while !self.at_eof() {
            match self.peek_kind() {
                TokenKind::Punct(Punct::Semi) if depth == 0 => {
                    self.bump();
                    return;
                }
                TokenKind::Punct(Punct::LBrace) => depth += 1,
                TokenKind::Punct(Punct::RBrace) => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                }
                _ => {}
            }
            self.bump();
        }
    }

    fn parse_stmt(&mut self) -> Option<StmtId> {
        let start = self.span();
        match *self.peek_kind() {
            TokenKind::Annotation(body) => {
                let sp = self.bump().span;
                let anns = parse_annotation_body(body.as_str(), sp, self.sources, self.diags);
                // Several annotations in one comment become several
                // annotation statements; wrap in a block when needed.
                let mut stmts: Vec<StmtId> = anns
                    .into_iter()
                    .map(|a| self.alloc_stmt(StmtKind::Annotation(a), sp))
                    .collect();
                match stmts.len() {
                    0 => Some(self.alloc_stmt(StmtKind::Empty, sp)),
                    1 => Some(stmts.pop().unwrap()),
                    _ => {
                        Some(self.alloc_stmt(StmtKind::Block(Block { items: stmts, span: sp }), sp))
                    }
                }
            }
            TokenKind::Punct(Punct::LBrace) => {
                let b = self.parse_block()?;
                let sp = b.span;
                Some(self.alloc_stmt(StmtKind::Block(b), sp))
            }
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Some(self.alloc_stmt(StmtKind::Empty, start))
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen);
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen);
                let then = self.parse_stmt()?;
                let els =
                    if self.eat_keyword(Keyword::Else) { Some(self.parse_stmt()?) } else { None };
                Some(self.alloc_stmt(StmtKind::If { cond, then, els }, start))
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen);
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen);
                let body = self.parse_stmt()?;
                Some(self.alloc_stmt(StmtKind::While { cond, body }, start))
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = self.parse_stmt()?;
                if !self.eat_keyword(Keyword::While) {
                    self.diags.error(self.span(), "expected `while` after do-body");
                    return None;
                }
                self.expect_punct(Punct::LParen);
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen);
                self.expect_punct(Punct::Semi);
                Some(self.alloc_stmt(StmtKind::DoWhile { body, cond }, start))
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen);
                let init = if self.peek().is_punct(Punct::Semi) {
                    self.bump();
                    None
                } else if self.starts_type() {
                    Some(self.parse_local_decl()?)
                } else {
                    let e = self.parse_expr()?;
                    self.expect_punct(Punct::Semi);
                    Some(self.alloc_stmt(StmtKind::Expr(e), start))
                };
                let cond =
                    if self.peek().is_punct(Punct::Semi) { None } else { Some(self.parse_expr()?) };
                self.expect_punct(Punct::Semi);
                let step = if self.peek().is_punct(Punct::RParen) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::RParen);
                let body = self.parse_stmt()?;
                Some(self.alloc_stmt(StmtKind::For { init, cond, step, body }, start))
            }
            TokenKind::Keyword(Keyword::Switch) => {
                self.bump();
                self.expect_punct(Punct::LParen);
                let scrutinee = self.parse_expr()?;
                self.expect_punct(Punct::RParen);
                self.expect_punct(Punct::LBrace);
                let mut cases: Vec<SwitchCase> = Vec::new();
                while !self.peek().is_punct(Punct::RBrace) && !self.at_eof() {
                    if self.eat_keyword(Keyword::Case) {
                        let label_span = start;
                        let label = self.parse_conditional_expr()?;
                        self.expect_punct(Punct::Colon);
                        cases.push(SwitchCase {
                            label: Some(label),
                            stmts: Vec::new(),
                            span: label_span,
                        });
                    } else if self.eat_keyword(Keyword::Default) {
                        self.expect_punct(Punct::Colon);
                        cases.push(SwitchCase { label: None, stmts: Vec::new(), span: start });
                    } else {
                        let s = self.parse_stmt()?;
                        match cases.last_mut() {
                            Some(c) => c.stmts.push(s),
                            None => {
                                let sp = self.ast.stmt(s).span;
                                self.diags.error(sp, "statement in switch before any case label");
                            }
                        }
                    }
                }
                self.expect_punct(Punct::RBrace);
                Some(self.alloc_stmt(StmtKind::Switch { scrutinee, cases }, start))
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value =
                    if self.peek().is_punct(Punct::Semi) { None } else { Some(self.parse_expr()?) };
                self.expect_punct(Punct::Semi);
                Some(self.alloc_stmt(StmtKind::Return(value), start))
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi);
                Some(self.alloc_stmt(StmtKind::Break, start))
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi);
                Some(self.alloc_stmt(StmtKind::Continue, start))
            }
            TokenKind::Keyword(Keyword::Goto) => {
                self.diags.error(start, "`goto` is not part of the restricted C subset");
                None
            }
            _ if self.starts_type() => self.parse_local_decl(),
            _ => {
                let e = self.parse_expr()?;
                self.expect_punct(Punct::Semi);
                Some(self.alloc_stmt(StmtKind::Expr(e), start))
            }
        }
    }

    /// Parses a local declaration statement; multiple declarators become a
    /// block of single declarations.
    fn parse_local_decl(&mut self) -> Option<StmtId> {
        let start = self.span();
        let mut storage = Storage::None;
        loop {
            if self.eat_keyword(Keyword::Static) {
                storage = Storage::Static;
            } else if self.eat_keyword(Keyword::Extern) {
                storage = Storage::Extern;
            } else if self.peek().is_keyword(Keyword::Typedef) {
                self.diags.error(start, "local typedefs are not supported");
                return None;
            } else {
                break;
            }
        }
        let base = self.parse_type_specifier()?;
        let mut decls = Vec::new();
        loop {
            let (ty, name, sp) = self.parse_declarator(base)?;
            if matches!(self.ast.type_expr(ty).kind, TypeExprKind::Struct(s) if s == FUNC_MARKER) {
                self.diags.error(sp, "function declarations are not allowed inside functions");
                self.pending_fn = None;
                return None;
            }
            let init =
                if self.eat_punct(Punct::Assign) { Some(self.parse_initializer()?) } else { None };
            decls.push(
                self.alloc_stmt(StmtKind::Decl(VarDecl { name, ty, init, storage, span: sp }), sp),
            );
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi);
        if decls.len() == 1 {
            decls.pop()
        } else {
            Some(self.alloc_stmt(StmtKind::Block(Block { items: decls, span: start }), start))
        }
    }

    // ----- expressions -----------------------------------------------------

    fn parse_expr(&mut self) -> Option<ExprId> {
        let mut lhs = self.parse_assignment_expr()?;
        while self.eat_punct(Punct::Comma) {
            let rhs = self.parse_assignment_expr()?;
            let span = self.espan(lhs).to(self.espan(rhs));
            lhs = self.alloc_expr(ExprKind::Comma(lhs, rhs), span);
        }
        Some(lhs)
    }

    fn parse_assignment_expr(&mut self) -> Option<ExprId> {
        let lhs = self.parse_conditional_expr()?;
        let op = match self.peek_kind() {
            TokenKind::Punct(Punct::Assign) => Some(None),
            TokenKind::Punct(Punct::PlusAssign) => Some(Some(BinOp::Add)),
            TokenKind::Punct(Punct::MinusAssign) => Some(Some(BinOp::Sub)),
            TokenKind::Punct(Punct::StarAssign) => Some(Some(BinOp::Mul)),
            TokenKind::Punct(Punct::SlashAssign) => Some(Some(BinOp::Div)),
            TokenKind::Punct(Punct::PercentAssign) => Some(Some(BinOp::Rem)),
            TokenKind::Punct(Punct::ShlAssign) => Some(Some(BinOp::Shl)),
            TokenKind::Punct(Punct::ShrAssign) => Some(Some(BinOp::Shr)),
            TokenKind::Punct(Punct::AmpAssign) => Some(Some(BinOp::BitAnd)),
            TokenKind::Punct(Punct::CaretAssign) => Some(Some(BinOp::BitXor)),
            TokenKind::Punct(Punct::PipeAssign) => Some(Some(BinOp::BitOr)),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_assignment_expr()?;
            let span = self.espan(lhs).to(self.espan(rhs));
            return Some(self.alloc_expr(ExprKind::Assign { op, lhs, rhs }, span));
        }
        Some(lhs)
    }

    fn parse_conditional_expr(&mut self) -> Option<ExprId> {
        let cond = self.parse_binary_expr(0)?;
        if self.eat_punct(Punct::Question) {
            let then = self.parse_expr()?;
            self.expect_punct(Punct::Colon);
            let els = self.parse_conditional_expr()?;
            let span = self.espan(cond).to(self.espan(els));
            return Some(self.alloc_expr(ExprKind::Conditional { cond, then, els }, span));
        }
        Some(cond)
    }

    /// Precedence climbing for binary operators. `min_prec` is the minimum
    /// binding power to accept.
    fn parse_binary_expr(&mut self, min_prec: u8) -> Option<ExprId> {
        let mut lhs = self.parse_cast_expr()?;
        loop {
            let (prec, kind) = match self.peek_kind() {
                TokenKind::Punct(Punct::PipePipe) => (1, BinKind::Or),
                TokenKind::Punct(Punct::AmpAmp) => (2, BinKind::And),
                TokenKind::Punct(Punct::Pipe) => (3, BinKind::Op(BinOp::BitOr)),
                TokenKind::Punct(Punct::Caret) => (4, BinKind::Op(BinOp::BitXor)),
                TokenKind::Punct(Punct::Amp) => (5, BinKind::Op(BinOp::BitAnd)),
                TokenKind::Punct(Punct::EqEq) => (6, BinKind::Op(BinOp::Eq)),
                TokenKind::Punct(Punct::Ne) => (6, BinKind::Op(BinOp::Ne)),
                TokenKind::Punct(Punct::Lt) => (7, BinKind::Op(BinOp::Lt)),
                TokenKind::Punct(Punct::Le) => (7, BinKind::Op(BinOp::Le)),
                TokenKind::Punct(Punct::Gt) => (7, BinKind::Op(BinOp::Gt)),
                TokenKind::Punct(Punct::Ge) => (7, BinKind::Op(BinOp::Ge)),
                TokenKind::Punct(Punct::Shl) => (8, BinKind::Op(BinOp::Shl)),
                TokenKind::Punct(Punct::Shr) => (8, BinKind::Op(BinOp::Shr)),
                TokenKind::Punct(Punct::Plus) => (9, BinKind::Op(BinOp::Add)),
                TokenKind::Punct(Punct::Minus) => (9, BinKind::Op(BinOp::Sub)),
                TokenKind::Punct(Punct::Star) => (10, BinKind::Op(BinOp::Mul)),
                TokenKind::Punct(Punct::Slash) => (10, BinKind::Op(BinOp::Div)),
                TokenKind::Punct(Punct::Percent) => (10, BinKind::Op(BinOp::Rem)),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary_expr(prec + 1)?;
            let span = self.espan(lhs).to(self.espan(rhs));
            lhs = match kind {
                BinKind::Op(op) => self.alloc_expr(ExprKind::Binary(op, lhs, rhs), span),
                BinKind::And => self.alloc_expr(ExprKind::LogicalAnd(lhs, rhs), span),
                BinKind::Or => self.alloc_expr(ExprKind::LogicalOr(lhs, rhs), span),
            };
        }
        Some(lhs)
    }

    fn parse_cast_expr(&mut self) -> Option<ExprId> {
        if self.expr_depth >= MAX_EXPR_DEPTH {
            self.diags.error(self.span(), "expression nesting too deep");
            return None;
        }
        self.expr_depth += 1;
        let result = self.parse_cast_expr_inner();
        self.expr_depth -= 1;
        result
    }

    fn parse_cast_expr_inner(&mut self) -> Option<ExprId> {
        // `( type ) expr` — lookahead: '(' followed by a type start.
        if self.peek().is_punct(Punct::LParen) && self.starts_type_at(1) {
            let start = self.bump().span; // '('
            let base = self.parse_type_specifier()?;
            let mut ty = base;
            while self.eat_punct(Punct::Star) {
                ty = self.ast.ptr_to(ty);
            }
            self.expect_punct(Punct::RParen);
            let inner = self.parse_cast_expr()?;
            let span = start.to(self.espan(inner));
            return Some(self.alloc_expr(ExprKind::Cast(ty, inner), span));
        }
        self.parse_unary_expr()
    }

    fn parse_unary_expr(&mut self) -> Option<ExprId> {
        let start = self.span();
        let un = match self.peek_kind() {
            TokenKind::Punct(Punct::Minus) => Some(UnOp::Neg),
            TokenKind::Punct(Punct::Plus) => Some(UnOp::Plus),
            TokenKind::Punct(Punct::Bang) => Some(UnOp::Not),
            TokenKind::Punct(Punct::Tilde) => Some(UnOp::BitNot),
            TokenKind::Punct(Punct::Star) => Some(UnOp::Deref),
            TokenKind::Punct(Punct::Amp) => Some(UnOp::AddrOf),
            _ => None,
        };
        if let Some(op) = un {
            self.bump();
            let inner = self.parse_cast_expr()?;
            let span = start.to(self.espan(inner));
            return Some(self.alloc_expr(ExprKind::Unary(op, inner), span));
        }
        if self.eat_punct(Punct::PlusPlus) {
            let inner = self.parse_unary_expr()?;
            let span = start.to(self.espan(inner));
            return Some(self.alloc_expr(ExprKind::PreIncDec(inner, true), span));
        }
        if self.eat_punct(Punct::MinusMinus) {
            let inner = self.parse_unary_expr()?;
            let span = start.to(self.espan(inner));
            return Some(self.alloc_expr(ExprKind::PreIncDec(inner, false), span));
        }
        if self.peek().is_keyword(Keyword::Sizeof) {
            self.bump();
            if self.peek().is_punct(Punct::LParen) && self.starts_type_at(1) {
                self.bump();
                let base = self.parse_type_specifier()?;
                let mut ty = base;
                while self.eat_punct(Punct::Star) {
                    ty = self.ast.ptr_to(ty);
                }
                let end = self.expect_punct(Punct::RParen);
                return Some(self.alloc_expr(ExprKind::SizeofType(ty), start.to(end)));
            }
            let inner = self.parse_unary_expr()?;
            let span = start.to(self.espan(inner));
            return Some(self.alloc_expr(ExprKind::SizeofExpr(inner), span));
        }
        self.parse_postfix_expr()
    }

    fn parse_postfix_expr(&mut self) -> Option<ExprId> {
        let mut e = self.parse_primary_expr()?;
        loop {
            match self.peek_kind() {
                TokenKind::Punct(Punct::LParen) => {
                    let callee = match &self.ast.expr(e).kind {
                        ExprKind::Ident(name) => *name,
                        _ => {
                            self.diags.error(
                                self.espan(e),
                                "indirect calls are not part of the restricted C subset (no function pointers)",
                            );
                            return None;
                        }
                    };
                    self.bump();
                    let mut args = Vec::new();
                    if !self.peek().is_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_assignment_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect_punct(Punct::RParen);
                    let span = self.espan(e).to(end);
                    e = self.alloc_expr(ExprKind::Call { callee, args }, span);
                }
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    let end = self.expect_punct(Punct::RBracket);
                    let span = self.espan(e).to(end);
                    e = self.alloc_expr(ExprKind::Index(e, idx), span);
                }
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let (field, fsp) = self.expect_ident();
                    let span = self.espan(e).to(fsp);
                    e = self.alloc_expr(ExprKind::Member { base: e, field, arrow: false }, span);
                }
                TokenKind::Punct(Punct::Arrow) => {
                    self.bump();
                    let (field, fsp) = self.expect_ident();
                    let span = self.espan(e).to(fsp);
                    e = self.alloc_expr(ExprKind::Member { base: e, field, arrow: true }, span);
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    let end = self.bump().span;
                    let span = self.espan(e).to(end);
                    e = self.alloc_expr(ExprKind::PostIncDec(e, true), span);
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    let end = self.bump().span;
                    let span = self.espan(e).to(end);
                    e = self.alloc_expr(ExprKind::PostIncDec(e, false), span);
                }
                _ => break,
            }
        }
        Some(e)
    }

    fn parse_primary_expr(&mut self) -> Option<ExprId> {
        let start = self.span();
        match *self.peek_kind() {
            TokenKind::IntLit(v) => {
                self.bump();
                Some(self.alloc_expr(ExprKind::IntLit(v), start))
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                Some(self.alloc_expr(ExprKind::FloatLit(v), start))
            }
            TokenKind::CharLit(v) => {
                self.bump();
                Some(self.alloc_expr(ExprKind::CharLit(v), start))
            }
            TokenKind::StrLit(s) => {
                self.bump();
                // Adjacent string literals concatenate; the common single-
                // literal case reuses the lexer's symbol without copying.
                let sym = if matches!(self.peek_kind(), TokenKind::StrLit(_)) {
                    let mut full = s.as_str().to_string();
                    while let TokenKind::StrLit(next) = *self.peek_kind() {
                        full.push_str(next.as_str());
                        self.bump();
                    }
                    Symbol::intern(&full)
                } else {
                    s
                };
                Some(self.alloc_expr(ExprKind::StrLit(sym), start))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Some(self.alloc_expr(ExprKind::Ident(name), start))
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_punct(Punct::RParen);
                Some(e)
            }
            other => {
                self.diags.error(start, format!("expected expression, found {}", other.describe()));
                None
            }
        }
    }
}

/// Sentinel tag used to mark "this declarator was a function" between
/// `parse_declarator_suffix` and its callers; the real signature travels
/// through `Parser::pending_fn`.
const FUNC_MARKER: &str = "__safeflow_function_marker";

enum BinKind {
    Op(BinOp),
    And,
    Or,
}
