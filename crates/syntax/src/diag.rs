//! Diagnostics: errors and warnings produced by the frontend and later
//! analysis phases, with source-anchored rendering.

use crate::source::SourceMap;
use crate::span::Span;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note attached to another diagnostic.
    Note,
    /// Does not stop compilation/analysis.
    Warning,
    /// Stops the pipeline after the current phase.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single diagnostic message anchored at a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error/warning/note.
    pub severity: Severity,
    /// Primary location.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
    /// Secondary locations with explanatory text.
    pub notes: Vec<(Span, String)>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(span: Span, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Error, span, message: message.into(), notes: Vec::new() }
    }

    /// Creates a warning diagnostic.
    pub fn warning(span: Span, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Warning, span, message: message.into(), notes: Vec::new() }
    }

    /// Appends a secondary note.
    pub fn with_note(mut self, span: Span, message: impl Into<String>) -> Self {
        self.notes.push((span, message.into()));
        self
    }

    /// Renders the diagnostic against `sources` as a multi-line string.
    pub fn render(&self, sources: &SourceMap) -> String {
        let mut out =
            format!("{}: {} [{}]", self.severity, self.message, sources.describe(self.span));
        if !self.span.is_dummy() {
            let file = sources.file(self.span.file);
            let (line, col) = file.line_col(self.span.lo);
            let text = file.line_text(line);
            out.push_str(&format!("\n    {line:>4} | {text}"));
            // The pad mirrors the line prefix character-for-character, with
            // tabs kept as tabs, so the caret lines up however wide the
            // terminal renders a tab — and `col` is a *character* column
            // (see `line_col`), so the cap must count chars, not bytes.
            let pad: String = text
                .chars()
                .take(col as usize - 1)
                .map(|c| if c == '\t' { '\t' } else { ' ' })
                .collect();
            let line_chars = text.chars().count();
            let caret_len = (self.span.len().max(1) as usize)
                .min(line_chars.saturating_sub(col as usize - 1).max(1));
            out.push_str(&format!("\n         | {pad}{}", "^".repeat(caret_len)));
        }
        for (span, note) in &self.notes {
            out.push_str(&format!("\n    note: {} [{}]", note, sources.describe(*span)));
        }
        out
    }
}

/// Collects diagnostics across a compilation/analysis run.
#[derive(Debug, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Records a diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.items.push(diag);
    }

    /// Records an error at `span`.
    pub fn error(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::error(span, message));
    }

    /// Records a warning at `span`.
    pub fn warning(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::warning(span, message));
    }

    /// All recorded diagnostics in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Moves all diagnostics out of `other` into this sink, preserving
    /// `other`'s emission order. Used to splice per-file lexer diagnostics
    /// (collected off-thread under parallel parsing) into the main sink at
    /// the point the file is first included.
    pub fn append(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Whether any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.items.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Total number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no diagnostics were recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Renders all diagnostics against `sources`, one block per item.
    pub fn render_all(&self, sources: &SourceMap) -> String {
        self.items.iter().map(|d| d.render(sources)).collect::<Vec<_>>().join("\n")
    }

    /// Consumes the sink, returning the diagnostics.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::FileId;

    #[test]
    fn error_detection() {
        let mut d = Diagnostics::new();
        assert!(!d.has_errors());
        d.warning(Span::dummy(), "w");
        assert!(!d.has_errors());
        d.error(Span::dummy(), "e");
        assert!(d.has_errors());
        assert_eq!(d.error_count(), 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn render_includes_caret() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("t.c", "int bad = ;\n");
        let diag = Diagnostic::error(Span::new(f, 10, 11), "expected expression");
        let rendered = diag.render(&sm);
        assert!(rendered.contains("error: expected expression"));
        assert!(rendered.contains("t.c:1:11"));
        assert!(rendered.contains('^'));
    }

    #[test]
    fn render_includes_notes() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("t.c", "x\ny\n");
        let diag = Diagnostic::error(Span::new(f, 0, 1), "main")
            .with_note(Span::new(f, 2, 3), "secondary");
        let rendered = diag.render(&sm);
        assert!(rendered.contains("note: secondary"));
    }

    #[test]
    fn caret_pad_preserves_tabs_and_counts_chars() {
        let mut sm = SourceMap::new();
        // "\tµ x = 1;" — a tab, a 2-byte char, then `x` at byte 4 / char
        // column 4. The pad must replay the tab (so the caret stays under
        // `x` at any tab width) and count the 2-byte `µ` as one column.
        let f = sm.add_file("t.c", "\t\u{b5} x = 1;\n");
        let diag = Diagnostic::error(Span::new(f, 4, 5), "msg");
        let rendered = diag.render(&sm);
        let caret_line = rendered.lines().last().unwrap();
        assert!(caret_line.ends_with("| \t  ^"), "got {caret_line:?}");
    }

    #[test]
    fn caret_on_crlf_line_is_capped_to_visible_text() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("t.c", "int bad\r\nint y;\r\n");
        // Span runs to the end of line 1 (including the `\r`): the caret
        // must not extend past the visible text.
        let diag = Diagnostic::error(Span::new(f, 4, 8), "msg");
        let rendered = diag.render(&sm);
        let caret_line = rendered.lines().last().unwrap();
        assert!(caret_line.ends_with("|     ^^^"), "got {caret_line:?}");
    }

    #[test]
    fn dummy_span_renders_without_panic() {
        let sm = SourceMap::new();
        let diag = Diagnostic::warning(Span::dummy(), "hmm");
        assert!(diag.render(&sm).contains("<unknown>"));
        let _ = FileId(3);
    }
}
