//! Token definitions for the C subset.
//!
//! Tokens are fully `Copy`: text payloads (identifiers, string literals,
//! annotation bodies, directives) are interned [`Symbol`]s rather than
//! owned `String`s, so the lexer never allocates per token and the parser
//! and preprocessor move tokens around for free.

use crate::span::Span;
use safeflow_util::Symbol;
use std::fmt;

/// Keywords of the C subset.
#[allow(missing_docs)] // variant names are their own documentation
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Void,
    Char,
    Short,
    Int,
    Long,
    Float,
    Double,
    Signed,
    Unsigned,
    Struct,
    Union,
    Enum,
    Typedef,
    Static,
    Extern,
    Const,
    Volatile,
    If,
    Else,
    While,
    Do,
    For,
    Return,
    Break,
    Continue,
    Switch,
    Case,
    Default,
    Sizeof,
    Goto,
}

impl Keyword {
    /// Looks up a keyword by its source spelling.
    #[allow(clippy::should_implement_trait)] // returns Option, not Result
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "void" => Void,
            "char" => Char,
            "short" => Short,
            "int" => Int,
            "long" => Long,
            "float" => Float,
            "double" => Double,
            "signed" => Signed,
            "unsigned" => Unsigned,
            "struct" => Struct,
            "union" => Union,
            "enum" => Enum,
            "typedef" => Typedef,
            "static" => Static,
            "extern" => Extern,
            "const" => Const,
            "volatile" => Volatile,
            "if" => If,
            "else" => Else,
            "while" => While,
            "do" => Do,
            "for" => For,
            "return" => Return,
            "break" => Break,
            "continue" => Continue,
            "switch" => Switch,
            "case" => Case,
            "default" => Default,
            "sizeof" => Sizeof,
            "goto" => Goto,
            _ => return None,
        })
    }

    /// The source spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Void => "void",
            Char => "char",
            Short => "short",
            Int => "int",
            Long => "long",
            Float => "float",
            Double => "double",
            Signed => "signed",
            Unsigned => "unsigned",
            Struct => "struct",
            Union => "union",
            Enum => "enum",
            Typedef => "typedef",
            Static => "static",
            Extern => "extern",
            Const => "const",
            Volatile => "volatile",
            If => "if",
            Else => "else",
            While => "while",
            Do => "do",
            For => "for",
            Return => "return",
            Break => "break",
            Continue => "continue",
            Switch => "switch",
            Case => "case",
            Default => "default",
            Sizeof => "sizeof",
            Goto => "goto",
        }
    }
}

/// Punctuation and operator tokens.
#[allow(missing_docs)] // variant names mirror the operators
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    PlusPlus,
    MinusMinus,
    Amp,
    Star,
    Plus,
    Minus,
    Tilde,
    Bang,
    Slash,
    Percent,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    Caret,
    Pipe,
    AmpAmp,
    PipePipe,
    Question,
    Colon,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    ShlAssign,
    ShrAssign,
    AmpAssign,
    CaretAssign,
    PipeAssign,
    Ellipsis,
}

impl Punct {
    /// The source spelling of the operator.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Arrow => "->",
            PlusPlus => "++",
            MinusMinus => "--",
            Amp => "&",
            Star => "*",
            Plus => "+",
            Minus => "-",
            Tilde => "~",
            Bang => "!",
            Slash => "/",
            Percent => "%",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            Ne => "!=",
            Caret => "^",
            Pipe => "|",
            AmpAmp => "&&",
            PipePipe => "||",
            Question => "?",
            Colon => ":",
            Assign => "=",
            PlusAssign => "+=",
            MinusAssign => "-=",
            StarAssign => "*=",
            SlashAssign => "/=",
            PercentAssign => "%=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
            AmpAssign => "&=",
            CaretAssign => "^=",
            PipeAssign => "|=",
            Ellipsis => "...",
        }
    }
}

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TokenKind {
    /// Identifier (may later resolve to a typedef name in the parser).
    Ident(Symbol),
    /// Reserved word.
    Keyword(Keyword),
    /// Integer constant with its value (suffixes folded away).
    IntLit(i64),
    /// Floating-point constant.
    FloatLit(f64),
    /// Character constant, value of the (possibly escaped) character.
    CharLit(i64),
    /// String literal, unescaped contents (interned).
    StrLit(Symbol),
    /// A SafeFlow annotation comment; payload is the raw annotation body
    /// (text after the `SafeFlow Annotation` marker, before comment close).
    Annotation(Symbol),
    /// Operator or punctuation.
    Punct(Punct),
    /// A preprocessor directive line (only surfaced by the raw lexer; the
    /// preprocessor consumes these). Payload excludes the leading `#`.
    Directive(Symbol),
    /// End of file.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{}`", s.as_str()),
            TokenKind::Keyword(k) => format!("keyword `{}`", k.as_str()),
            TokenKind::IntLit(v) => format!("integer `{v}`"),
            TokenKind::FloatLit(v) => format!("float `{v}`"),
            TokenKind::CharLit(v) => format!("char literal `{v}`"),
            TokenKind::StrLit(_) => "string literal".to_string(),
            TokenKind::Punct(p) => format!("`{}`", p.as_str()),
            TokenKind::Annotation(_) => "SafeFlow annotation".to_string(),
            TokenKind::Directive(d) => format!("preprocessor directive `#{}`", d.as_str()),
            TokenKind::Eof => "end of file".to_string(),
        }
    }
}

/// A lexed token with location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

impl Token {
    /// Pairs a kind with its span.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }

    /// Whether this token is the given punctuation.
    pub fn is_punct(&self, p: Punct) -> bool {
        matches!(&self.kind, TokenKind::Punct(q) if *q == p)
    }

    /// Whether this token is the given keyword.
    pub fn is_keyword(&self, k: Keyword) -> bool {
        matches!(&self.kind, TokenKind::Keyword(q) if *q == k)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{}", s.as_str()),
            TokenKind::Keyword(k) => write!(f, "{}", k.as_str()),
            TokenKind::IntLit(v) => write!(f, "{v}"),
            TokenKind::FloatLit(v) => write!(f, "{v}"),
            TokenKind::CharLit(v) => write!(f, "'{v}'"),
            TokenKind::StrLit(s) => write!(f, "{:?}", s.as_str()),
            TokenKind::Punct(p) => write!(f, "{}", p.as_str()),
            TokenKind::Annotation(a) => write!(f, "/*** SafeFlow Annotation {} ***/", a.as_str()),
            TokenKind::Directive(d) => write!(f, "#{}", d.as_str()),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [Keyword::Void, Keyword::Unsigned, Keyword::Sizeof, Keyword::Goto] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("notakeyword"), None);
    }

    #[test]
    fn token_predicates() {
        let t = Token::new(TokenKind::Punct(Punct::Semi), Span::dummy());
        assert!(t.is_punct(Punct::Semi));
        assert!(!t.is_punct(Punct::Comma));
        assert!(!t.is_keyword(Keyword::If));
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(TokenKind::Ident(Symbol::intern("x")).describe(), "identifier `x`");
        assert_eq!(TokenKind::Punct(Punct::Arrow).describe(), "`->`");
    }
}
