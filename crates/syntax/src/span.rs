//! Source positions and spans.
//!
//! Every token, AST node, and diagnostic carries a [`Span`] identifying the
//! byte range it covers within a file registered in a
//! [`SourceMap`](crate::source::SourceMap).

use std::fmt;

/// Identifier of a file registered in a [`SourceMap`](crate::source::SourceMap).
///
/// `FileId(0)` is the first registered file. File ids are only meaningful
/// relative to the source map that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// A byte range within a single source file.
///
/// `lo` is inclusive, `hi` exclusive. The *dummy* span (`Span::dummy()`) is
/// used for synthesized nodes that have no source location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// File containing this span.
    pub file: FileId,
    /// Start byte offset (inclusive).
    pub lo: u32,
    /// End byte offset (exclusive).
    pub hi: u32,
}

impl Span {
    /// Creates a new span covering `lo..hi` in `file`.
    pub fn new(file: FileId, lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi, "span lo must not exceed hi");
        Span { file, lo, hi }
    }

    /// A placeholder span for synthesized constructs.
    pub fn dummy() -> Self {
        Span { file: FileId(u32::MAX), lo: 0, hi: 0 }
    }

    /// Returns `true` if this is the placeholder span.
    pub fn is_dummy(&self) -> bool {
        self.file == FileId(u32::MAX)
    }

    /// Smallest span covering both `self` and `other`.
    ///
    /// If the spans belong to different files (e.g. across an `#include`
    /// boundary), `self` is returned unchanged.
    pub fn to(self, other: Span) -> Span {
        if self.is_dummy() {
            return other;
        }
        if other.is_dummy() || self.file != other.file {
            return self;
        }
        Span::new(self.file, self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Length in bytes.
    pub fn len(&self) -> u32 {
        self.hi - self.lo
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_dummy() {
            write!(f, "<dummy>")
        } else {
            write!(f, "{}:{}..{}", self.file, self.lo, self.hi)
        }
    }
}

/// A value paired with the span it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Spanned<T> {
    /// The wrapped value.
    pub node: T,
    /// Where it appeared.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Pairs `node` with `span`.
    pub fn new(node: T, span: Span) -> Self {
        Spanned { node, span }
    }

    /// Maps the wrapped value, keeping the span.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Spanned<U> {
        Spanned { node: f(self.node), span: self.span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_to_merges_ranges() {
        let f = FileId(0);
        let a = Span::new(f, 4, 10);
        let b = Span::new(f, 8, 20);
        assert_eq!(a.to(b), Span::new(f, 4, 20));
        assert_eq!(b.to(a), Span::new(f, 4, 20));
    }

    #[test]
    fn span_to_across_files_keeps_self() {
        let a = Span::new(FileId(0), 0, 5);
        let b = Span::new(FileId(1), 0, 5);
        assert_eq!(a.to(b), a);
    }

    #[test]
    fn dummy_span_behaviour() {
        let d = Span::dummy();
        assert!(d.is_dummy());
        let a = Span::new(FileId(0), 1, 2);
        assert_eq!(d.to(a), a);
        assert_eq!(a.to(d), a);
    }

    #[test]
    fn spanned_map_preserves_span() {
        let s = Spanned::new(3u32, Span::new(FileId(0), 0, 1));
        let t = s.map(|v| v * 2);
        assert_eq!(t.node, 6);
        assert_eq!(t.span, Span::new(FileId(0), 0, 1));
    }
}
