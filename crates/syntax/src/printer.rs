//! C pretty-printer for the AST.
//!
//! Used for golden tests and the parse → print → reparse round-trip
//! property: printing a parsed program and reparsing it must yield an
//! equivalent AST (modulo spans). Annotations are re-emitted as SafeFlow
//! comment blocks so the round trip preserves them.
//!
//! All node references are arena ids, so every printing function threads
//! the unit's [`Ast`]; interned names are resolved with [`Symbol::as_str`]
//! at the last moment, keeping output byte-identical to the pre-arena
//! printer.

use crate::annot::{AnnExpr, Annotation};
use crate::ast::*;
use std::fmt::Write as _;

/// Renders a translation unit as compilable C-subset source.
pub fn print_unit(unit: &TranslationUnit) -> String {
    let mut p = Printer { ast: &unit.ast, out: String::new(), indent: 0 };
    for item in &unit.items {
        p.item(item);
        p.out.push('\n');
    }
    p.out
}

struct Printer<'a> {
    ast: &'a Ast,
    out: String,
    indent: usize,
}

impl<'a> Printer<'a> {
    fn pad(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::Struct(s) => {
                let kw = if s.is_union { "union" } else { "struct" };
                let _ = writeln!(self.out, "{kw} {} {{", s.name);
                for f in &s.fields {
                    self.pad();
                    let _ =
                        writeln!(self.out, "    {};", declarator(self.ast, f.ty, f.name.as_str()));
                }
                self.out.push_str("};\n");
            }
            Item::Enum(e) => {
                match &e.name {
                    Some(n) => {
                        let _ = writeln!(self.out, "enum {n} {{");
                    }
                    None => self.out.push_str("enum {\n"),
                }
                for (name, value, _) in &e.variants {
                    self.pad();
                    match value {
                        Some(v) => {
                            let _ = writeln!(self.out, "    {name} = {},", expr(self.ast, *v));
                        }
                        None => {
                            let _ = writeln!(self.out, "    {name},");
                        }
                    }
                }
                self.out.push_str("};\n");
            }
            Item::Typedef(t) => {
                let _ =
                    writeln!(self.out, "typedef {};", declarator(self.ast, t.ty, t.name.as_str()));
            }
            Item::Global(g) => {
                let storage = storage_prefix(g.storage);
                match g.init {
                    Some(init) => {
                        let _ = writeln!(
                            self.out,
                            "{storage}{} = {};",
                            declarator(self.ast, g.ty, g.name.as_str()),
                            initializer(self.ast, init)
                        );
                    }
                    None => {
                        let _ = writeln!(
                            self.out,
                            "{storage}{};",
                            declarator(self.ast, g.ty, g.name.as_str())
                        );
                    }
                }
            }
            Item::Func(f) => {
                let storage = storage_prefix(f.storage);
                let params = if f.params.is_empty() && !f.varargs {
                    "void".to_string()
                } else {
                    let mut ps: Vec<String> = f
                        .params
                        .iter()
                        .map(|p| declarator(self.ast, p.ty, p.name.as_str()))
                        .collect();
                    if f.varargs {
                        ps.push("...".to_string());
                    }
                    ps.join(", ")
                };
                let _ = write!(
                    self.out,
                    "{storage}{}({params})",
                    declarator(self.ast, f.ret, f.name.as_str())
                );
                if !f.annotations.is_empty() {
                    self.out.push('\n');
                    self.annotations(&f.annotations);
                }
                match &f.body {
                    Some(b) => {
                        self.out.push_str(" {\n");
                        self.indent += 1;
                        for s in &b.items {
                            self.stmt(*s);
                        }
                        self.indent -= 1;
                        self.out.push_str("}\n");
                    }
                    None => self.out.push_str(";\n"),
                }
            }
        }
    }

    fn annotations(&mut self, anns: &[Annotation]) {
        self.out.push_str("/** SafeFlow Annotation\n");
        for a in anns {
            self.pad();
            let _ = writeln!(self.out, "    {}", annotation(a));
        }
        self.out.push_str("*/");
    }

    /// Prints a statement used as a brace-wrapped body: blocks are
    /// flattened one level so round-tripping does not accumulate braces.
    fn body(&mut self, s: StmtId) {
        match &self.ast.stmt(s).kind {
            StmtKind::Block(b) => {
                for inner in b.items.clone() {
                    self.stmt(inner);
                }
            }
            _ => self.stmt(s),
        }
    }

    fn stmt(&mut self, s: StmtId) {
        match &self.ast.stmt(s).kind {
            StmtKind::Empty => {
                self.pad();
                self.out.push_str(";\n");
            }
            StmtKind::Expr(e) => {
                self.pad();
                let _ = writeln!(self.out, "{};", expr(self.ast, *e));
            }
            StmtKind::Decl(d) => {
                self.pad();
                match d.init {
                    Some(init) => {
                        let _ = writeln!(
                            self.out,
                            "{} = {};",
                            declarator(self.ast, d.ty, d.name.as_str()),
                            initializer(self.ast, init)
                        );
                    }
                    None => {
                        let _ =
                            writeln!(self.out, "{};", declarator(self.ast, d.ty, d.name.as_str()));
                    }
                }
            }
            StmtKind::Block(b) => {
                self.pad();
                self.out.push_str("{\n");
                self.indent += 1;
                for inner in b.items.clone() {
                    self.stmt(inner);
                }
                self.indent -= 1;
                self.pad();
                self.out.push_str("}\n");
            }
            StmtKind::If { cond, then, els } => {
                let (cond, then, els) = (*cond, *then, *els);
                self.pad();
                let _ = writeln!(self.out, "if ({}) {{", expr(self.ast, cond));
                self.indent += 1;
                self.body(then);
                self.indent -= 1;
                match els {
                    Some(e) => {
                        self.pad();
                        self.out.push_str("} else {\n");
                        self.indent += 1;
                        self.body(e);
                        self.indent -= 1;
                        self.pad();
                        self.out.push_str("}\n");
                    }
                    None => {
                        self.pad();
                        self.out.push_str("}\n");
                    }
                }
            }
            StmtKind::While { cond, body } => {
                let (cond, body) = (*cond, *body);
                self.pad();
                let _ = writeln!(self.out, "while ({}) {{", expr(self.ast, cond));
                self.indent += 1;
                self.body(body);
                self.indent -= 1;
                self.pad();
                self.out.push_str("}\n");
            }
            StmtKind::DoWhile { body, cond } => {
                let (body, cond) = (*body, *cond);
                self.pad();
                self.out.push_str("do {\n");
                self.indent += 1;
                self.body(body);
                self.indent -= 1;
                self.pad();
                let _ = writeln!(self.out, "}} while ({});", expr(self.ast, cond));
            }
            StmtKind::For { init, cond, step, body } => {
                let (init, cond, step, body) = (*init, *cond, *step, *body);
                self.pad();
                // The init clause is a statement; inline its text without
                // the newline/indentation.
                let init_text = match init {
                    Some(s) => {
                        let mut sub = Printer { ast: self.ast, out: String::new(), indent: 0 };
                        sub.stmt(s);
                        sub.out.trim().trim_end_matches(';').to_string()
                    }
                    None => String::new(),
                };
                let cond_text = cond.map(|e| expr(self.ast, e)).unwrap_or_default();
                let step_text = step.map(|e| expr(self.ast, e)).unwrap_or_default();
                let _ = writeln!(self.out, "for ({init_text}; {cond_text}; {step_text}) {{");
                self.indent += 1;
                self.body(body);
                self.indent -= 1;
                self.pad();
                self.out.push_str("}\n");
            }
            StmtKind::Switch { scrutinee, cases } => {
                let scrutinee = *scrutinee;
                let cases = cases.clone();
                self.pad();
                let _ = writeln!(self.out, "switch ({}) {{", expr(self.ast, scrutinee));
                for case in &cases {
                    self.pad();
                    match case.label {
                        Some(l) => {
                            let _ = writeln!(self.out, "case {}:", expr(self.ast, l));
                        }
                        None => self.out.push_str("default:\n"),
                    }
                    self.indent += 1;
                    for s in &case.stmts {
                        self.stmt(*s);
                    }
                    self.indent -= 1;
                }
                self.pad();
                self.out.push_str("}\n");
            }
            StmtKind::Return(v) => {
                let v = *v;
                self.pad();
                match v {
                    Some(e) => {
                        let _ = writeln!(self.out, "return {};", expr(self.ast, e));
                    }
                    None => self.out.push_str("return;\n"),
                }
            }
            StmtKind::Break => {
                self.pad();
                self.out.push_str("break;\n");
            }
            StmtKind::Continue => {
                self.pad();
                self.out.push_str("continue;\n");
            }
            StmtKind::Annotation(a) => {
                let text = annotation(a);
                self.pad();
                let _ = writeln!(self.out, "/** SafeFlow Annotation {text} */");
            }
        }
    }
}

fn storage_prefix(s: Storage) -> &'static str {
    match s {
        Storage::None => "",
        Storage::Static => "static ",
        Storage::Extern => "extern ",
        Storage::Typedef => "typedef ",
    }
}

/// Renders a type applied to a declarator name (`int *x`, `float v[8]`).
fn declarator(ast: &Ast, ty: TypeId, name: &str) -> String {
    match ast.type_expr(ty).kind {
        TypeExprKind::Ptr(inner) => declarator(ast, inner, &format!("*{name}")),
        TypeExprKind::Array(inner, size) => {
            let dim = size.map(|e| expr(ast, e)).unwrap_or_default();
            declarator(ast, inner, &format!("{name}[{dim}]"))
        }
        base => format!("{} {name}", base_type(&base)),
    }
}

fn base_type(k: &TypeExprKind) -> String {
    match k {
        TypeExprKind::Void => "void".into(),
        TypeExprKind::Char(Signedness::Signed) => "char".into(),
        TypeExprKind::Char(Signedness::Unsigned) => "unsigned char".into(),
        TypeExprKind::Short(Signedness::Signed) => "short".into(),
        TypeExprKind::Short(Signedness::Unsigned) => "unsigned short".into(),
        TypeExprKind::Int(Signedness::Signed) => "int".into(),
        TypeExprKind::Int(Signedness::Unsigned) => "unsigned int".into(),
        TypeExprKind::Long(Signedness::Signed) => "long".into(),
        TypeExprKind::Long(Signedness::Unsigned) => "unsigned long".into(),
        TypeExprKind::Float => "float".into(),
        TypeExprKind::Double => "double".into(),
        TypeExprKind::Named(n) => n.as_str().into(),
        TypeExprKind::Struct(n) => format!("struct {n}"),
        TypeExprKind::Union(n) => format!("union {n}"),
        TypeExprKind::Enum(n) => format!("enum {n}"),
        TypeExprKind::Ptr(_) | TypeExprKind::Array(..) => unreachable!("handled by declarator"),
    }
}

fn initializer(ast: &Ast, init: InitId) -> String {
    match ast.init(init) {
        Initializer::Expr(e) => expr(ast, *e),
        Initializer::List(items, _) => {
            let inner: Vec<String> = items.iter().map(|i| initializer(ast, *i)).collect();
            format!("{{ {} }}", inner.join(", "))
        }
    }
}

/// Renders an expression, fully parenthesized (correct by construction;
/// precedence-minimal output is not a goal).
pub fn expr(ast: &Ast, e: ExprId) -> String {
    match &ast.expr(e).kind {
        ExprKind::IntLit(v) => {
            if *v < 0 {
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        ExprKind::FloatLit(v) => {
            if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        ExprKind::CharLit(v) => v.to_string(),
        ExprKind::StrLit(s) => format!("{:?}", s.as_str()),
        ExprKind::Ident(n) => n.as_str().into(),
        ExprKind::Unary(op, inner) => {
            let o = match op {
                UnOp::Neg => "-",
                UnOp::Plus => "+",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
                UnOp::Deref => "*",
                UnOp::AddrOf => "&",
            };
            format!("({o}{})", expr(ast, *inner))
        }
        ExprKind::Binary(op, l, r) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::BitAnd => "&",
                BinOp::BitXor => "^",
                BinOp::BitOr => "|",
            };
            format!("({} {o} {})", expr(ast, *l), expr(ast, *r))
        }
        ExprKind::LogicalAnd(l, r) => format!("({} && {})", expr(ast, *l), expr(ast, *r)),
        ExprKind::LogicalOr(l, r) => format!("({} || {})", expr(ast, *l), expr(ast, *r)),
        ExprKind::Assign { op, lhs, rhs } => {
            let o = match op {
                None => "=".to_string(),
                Some(b) => format!(
                    "{}=",
                    match b {
                        BinOp::Add => "+",
                        BinOp::Sub => "-",
                        BinOp::Mul => "*",
                        BinOp::Div => "/",
                        BinOp::Rem => "%",
                        BinOp::Shl => "<<",
                        BinOp::Shr => ">>",
                        BinOp::BitAnd => "&",
                        BinOp::BitXor => "^",
                        BinOp::BitOr => "|",
                        _ => "?",
                    }
                ),
            };
            format!("{} {o} {}", expr(ast, *lhs), expr(ast, *rhs))
        }
        ExprKind::Conditional { cond, then, els } => {
            format!("({} ? {} : {})", expr(ast, *cond), expr(ast, *then), expr(ast, *els))
        }
        ExprKind::Call { callee, args } => {
            let a: Vec<String> = args.iter().map(|x| expr(ast, *x)).collect();
            format!("{callee}({})", a.join(", "))
        }
        ExprKind::Index(base, idx) => format!("{}[{}]", expr(ast, *base), expr(ast, *idx)),
        ExprKind::Member { base, field, arrow } => {
            format!("{}{}{field}", expr(ast, *base), if *arrow { "->" } else { "." })
        }
        ExprKind::Cast(ty, inner) => {
            format!("(({}) {})", cast_type(ast, *ty), expr(ast, *inner))
        }
        ExprKind::SizeofType(ty) => format!("sizeof({})", cast_type(ast, *ty)),
        ExprKind::SizeofExpr(inner) => format!("sizeof({})", expr(ast, *inner)),
        ExprKind::PreIncDec(inner, true) => format!("(++{})", expr(ast, *inner)),
        ExprKind::PreIncDec(inner, false) => format!("(--{})", expr(ast, *inner)),
        ExprKind::PostIncDec(inner, true) => format!("({}++)", expr(ast, *inner)),
        ExprKind::PostIncDec(inner, false) => format!("({}--)", expr(ast, *inner)),
        ExprKind::Comma(l, r) => format!("({}, {})", expr(ast, *l), expr(ast, *r)),
    }
}

/// Abstract-declarator form of a type (for casts/sizeof).
fn cast_type(ast: &Ast, ty: TypeId) -> String {
    match ast.type_expr(ty).kind {
        TypeExprKind::Ptr(inner) => format!("{} *", cast_type(ast, inner)),
        TypeExprKind::Array(inner, _) => format!("{} *", cast_type(ast, inner)),
        base => base_type(&base),
    }
}

fn annotation(a: &Annotation) -> String {
    match a {
        Annotation::AssumeCore { ptr, offset, size, .. } => {
            format!("assume(core({ptr}, {}, {}))", ann_expr(offset), ann_expr(size))
        }
        Annotation::AssertSafe { var, .. } => format!("assert(safe({var}))"),
        Annotation::ShmInit { .. } => "shminit".to_string(),
        Annotation::ShmVar { ptr, size, .. } => {
            format!("assume(shmvar({ptr}, {}))", ann_expr(size))
        }
        Annotation::Noncore { target, .. } => format!("assume(noncore({target}))"),
        Annotation::Label { name, below: Some(b), .. } => {
            format!("assume(label({name}, {b}))")
        }
        Annotation::Label { name, below: None, .. } => format!("assume(label({name}))"),
        Annotation::Declassifier { from, to, .. } => {
            format!("assume(declassifier({from}, {to}))")
        }
        Annotation::Channel { ptr, size, label, .. } => {
            format!("assume(channel({ptr}, {}, {label}))", ann_expr(size))
        }
        Annotation::AssumeDeclassify { ptr, offset, size, to, .. } => {
            format!("assume(declassify({ptr}, {}, {}, {to}))", ann_expr(offset), ann_expr(size))
        }
    }
}

fn ann_expr(e: &AnnExpr) -> String {
    match e {
        AnnExpr::Int(v) => v.to_string(),
        AnnExpr::Sizeof(n) => format!("sizeof({n})"),
        AnnExpr::Ident(n) => n.clone(),
        AnnExpr::Add(a, b) => format!("({} + {})", ann_expr(a), ann_expr(b)),
        AnnExpr::Sub(a, b) => format!("({} - {})", ann_expr(a), ann_expr(b)),
        AnnExpr::Mul(a, b) => format!("({} * {})", ann_expr(a), ann_expr(b)),
        AnnExpr::Div(a, b) => format!("({} / {})", ann_expr(a), ann_expr(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_source;

    fn round_trip(src: &str) {
        let first = parse_source("a.c", src);
        assert!(
            !first.diags.has_errors(),
            "first parse:\n{}",
            first.diags.render_all(&first.sources)
        );
        let printed = print_unit(&first.unit);
        let second = parse_source("b.c", &printed);
        assert!(
            !second.diags.has_errors(),
            "reparse failed on:\n{printed}\n{}",
            second.diags.render_all(&second.sources)
        );
        // Structural comparison: item count and names survive; full AST
        // equality is checked modulo spans via the printed forms.
        let reprinted = print_unit(&second.unit);
        assert_eq!(printed, reprinted, "printing must be a fixpoint");
    }

    #[test]
    fn round_trip_declarations() {
        round_trip("int a; float b = 1.5; int c[4]; int *d;");
    }

    #[test]
    fn round_trip_structs_and_typedefs() {
        round_trip(
            "typedef struct Pt { float x; float y; } Pt;\nstruct Pt origin;\nenum M { A, B = 3 };",
        );
    }

    #[test]
    fn round_trip_control_flow() {
        round_trip(
            r#"
            int f(int n) {
                int s = 0;
                int i;
                for (i = 0; i < n; i++) {
                    if (i % 2 == 0) s += i; else s -= 1;
                }
                while (s > 10) { s /= 2; }
                do { s++; } while (s < 0);
                switch (s) { case 1: return 1; default: break; }
                return s;
            }
            "#,
        );
    }

    #[test]
    fn round_trip_expressions() {
        round_trip(
            r#"
            typedef struct { float v[4]; } D;
            float g(D *d, int i) {
                float x = d->v[i] * 2.0 + (i > 0 ? 1.0 : 0.0);
                x = -x;
                return x;
            }
            "#,
        );
    }

    #[test]
    fn round_trip_annotations() {
        round_trip(
            r#"
            typedef struct { float c; } S;
            S *p;
            void *shmat(int a, void *b, int c);
            void init(void)
            /** SafeFlow Annotation shminit */
            {
                p = (S *) shmat(0, 0, 0);
                /** SafeFlow Annotation
                    assume(shmvar(p, sizeof(S)))
                    assume(noncore(p))
                */
            }
            float mon(float f)
            /** SafeFlow Annotation assume(core(p, 0, sizeof(S))) */
            {
                float v = p->c;
                /** SafeFlow Annotation assert(safe(v)) */
                return v;
            }
            "#,
        );
    }

    #[test]
    fn round_trip_figure2() {
        // The full running example survives a round trip.
        let fig2 = r#"
            typedef struct { float control; float track; float angle; } SHMData;
            SHMData *noncoreCtrl;
            SHMData *feedback;
            void *shmat(int shmid, void *addr, int flags);
            int checkSafety(SHMData *fb, SHMData *ctrl);
            float decision(SHMData *f, float safeControl, SHMData *ctrl)
            /** SafeFlow Annotation assume(core(noncoreCtrl, 0, sizeof(SHMData))) */
            {
                if (checkSafety(feedback, noncoreCtrl))
                    return noncoreCtrl->control;
                else
                    return safeControl;
            }
        "#;
        round_trip(fig2);
    }

    #[test]
    fn printed_annotations_rebind_identically() {
        // The annotation facts must survive printing (not just parse).
        let src = r#"
            typedef struct { float c; } S;
            S *p;
            void *shmat(int a, void *b, int c);
            void init(void)
            /** SafeFlow Annotation shminit */
            {
                p = (S *) shmat(0, 0, 0);
                /** SafeFlow Annotation
                    assume(shmvar(p, sizeof(S)))
                    assume(noncore(p))
                */
            }
        "#;
        let first = parse_source("a.c", src);
        let printed = print_unit(&first.unit);
        let second = parse_source("b.c", &printed);
        let f1 = first.unit.function("init").unwrap();
        let f2 = second.unit.function("init").unwrap();
        assert_eq!(f1.annotations.len(), f2.annotations.len());
    }
}
