//! Source file management: registering files and resolving spans to
//! human-readable line/column positions.

use crate::span::{FileId, Span};

/// A single registered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Display name (path or synthetic name like `<fig2.c>`).
    pub name: String,
    /// Full file contents.
    pub text: String,
    /// Byte offsets at which each line starts (always contains 0).
    line_starts: Vec<u32>,
}

impl SourceFile {
    fn new(name: String, text: String) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceFile { name, text, line_starts }
    }

    /// 1-based line number containing byte offset `pos`.
    pub fn line_of(&self, pos: u32) -> u32 {
        match self.line_starts.binary_search(&pos) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }

    /// 1-based (line, column) of byte offset `pos`.
    ///
    /// The column counts *characters* from the line start, so positions on
    /// lines containing multi-byte UTF-8 (e.g. `µ`/`°` in control-code
    /// comments) render correctly in `file:line:col` descriptions.
    pub fn line_col(&self, pos: u32) -> (u32, u32) {
        let line = self.line_of(pos);
        let start = self.line_starts[(line - 1) as usize];
        let col = match self.text.get(start as usize..pos as usize) {
            Some(prefix) => prefix.chars().count() as u32,
            // `pos` is past the end or inside a multi-byte sequence:
            // fall back to the byte distance rather than panic.
            None => pos.saturating_sub(start),
        };
        (line, col + 1)
    }

    /// The text of 1-based line `line`, without the trailing newline.
    pub fn line_text(&self, line: u32) -> &str {
        let i = (line - 1) as usize;
        let lo = self.line_starts[i] as usize;
        let hi = self.line_starts.get(i + 1).map(|&h| h as usize).unwrap_or(self.text.len());
        self.text[lo..hi].trim_end_matches(['\n', '\r'])
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> u32 {
        self.line_starts.len() as u32
    }
}

/// Registry of all source files participating in a parse.
///
/// # Examples
///
/// ```
/// use safeflow_syntax::source::SourceMap;
///
/// let mut sm = SourceMap::new();
/// let id = sm.add_file("demo.c", "int x;\nint y;\n");
/// let file = sm.file(id);
/// assert_eq!(file.line_col(7), (2, 1));
/// assert_eq!(file.line_text(1), "int x;");
/// ```
#[derive(Debug, Default)]
pub struct SourceMap {
    files: Vec<SourceFile>,
}

impl SourceMap {
    /// Creates an empty source map.
    pub fn new() -> Self {
        SourceMap::default()
    }

    /// Registers a file and returns its id.
    pub fn add_file(&mut self, name: impl Into<String>, text: impl Into<String>) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(SourceFile::new(name.into(), text.into()));
        id
    }

    /// The file registered under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this map.
    pub fn file(&self, id: FileId) -> &SourceFile {
        &self.files[id.0 as usize]
    }

    /// Looks up a file by display name.
    pub fn file_by_name(&self, name: &str) -> Option<(FileId, &SourceFile)> {
        self.files
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FileId(i as u32), f))
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether no file has been registered.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Renders `span` as `name:line:col`.
    pub fn describe(&self, span: Span) -> String {
        if span.is_dummy() {
            return "<unknown>".to_string();
        }
        let f = self.file(span.file);
        let (line, col) = f.line_col(span.lo);
        format!("{}:{}:{}", f.name, line, col)
    }

    /// The source text covered by `span` (empty for dummy spans).
    pub fn snippet(&self, span: Span) -> &str {
        if span.is_dummy() {
            return "";
        }
        let f = self.file(span.file);
        &f.text[span.lo as usize..span.hi as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_lookup() {
        let f = SourceFile::new("t".into(), "ab\ncd\nef".into());
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(1), (1, 2));
        assert_eq!(f.line_col(3), (2, 1));
        assert_eq!(f.line_col(6), (3, 1));
        assert_eq!(f.line_count(), 3);
        assert_eq!(f.line_text(2), "cd");
    }

    #[test]
    fn line_lookup_at_newline() {
        let f = SourceFile::new("t".into(), "ab\ncd\n".into());
        // Offset 2 is the '\n' itself: still line 1.
        assert_eq!(f.line_col(2), (1, 3));
    }

    #[test]
    fn line_col_counts_chars_not_bytes() {
        // `µ` is 2 bytes in UTF-8: byte offset 6 (the `s`) is the 6th
        // character on the line, not the 7th.
        let f = SourceFile::new("t".into(), "int µs; /* °C */\nint y;\n".into());
        assert_eq!(f.line_col(6), (1, 6));
        // Second line is unaffected by multi-byte text on the first.
        let second = f.text.find("int y").unwrap() as u32;
        assert_eq!(f.line_col(second), (2, 1));
    }

    #[test]
    fn describe_column_is_character_based() {
        let mut sm = SourceMap::new();
        // "µ° " is 5 bytes but 3 characters; `x` starts at byte 5, char 4.
        let id = sm.add_file("u.c", "µ° x = 1;\n");
        let span = Span::new(id, 5, 6);
        assert_eq!(sm.describe(span), "u.c:1:4");
        assert_eq!(sm.snippet(span), "x");
    }

    #[test]
    fn describe_and_snippet() {
        let mut sm = SourceMap::new();
        let id = sm.add_file("x.c", "int main() {}\n");
        let span = Span::new(id, 4, 8);
        assert_eq!(sm.describe(span), "x.c:1:5");
        assert_eq!(sm.snippet(span), "main");
    }

    #[test]
    fn file_by_name_finds_file() {
        let mut sm = SourceMap::new();
        sm.add_file("a.c", "");
        let id = sm.add_file("b.c", "x");
        let (found, f) = sm.file_by_name("b.c").unwrap();
        assert_eq!(found, id);
        assert_eq!(f.text, "x");
        assert!(sm.file_by_name("c.c").is_none());
    }

    #[test]
    fn crlf_lines_trimmed() {
        let f = SourceFile::new("t".into(), "ab\r\ncd\r\n".into());
        assert_eq!(f.line_text(1), "ab");
        assert_eq!(f.line_text(2), "cd");
    }
}
