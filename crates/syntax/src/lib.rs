//! # safeflow-syntax
//!
//! Frontend for the restricted C subset analyzed by SafeFlow (Kowshik, Roşu,
//! Sha — *Static Analysis to Enforce Safe Value Flow in Embedded Control
//! Systems*, DSN 2006).
//!
//! The pipeline is: [`pp::preprocess`] (includes, object macros,
//! conditionals) → [`lexer::lex`] (tokens, SafeFlow annotation comments) →
//! [`parser::parse`] (AST with attached [`annot::Annotation`]s).
//!
//! # Examples
//!
//! ```
//! use safeflow_syntax::{parse_source, ParseResult};
//!
//! let src = r#"
//!     typedef struct { float control; int status; } SHMData;
//!     SHMData *noncoreCtrl;
//!
//!     float decision(float safeControl)
//!     /** SafeFlow Annotation assume(core(noncoreCtrl, 0, sizeof(SHMData))) */
//!     {
//!         return safeControl;
//!     }
//! "#;
//! let ParseResult { unit, diags, .. } = parse_source("demo.c", src);
//! assert!(!diags.has_errors());
//! let f = unit.function("decision").unwrap();
//! assert_eq!(f.annotations.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod annot;
pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pp;
pub mod printer;
pub mod source;
pub mod span;
pub mod token;

pub use annot::{AnnExpr, Annotation};
pub use ast::TranslationUnit;
pub use diag::{Diagnostic, Diagnostics, Severity};
pub use pp::VirtualFs;
pub use source::SourceMap;
pub use span::{FileId, Span};

/// Everything produced by parsing one program.
#[derive(Debug)]
pub struct ParseResult {
    /// The parsed translation unit (best-effort if there were errors).
    pub unit: TranslationUnit,
    /// All source files touched (main file, includes, annotation bodies).
    pub sources: SourceMap,
    /// Diagnostics produced by the preprocessor, lexer, and parser.
    pub diags: Diagnostics,
}

impl ParseResult {
    /// Whether the parse produced a usable AST (no errors).
    pub fn is_ok(&self) -> bool {
        !self.diags.has_errors()
    }
}

/// Parses a single self-contained source string (no `#include`s outside
/// `src` itself).
///
/// This is the convenience entry point used throughout the tests and
/// examples; multi-file programs should use [`parse_program`].
pub fn parse_source(name: &str, src: &str) -> ParseResult {
    let mut fs = VirtualFs::new();
    fs.add(name, src);
    parse_program(name, &fs)
}

/// Parses `main_name` from `fs`, resolving `#include`s against `fs`.
///
/// # Examples
///
/// ```
/// use safeflow_syntax::{parse_program, VirtualFs};
///
/// let mut fs = VirtualFs::new();
/// fs.add("shm.h", "typedef struct { float v; } Data;");
/// fs.add("main.c", "#include \"shm.h\"\nData *p;");
/// let result = parse_program("main.c", &fs);
/// assert!(result.is_ok());
/// ```
pub fn parse_program(main_name: &str, fs: &VirtualFs) -> ParseResult {
    let mut sources = SourceMap::new();
    let mut diags = Diagnostics::new();
    let tokens = pp::preprocess(main_name, fs, &mut sources, &mut diags);
    let unit = parser::parse(tokens, &mut sources, &mut diags);
    ParseResult { unit, sources, diags }
}
