//! # safeflow-syntax
//!
//! Frontend for the restricted C subset analyzed by SafeFlow (Kowshik, Roşu,
//! Sha — *Static Analysis to Enforce Safe Value Flow in Embedded Control
//! Systems*, DSN 2006).
//!
//! The pipeline is: [`pp::preprocess`] (includes, object macros,
//! conditionals) → [`lexer::lex`] (tokens, SafeFlow annotation comments) →
//! [`parser::parse`] (AST with attached [`annot::Annotation`]s).
//!
//! # Examples
//!
//! ```
//! use safeflow_syntax::{parse_source, ParseResult};
//!
//! let src = r#"
//!     typedef struct { float control; int status; } SHMData;
//!     SHMData *noncoreCtrl;
//!
//!     float decision(float safeControl)
//!     /** SafeFlow Annotation assume(core(noncoreCtrl, 0, sizeof(SHMData))) */
//!     {
//!         return safeControl;
//!     }
//! "#;
//! let ParseResult { unit, diags, .. } = parse_source("demo.c", src);
//! assert!(!diags.has_errors());
//! let f = unit.function("decision").unwrap();
//! assert_eq!(f.annotations.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod annot;
pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pp;
pub mod printer;
pub mod source;
pub mod span;
pub mod token;

pub use annot::{AnnExpr, Annotation};
pub use ast::TranslationUnit;
pub use diag::{Diagnostic, Diagnostics, Severity};
pub use pp::VirtualFs;
pub use source::SourceMap;
pub use span::{FileId, Span};

/// Everything produced by parsing one program.
#[derive(Debug)]
pub struct ParseResult {
    /// The parsed translation unit (best-effort if there were errors).
    pub unit: TranslationUnit,
    /// All source files touched (main file, includes, annotation bodies).
    pub sources: SourceMap,
    /// Diagnostics produced by the preprocessor, lexer, and parser.
    pub diags: Diagnostics,
}

impl ParseResult {
    /// Whether the parse produced a usable AST (no errors).
    pub fn is_ok(&self) -> bool {
        !self.diags.has_errors()
    }
}

/// Parses a single self-contained source string (no `#include`s outside
/// `src` itself).
///
/// This is the convenience entry point used throughout the tests and
/// examples; multi-file programs should use [`parse_program`].
pub fn parse_source(name: &str, src: &str) -> ParseResult {
    let mut fs = VirtualFs::new();
    fs.add(name, src);
    parse_program(name, &fs)
}

/// Parses `main_name` from `fs`, resolving `#include`s against `fs`.
///
/// # Examples
///
/// ```
/// use safeflow_syntax::{parse_program, VirtualFs};
///
/// let mut fs = VirtualFs::new();
/// fs.add("shm.h", "typedef struct { float v; } Data;");
/// fs.add("main.c", "#include \"shm.h\"\nData *p;");
/// let result = parse_program("main.c", &fs);
/// assert!(result.is_ok());
/// ```
pub fn parse_program(main_name: &str, fs: &VirtualFs) -> ParseResult {
    parse_program_jobs(main_name, fs, 1)
}

/// [`parse_program`] with `jobs` worker threads lexing the files of `fs`
/// in parallel.
///
/// The result is byte-identical for every `jobs` value: `FileId`s are
/// assigned by registering all files of `fs` in sorted-name order before
/// any lexing happens (a pure function of the file set), and preprocessing
/// — inclusion, conditional, and macro-expansion order, and therefore
/// diagnostic order — replays sequentially over the pre-lexed token
/// streams.
pub fn parse_program_jobs(main_name: &str, fs: &VirtualFs, jobs: usize) -> ParseResult {
    let mut sources = SourceMap::new();
    let mut diags = Diagnostics::new();

    // Register every file up front, sorted by name, so FileIds do not
    // depend on inclusion order or worker scheduling.
    let names = fs.names();
    let ids: Vec<FileId> = names
        .iter()
        .map(|n| sources.add_file(n.to_string(), fs.get(n).unwrap_or_default().to_string()))
        .collect();

    // Lex each file on the pool. Per-file diagnostics are collected
    // separately and spliced in at the file's first inclusion, matching
    // the sequential preprocessor's emission order.
    let lexed = safeflow_util::pool::run_map(jobs.max(1), names.len(), |i| {
        let mut file_diags = Diagnostics::new();
        let tokens = lexer::lex(ids[i], fs.get(names[i]).unwrap_or_default(), &mut file_diags);
        let diags = if file_diags.is_empty() { None } else { Some(file_diags) };
        pp::LexedFile { tokens, diags }
    });
    let mut cache: std::collections::HashMap<String, pp::LexedFile> =
        names.iter().map(|n| n.to_string()).zip(lexed).collect();

    let tokens = pp::preprocess_with_cache(main_name, fs, &mut sources, &mut diags, &mut cache);
    let unit = parser::parse(tokens, &mut sources, &mut diags);
    ParseResult { unit, sources, diags }
}
