//! Lexer for the C subset.
//!
//! Produces a flat token stream. Two non-standard productions:
//!
//! * block comments whose body starts with `SafeFlow Annotation` (after any
//!   number of `*`s) become [`TokenKind::Annotation`] tokens carrying the
//!   annotation body — this is how the paper embeds its annotation language
//!   in C comments (paper §3.1);
//! * lines starting with `#` become [`TokenKind::Directive`] tokens holding
//!   the directive text (with backslash-continuations folded), which the
//!   preprocessor consumes.
//!
//! The lexer is **zero-copy**: identifiers, annotation bodies, plain
//! string literals and plain directives are borrowed as `&str` slices of
//! the source buffer and interned to [`safeflow_util::Symbol`]s — the only
//! per-token copy is the one-time arena copy the first time a distinct
//! string is seen. A transient `String` is built only when the token text
//! cannot be a verbatim slice (escape sequences, folded continuations,
//! comments inside directives). Every slice boundary sits on an ASCII
//! delimiter the scanner just matched, so slicing can never split a
//! multi-byte UTF-8 codepoint.

use crate::diag::Diagnostics;
use crate::span::{FileId, Span};
use crate::token::{Keyword, Punct, Token, TokenKind};
use safeflow_util::Symbol;

/// Marker string that distinguishes SafeFlow annotations from ordinary
/// comments (paper §3.1: "annotations are enclosed within C comments which
/// begin with the special string, SafeFlow Annotation").
pub const ANNOTATION_MARKER: &str = "SafeFlow Annotation";

/// Lexes `text` (registered as `file`) into a token vector ending in `Eof`.
///
/// Lexical errors are reported to `diags`; the offending bytes are skipped so
/// lexing always terminates with a complete token stream.
pub fn lex(file: FileId, text: &str, diags: &mut Diagnostics) -> Vec<Token> {
    Lexer { file, text, bytes: text.as_bytes(), pos: 0, at_line_start: true, diags }.run()
}

struct Lexer<'a, 'd> {
    file: FileId,
    /// The source text; token payloads are sliced from here.
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    at_line_start: bool,
    diags: &'d mut Diagnostics,
}

impl<'a, 'd> Lexer<'a, 'd> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token();
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                break;
            }
        }
        out
    }

    fn peek(&self) -> u8 {
        *self.bytes.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.bytes.get(self.pos + 1).unwrap_or(&0)
    }

    fn peek3(&self) -> u8 {
        *self.bytes.get(self.pos + 2).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        if b == b'\n' {
            self.at_line_start = true;
        } else if !b.is_ascii_whitespace() {
            self.at_line_start = false;
        }
        b
    }

    fn span_from(&self, lo: usize) -> Span {
        Span::new(self.file, lo as u32, self.pos as u32)
    }

    fn next_token(&mut self) -> Token {
        loop {
            // Skip whitespace.
            while self.peek().is_ascii_whitespace() {
                self.bump();
            }
            let lo = self.pos;
            let b = self.peek();
            if b == 0 && self.pos >= self.bytes.len() {
                return Token::new(TokenKind::Eof, self.span_from(lo));
            }
            // Preprocessor directive: '#' at logical line start.
            if b == b'#' && self.at_line_start {
                return self.lex_directive();
            }
            // Comments.
            if b == b'/' && self.peek2() == b'/' {
                while self.peek() != b'\n' && self.pos < self.bytes.len() {
                    self.bump();
                }
                continue;
            }
            if b == b'/' && self.peek2() == b'*' {
                if let Some(tok) = self.lex_block_comment() {
                    return tok;
                }
                continue;
            }
            if b.is_ascii_alphabetic() || b == b'_' {
                return self.lex_ident();
            }
            if b.is_ascii_digit() || (b == b'.' && self.peek2().is_ascii_digit()) {
                return self.lex_number();
            }
            if b == b'\'' {
                return self.lex_char();
            }
            if b == b'"' {
                return self.lex_string();
            }
            return self.lex_punct();
        }
    }

    /// Consumes a `#...` line (with `\` continuations) into a Directive token.
    ///
    /// The common case (no continuation, no embedded comment) is a verbatim
    /// slice of the line; a transient buffer is built only when folding is
    /// actually needed.
    fn lex_directive(&mut self) -> Token {
        let lo = self.pos;
        self.bump(); // '#'
        let body_lo = self.pos;
        // `folded` is Some as soon as the payload diverges from the raw
        // slice; until then the slice `body_lo..body_end` is authoritative.
        let mut folded: Option<String> = None;
        // Comment stripping must not fire inside string/char literals, or
        // `#define PATH "http://x"` truncates at the `//`.
        let mut quote: Option<u8> = None;
        let body_end;
        loop {
            let b = self.peek();
            if (b == 0 && self.pos >= self.bytes.len()) || b == b'\n' {
                body_end = self.pos;
                break;
            }
            if b == b'\\' && self.peek2() == b'\n' {
                let buf = folded.get_or_insert_with(|| self.text[body_lo..self.pos].to_string());
                self.bump();
                self.bump();
                buf.push(' ');
                continue;
            }
            if let Some(q) = quote {
                // Inside a literal: honor escapes, watch for the close quote.
                if b == b'\\' && self.pos + 1 < self.bytes.len() && self.peek2() != b'\n' {
                    let c = self.bump();
                    if let Some(buf) = folded.as_mut() {
                        buf.push(c as char);
                    }
                } else if b == q {
                    quote = None;
                }
                let c = self.bump();
                if let Some(buf) = folded.as_mut() {
                    buf.push(c as char);
                }
                continue;
            }
            if b == b'"' || b == b'\'' {
                quote = Some(b);
                let c = self.bump();
                if let Some(buf) = folded.as_mut() {
                    buf.push(c as char);
                }
                continue;
            }
            // Strip comments inside directives.
            if b == b'/' && self.peek2() == b'/' {
                body_end = self.pos;
                while self.peek() != b'\n' && self.pos < self.bytes.len() {
                    self.bump();
                }
                break;
            }
            if b == b'/' && self.peek2() == b'*' {
                let buf = folded.get_or_insert_with(|| self.text[body_lo..self.pos].to_string());
                self.bump();
                self.bump();
                while self.pos < self.bytes.len() && !(self.peek() == b'*' && self.peek2() == b'/')
                {
                    self.bump();
                }
                self.bump();
                self.bump();
                buf.push(' ');
                continue;
            }
            let c = self.bump();
            if let Some(buf) = folded.as_mut() {
                buf.push(c as char);
            }
        }
        let payload = match &folded {
            Some(buf) => Symbol::intern(buf.trim()),
            None => Symbol::intern(self.text[body_lo..body_end].trim()),
        };
        Token::new(TokenKind::Directive(payload), self.span_from(lo))
    }

    /// Consumes `/* ... */`. Returns a token iff it is a SafeFlow annotation.
    fn lex_block_comment(&mut self) -> Option<Token> {
        let lo = self.pos;
        self.bump(); // '/'
        self.bump(); // '*'
        let body_start = self.pos;
        let mut closed = false;
        while self.pos < self.bytes.len() {
            if self.peek() == b'*' && self.peek2() == b'/' {
                closed = true;
                break;
            }
            self.bump();
        }
        let body_end = self.pos;
        if closed {
            self.bump();
            self.bump();
        } else {
            self.diags.error(self.span_from(lo), "unterminated block comment");
        }
        let body = &self.text[body_start..body_end.min(self.text.len())];
        // Annotation comments may open with extra '*'s: `/***SafeFlow Annotation`.
        let trimmed = body.trim_start_matches('*').trim_start();
        if let Some(rest) = trimmed.strip_prefix(ANNOTATION_MARKER) {
            // The paper's examples close annotations with `/***/`; when the
            // lexer sees `... /***/` the trailing `/*` of that close belongs
            // to the body. Strip any trailing '/', '*' noise.
            let payload = rest.trim().trim_end_matches(['*', '/']).trim();
            // The token's span covers the payload *text*, not the whole
            // comment, so diagnostics point at the annotation itself. The
            // payload is a verbatim (trim-only) substring of the file, so
            // its byte offsets are recoverable by pointer arithmetic —
            // which also keeps CRLF/tab leading trivia out of the span.
            let span = if payload.is_empty() {
                self.span_from(lo)
            } else {
                let plo = payload.as_ptr() as usize - self.bytes.as_ptr() as usize;
                Span::new(self.file, plo as u32, (plo + payload.len()) as u32)
            };
            return Some(Token::new(TokenKind::Annotation(Symbol::intern(payload)), span));
        }
        None
    }

    fn lex_ident(&mut self) -> Token {
        let lo = self.pos;
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.bump();
        }
        // The scanned bytes are all ASCII alphanumerics/underscores, so the
        // slice boundaries are char boundaries: borrow straight from the
        // source buffer, no allocation.
        let s = &self.text[lo..self.pos];
        let kind = match Keyword::from_str(s) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(Symbol::intern(s)),
        };
        Token::new(kind, self.span_from(lo))
    }

    fn lex_number(&mut self) -> Token {
        let lo = self.pos;
        let mut is_float = false;
        if self.peek() == b'0' && (self.peek2() | 0x20) == b'x' {
            self.bump();
            self.bump();
            let digits_lo = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.bump();
            }
            let digits = &self.text[digits_lo..self.pos];
            let value = i64::from_str_radix(digits, 16).unwrap_or_else(|_| {
                self.diags.error(self.span_from(lo), "invalid hexadecimal constant");
                0
            });
            self.skip_int_suffix();
            return Token::new(TokenKind::IntLit(value), self.span_from(lo));
        }
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.peek() == b'.' && self.peek2() != b'.' {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if (self.peek() | 0x20) == b'e'
            && (self.peek2().is_ascii_digit()
                || ((self.peek2() == b'+' || self.peek2() == b'-')
                    && self.peek3().is_ascii_digit()))
        {
            is_float = true;
            self.bump();
            if self.peek() == b'+' || self.peek() == b'-' {
                self.bump();
            }
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        let text = &self.text[lo..self.pos];
        if is_float || (self.peek() | 0x20) == b'f' && text.contains('.') {
            let value: f64 = text.parse().unwrap_or_else(|_| {
                self.diags.error(self.span_from(lo), "invalid floating-point constant");
                0.0
            });
            if (self.peek() | 0x20) == b'f' || (self.peek() | 0x20) == b'l' {
                self.bump();
            }
            return Token::new(TokenKind::FloatLit(value), self.span_from(lo));
        }
        // Octal constants (leading 0) are parsed as octal per C.
        let value = if text.len() > 1 && text.starts_with('0') {
            i64::from_str_radix(&text[1..], 8).unwrap_or_else(|_| {
                self.diags.error(self.span_from(lo), "invalid octal constant");
                0
            })
        } else {
            text.parse().unwrap_or_else(|_| {
                self.diags.error(self.span_from(lo), "integer constant out of range");
                0
            })
        };
        self.skip_int_suffix();
        Token::new(TokenKind::IntLit(value), self.span_from(lo))
    }

    fn skip_int_suffix(&mut self) {
        while matches!(self.peek() | 0x20, b'u' | b'l') {
            self.bump();
        }
    }

    fn lex_escape(&mut self) -> i64 {
        // Called after consuming the backslash.
        let b = self.bump();
        match b {
            b'n' => b'\n' as i64,
            b't' => b'\t' as i64,
            b'r' => b'\r' as i64,
            b'0' => 0,
            b'\\' => b'\\' as i64,
            b'\'' => b'\'' as i64,
            b'"' => b'"' as i64,
            b'a' => 7,
            b'b' => 8,
            b'f' => 12,
            b'v' => 11,
            b'x' => {
                // Wrapping: `"\xfff...f"` with enough digits would overflow
                // an i64 — escapes truncate like C chars do, they don't
                // abort the lexer.
                let mut v: i64 = 0;
                while self.peek().is_ascii_hexdigit() {
                    let d = (self.bump() as char).to_digit(16).unwrap_or(0) as i64;
                    v = v.wrapping_mul(16).wrapping_add(d);
                }
                v
            }
            other => other as i64,
        }
    }

    fn lex_char(&mut self) -> Token {
        let lo = self.pos;
        self.bump(); // '\''
        let value = if self.peek() == b'\\' {
            self.bump();
            self.lex_escape()
        } else {
            self.bump() as i64
        };
        if self.peek() == b'\'' {
            self.bump();
        } else {
            self.diags.error(self.span_from(lo), "unterminated character constant");
        }
        Token::new(TokenKind::CharLit(value), self.span_from(lo))
    }

    fn lex_string(&mut self) -> Token {
        let lo = self.pos;
        self.bump(); // '"'
        let content_lo = self.pos;
        // Fast path: an all-ASCII literal with no escapes is a verbatim
        // slice of the source. Escapes need decoding, and non-ASCII bytes
        // keep the historical byte-as-char decoding, so either drops to the
        // buffered slow path below.
        loop {
            let b = self.peek();
            if b == 0 && self.pos >= self.bytes.len() {
                self.diags.error(self.span_from(lo), "unterminated string literal");
                let s = &self.text[content_lo..self.pos];
                return Token::new(TokenKind::StrLit(Symbol::intern(s)), self.span_from(lo));
            }
            if b == b'"' {
                let s = &self.text[content_lo..self.pos];
                self.bump();
                return Token::new(TokenKind::StrLit(Symbol::intern(s)), self.span_from(lo));
            }
            if b == b'\\' || !b.is_ascii() {
                break;
            }
            self.bump();
        }
        // Slow path: everything scanned so far was clean ASCII; copy it and
        // continue decoding byte by byte.
        let mut s = self.text[content_lo..self.pos].to_string();
        loop {
            let b = self.peek();
            if b == 0 && self.pos >= self.bytes.len() {
                self.diags.error(self.span_from(lo), "unterminated string literal");
                break;
            }
            if b == b'"' {
                self.bump();
                break;
            }
            if b == b'\\' {
                self.bump();
                let v = self.lex_escape();
                s.push(char::from_u32(v as u32).unwrap_or('\u{FFFD}'));
            } else {
                s.push(self.bump() as char);
            }
        }
        Token::new(TokenKind::StrLit(Symbol::intern(&s)), self.span_from(lo))
    }

    fn lex_punct(&mut self) -> Token {
        use Punct::*;
        let lo = self.pos;
        let a = self.bump();
        let b = self.peek();
        let c = self.peek2();
        let take2 = |p: Punct, this: &mut Self| {
            this.bump();
            Some(p)
        };
        let p: Option<Punct> = match (a, b, c) {
            (b'.', b'.', b'.') => {
                self.bump();
                self.bump();
                Some(Ellipsis)
            }
            (b'<', b'<', b'=') => {
                self.bump();
                self.bump();
                Some(ShlAssign)
            }
            (b'>', b'>', b'=') => {
                self.bump();
                self.bump();
                Some(ShrAssign)
            }
            (b'-', b'>', _) => take2(Arrow, self),
            (b'+', b'+', _) => take2(PlusPlus, self),
            (b'-', b'-', _) => take2(MinusMinus, self),
            (b'<', b'<', _) => take2(Shl, self),
            (b'>', b'>', _) => take2(Shr, self),
            (b'<', b'=', _) => take2(Le, self),
            (b'>', b'=', _) => take2(Ge, self),
            (b'=', b'=', _) => take2(EqEq, self),
            (b'!', b'=', _) => take2(Ne, self),
            (b'&', b'&', _) => take2(AmpAmp, self),
            (b'|', b'|', _) => take2(PipePipe, self),
            (b'+', b'=', _) => take2(PlusAssign, self),
            (b'-', b'=', _) => take2(MinusAssign, self),
            (b'*', b'=', _) => take2(StarAssign, self),
            (b'/', b'=', _) => take2(SlashAssign, self),
            (b'%', b'=', _) => take2(PercentAssign, self),
            (b'&', b'=', _) => take2(AmpAssign, self),
            (b'^', b'=', _) => take2(CaretAssign, self),
            (b'|', b'=', _) => take2(PipeAssign, self),
            (b'(', ..) => Some(LParen),
            (b')', ..) => Some(RParen),
            (b'{', ..) => Some(LBrace),
            (b'}', ..) => Some(RBrace),
            (b'[', ..) => Some(LBracket),
            (b']', ..) => Some(RBracket),
            (b';', ..) => Some(Semi),
            (b',', ..) => Some(Comma),
            (b'.', ..) => Some(Dot),
            (b'&', ..) => Some(Amp),
            (b'*', ..) => Some(Star),
            (b'+', ..) => Some(Plus),
            (b'-', ..) => Some(Minus),
            (b'~', ..) => Some(Tilde),
            (b'!', ..) => Some(Bang),
            (b'/', ..) => Some(Slash),
            (b'%', ..) => Some(Percent),
            (b'<', ..) => Some(Lt),
            (b'>', ..) => Some(Gt),
            (b'^', ..) => Some(Caret),
            (b'|', ..) => Some(Pipe),
            (b'?', ..) => Some(Question),
            (b':', ..) => Some(Colon),
            (b'=', ..) => Some(Assign),
            _ => None,
        };
        match p {
            Some(p) => Token::new(TokenKind::Punct(p), self.span_from(lo)),
            None => {
                self.diags
                    .error(self.span_from(lo), format!("unexpected character `{}`", a as char));
                // Recover by producing a semicolon-ish token? No: just retry.
                self.next_token()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::FileId;

    fn lex_ok(src: &str) -> Vec<TokenKind> {
        let mut diags = Diagnostics::new();
        let toks = lex(FileId(0), src, &mut diags);
        assert!(!diags.has_errors(), "unexpected lex errors: {diags:?}");
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_simple_declaration() {
        let toks = lex_ok("int x = 42;");
        assert_eq!(
            toks,
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(Punct::Assign),
                TokenKind::IntLit(42),
                TokenKind::Punct(Punct::Semi),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_operators() {
        let toks = lex_ok("a->b ++ -- <<= >>= ... && ||");
        let puncts: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                TokenKind::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(
            puncts,
            vec![
                Punct::Arrow,
                Punct::PlusPlus,
                Punct::MinusMinus,
                Punct::ShlAssign,
                Punct::ShrAssign,
                Punct::Ellipsis,
                Punct::AmpAmp,
                Punct::PipePipe
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        let toks = lex_ok("0 10 0x1F 017 3.5 1e3 2.5e-2 10u 5L 1.0f");
        let mut ints = Vec::new();
        let mut floats = Vec::new();
        for t in toks {
            match t {
                TokenKind::IntLit(v) => ints.push(v),
                TokenKind::FloatLit(v) => floats.push(v),
                _ => {}
            }
        }
        assert_eq!(ints, vec![0, 10, 31, 15, 10, 5]);
        assert_eq!(floats, vec![3.5, 1000.0, 0.025, 1.0]);
    }

    #[test]
    fn lex_char_and_string() {
        let toks = lex_ok(r#"'a' '\n' '\x41' "hi\n" "" "#);
        assert_eq!(toks[0], TokenKind::CharLit('a' as i64));
        assert_eq!(toks[1], TokenKind::CharLit('\n' as i64));
        assert_eq!(toks[2], TokenKind::CharLit(0x41));
        assert_eq!(toks[3], TokenKind::StrLit("hi\n".into()));
        assert_eq!(toks[4], TokenKind::StrLit("".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex_ok("int /* ordinary comment */ x; // line\nint y;");
        let idents: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                TokenKind::Ident(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["x", "y"]);
    }

    #[test]
    fn annotation_comment_paper_syntax() {
        // Exactly the style of Figure 2 in the paper.
        let src =
            "/***SafeFlow Annotation\n    assume(core(noncoreCtrl, 0, sizeof(SHMData))) /***/";
        let toks = lex_ok(src);
        match &toks[0] {
            TokenKind::Annotation(body) => {
                assert_eq!(body, "assume(core(noncoreCtrl, 0, sizeof(SHMData)))");
            }
            other => panic!("expected annotation, got {other:?}"),
        }
    }

    #[test]
    fn annotation_comment_plain_close() {
        let src = "/** SafeFlow Annotation assert(safe(output)) */ int x;";
        let toks = lex_ok(src);
        assert_eq!(toks[0], TokenKind::Annotation("assert(safe(output))".into()));
    }

    #[test]
    fn annotation_span_covers_payload_not_comment() {
        let src = "int x; /** SafeFlow Annotation assert(safe(x)) */";
        let mut diags = Diagnostics::new();
        let toks = lex(FileId(0), src, &mut diags);
        let tok = toks.iter().find(|t| matches!(t.kind, TokenKind::Annotation(_))).unwrap();
        assert_eq!(&src[tok.span.lo as usize..tok.span.hi as usize], "assert(safe(x))");
    }

    #[test]
    fn annotation_span_is_exact_on_crlf_and_tab_sources() {
        // CRLF line endings and tab indentation inside the comment: the
        // token span must still cover exactly the payload text, so
        // downstream `line_col` (character columns) points at the
        // annotation, not at comment trivia.
        let src = "\tint x;\r\n\t/** SafeFlow Annotation\r\n\t\tassert(safe(x))\r\n\t*/\r\n";
        let mut diags = Diagnostics::new();
        let toks = lex(FileId(0), src, &mut diags);
        assert!(!diags.has_errors(), "{diags:?}");
        let tok = toks.iter().find(|t| matches!(t.kind, TokenKind::Annotation(_))).unwrap();
        assert_eq!(&src[tok.span.lo as usize..tok.span.hi as usize], "assert(safe(x))");
    }

    #[test]
    fn empty_annotation_keeps_comment_span() {
        let src = "/** SafeFlow Annotation */ int x;";
        let mut diags = Diagnostics::new();
        let toks = lex(FileId(0), src, &mut diags);
        let tok = &toks[0];
        assert_eq!(tok.kind, TokenKind::Annotation("".into()));
        assert_eq!((tok.span.lo, tok.span.hi), (0, 26));
    }

    #[test]
    fn directives_lexed_as_lines() {
        let toks = lex_ok("#include \"shm.h\"\n#define N 10\nint x;");
        assert_eq!(toks[0], TokenKind::Directive("include \"shm.h\"".into()));
        assert_eq!(toks[1], TokenKind::Directive("define N 10".into()));
    }

    #[test]
    fn directive_continuation_folded() {
        let toks = lex_ok("#define BIG \\\n 42\nint x;");
        assert_eq!(toks[0], TokenKind::Directive("define BIG   42".into()));
    }

    #[test]
    fn directive_trailing_comments_stripped() {
        let toks = lex_ok("#undef FOO /* why */\n#ifdef FOO // note\n#endif\nint x;");
        assert_eq!(toks[0], TokenKind::Directive("undef FOO".into()));
        assert_eq!(toks[1], TokenKind::Directive("ifdef FOO".into()));
        assert_eq!(toks[2], TokenKind::Directive("endif".into()));
    }

    #[test]
    fn directive_comment_stripping_is_quote_aware() {
        // `//` inside a string literal is not a comment...
        let toks = lex_ok("#define PATH \"http://x\"\nint x;");
        assert_eq!(toks[0], TokenKind::Directive("define PATH \"http://x\"".into()));
        // ...nor is `/*` inside a char constant; a real trailing comment
        // after the literal still strips, and escaped quotes don't close
        // the literal early.
        let toks = lex_ok("#define S \"a /* b\" // c\n#define Q \"x\\\"y//z\"\nint x;");
        assert_eq!(toks[0], TokenKind::Directive("define S \"a /* b\"".into()));
        assert_eq!(toks[1], TokenKind::Directive("define Q \"x\\\"y//z\"".into()));
    }

    #[test]
    fn hash_mid_line_is_error_not_directive() {
        let mut diags = Diagnostics::new();
        let toks = lex(FileId(0), "int x # y;", &mut diags);
        assert!(diags.has_errors());
        // Lexer recovers and still reaches EOF.
        assert_eq!(toks.last().unwrap().kind, TokenKind::Eof);
    }

    #[test]
    fn unterminated_comment_reported() {
        let mut diags = Diagnostics::new();
        let _ = lex(FileId(0), "/* never closed", &mut diags);
        assert!(diags.has_errors());
    }

    #[test]
    fn spans_are_accurate() {
        let mut diags = Diagnostics::new();
        let toks = lex(FileId(0), "int foo;", &mut diags);
        assert_eq!(toks[1].span.lo, 4);
        assert_eq!(toks[1].span.hi, 7);
    }
}
