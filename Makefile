# Convenience targets for the SafeFlow workspace.
#
# `make smoke` is the pre-merge gate for the parallel engine: a release
# build, the full test suite, and a determinism spot-check that compares
# CLI reports at two thread counts byte-for-byte on the whole corpus.

CARGO ?= cargo
SAFEFLOW = target/release/safeflow

.PHONY: all help build test lint bench bench-frontend bench-serve bench-shard smoke serve-smoke policy-smoke shard-smoke require-release oracle-smoke oracle-deep metrics-demo incremental-demo fuzz-smoke golden clean

# One line per target; kept in sync by hand when targets change.
help:
	@echo "SafeFlow make targets:"
	@echo "  build            release build of the whole workspace"
	@echo "  test             cargo test -q (full suite)"
	@echo "  lint             rustfmt --check + clippy -D warnings"
	@echo "  bench            paper-evaluation benches (cargo bench)"
	@echo "  bench-frontend   frontend LOC/sec trajectory -> BENCH_pr9.json"
	@echo "                   (incl. monorepo corpus column; BENCH_ARGS overrides)"
	@echo "  bench-serve      daemon latency + overload drill -> BENCH_serve.json"
	@echo "  bench-shard      sharded-analysis 1/2/4-worker scaling -> BENCH_pr10.json"
	@echo "  fuzz-smoke       long parser/lexer robustness fuzz run"
	@echo "  oracle-smoke     64-seed differential oracle (CI gate)"
	@echo "  oracle-deep      512-seed oracle sweep with minimization"
	@echo "  serve-smoke      daemon drill: 32 concurrent clients, injected"
	@echo "                   fault, byte-identity vs one-shot CLI, SIGKILL"
	@echo "  policy-smoke     3-label mixed-criticality example through all"
	@echo "                   implicit-flow modes, diffed against goldens"
	@echo "  shard-smoke      cross-process drill: check --shards 4 vs --shards 1"
	@echo "                   byte-identity cold+warm, SIGKILL-one-worker recovery"
	@echo "  smoke            pre-merge gate: lint+build+test+determinism"
	@echo "  metrics-demo     Table 1 with the observability layer on"
	@echo "  incremental-demo incremental-session store lifecycle walk"
	@echo "  golden           regenerate golden report snapshots"
	@echo "  clean            cargo clean"

all: build

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

lint:
	$(CARGO) fmt --all --check
	$(CARGO) clippy --workspace --all-targets -- -D warnings

bench:
	$(CARGO) bench -q -p safeflow-bench

# Frontend throughput trajectory: measures parse / parse+lower+SSA /
# end-to-end LOC/sec over the classic corpus plus the monorepo corpus
# (146 TUs / 180k+ LOC through the conforming preprocessor) and rewrites
# the checked-in BENCH_pr9.json artifact (schema locked by crates/bench/
# tests/bench_schema.rs). Later flags win, so BENCH_ARGS can override the
# output path, label, pr number, or sample count.
bench-frontend:
	$(CARGO) run --release -q -p safeflow-bench --bin bench-frontend -- \
	  --out BENCH_pr9.json --pr 9 --monorepo \
	  --label "conforming preprocessor + monorepo corpus" $(BENCH_ARGS)

# Daemon latency trajectory: warm-path (store replay) vs cold-path p50/p99
# over loopback, plus a 4x-overload shedding drill against a bounded
# queue. Rewrites the checked-in BENCH_serve.json artifact (schema locked
# by crates/bench/tests/bench_schema.rs).
bench-serve:
	$(CARGO) run --release -q -p safeflow-bench --bin bench-serve -- $(BENCH_ARGS)

# Sharded-analysis scaling: cold fan-out + merge wall-clock for the
# monorepo corpus at 1, 2, and 4 workers, next to the unsharded baseline.
# Every sharded sample is asserted byte-identical to the unsharded
# reference before its timing counts. Rewrites the checked-in
# BENCH_pr10.json artifact (schema locked by crates/bench/tests/
# bench_schema.rs).
bench-shard:
	$(CARGO) run --release -q -p safeflow-bench --bin bench-shard -- $(BENCH_ARGS)

# Run-only targets must never fall back to a silent debug rebuild: they
# fail fast with instructions when the release binaries are missing.
require-release:
	@test -x $(SAFEFLOW) || { \
	  echo "error: $(SAFEFLOW) is missing or stale — run \`make build\` first"; \
	  echo "       (smoke's determinism and warm-replay checks must run the"; \
	  echo "        release build, never an implicit debug rebuild)"; \
	  exit 1; }

# Process-level daemon drill: start a release daemon with one injected
# protocol fault, drive 32 concurrent clients, assert every report is
# byte-identical to the one-shot CLI, SIGKILL it, restart warm from the
# store, and drain cleanly. The harness is crates/serve/src/bin/serve-smoke.rs.
serve-smoke: require-release
	@test -x target/release/serve-smoke || { \
	  echo "error: target/release/serve-smoke is missing — run \`make build\` first"; \
	  exit 1; }
	target/release/serve-smoke $(SAFEFLOW)

# Regenerate the golden report snapshots (clean + degraded) after an
# intentional change.
golden:
	UPDATE_GOLDEN=1 $(CARGO) test -q -p safeflow --test golden
	UPDATE_GOLDEN=1 $(CARGO) test -q -p safeflow --test faults

# Longer run of the parser-robustness fuzz smoke test (the same cases run
# at a small count on every `cargo test`).
fuzz-smoke:
	FUZZ_CASES=2000 $(CARGO) test -q -p safeflow-syntax --test fuzz_smoke

# Differential oracle, CI window: a fixed 64-seed sweep cross-checking
# the parallel, warm-cache, store-replay, and incremental configurations
# against the naive reference analyzer. Seeds draw macro-enabled shapes
# (function-like macros, config conditionals) since ISSUE 8. Exit 0 =
# zero divergences; the oracle's own output is byte-identical across runs
# and --jobs (locked by crates/cli/tests/cli.rs).
oracle-smoke: require-release
	$(SAFEFLOW) oracle --seeds 0..64
	@echo "oracle-smoke OK: 64 seeds (incl. macro-enabled shapes), zero divergences"

# Wider overnight sweep with minimization: any divergence is shrunk and
# written under /tmp/safeflow-oracle-repros for triage (promote keepers
# into tests/oracle-repros/).
oracle-deep: require-release
	$(SAFEFLOW) oracle --seeds 0..512 --minimize --repro-dir /tmp/safeflow-oracle-repros
	@echo "oracle-deep OK: 512 seeds, zero divergences"

# Label-lattice policy gate: the 3-label mixed-criticality example runs
# under every --implicit-flow mode and must match its checked-in golden
# byte-for-byte (strict promotes the control-only finding, taint-only
# drops it, report-separately keeps it distinct). The JSON run pins the
# safeflow-report-v2 schema with per-finding label/flow_kind fields; its
# trailing metrics block is volatile (timings, pool scheduling) and is
# stripped before the diff, per the observability contract.
# Goldens live in tests/policy-goldens/; regenerate by re-running the
# same commands by hand after an intentional report change.
policy-smoke: require-release
	$(SAFEFLOW) --implicit-flow strict examples/policy/mixed_criticality.c \
	  > /tmp/safeflow-policy-strict.txt; test $$? -eq 2
	cmp /tmp/safeflow-policy-strict.txt tests/policy-goldens/strict.txt
	$(SAFEFLOW) --implicit-flow taint-only examples/policy/mixed_criticality.c \
	  > /tmp/safeflow-policy-taint-only.txt; test $$? -eq 2
	cmp /tmp/safeflow-policy-taint-only.txt tests/policy-goldens/taint-only.txt
	$(SAFEFLOW) --implicit-flow report-separately examples/policy/mixed_criticality.c \
	  > /tmp/safeflow-policy-separate.txt; test $$? -eq 2
	cmp /tmp/safeflow-policy-separate.txt tests/policy-goldens/report-separately.txt
	$(SAFEFLOW) --implicit-flow report-separately --format json \
	  examples/policy/mixed_criticality.c \
	  | sed '/^  "metrics": {$$/,$$d' \
	  > /tmp/safeflow-policy-separate.json
	cmp /tmp/safeflow-policy-separate.json tests/policy-goldens/report-separately.json
	@echo "policy-smoke OK: all three implicit-flow modes match their goldens"

# Cross-process sharding drill: `check --shards 4` (a coordinator plus
# four shard-worker processes over a shared summary store) must render
# byte-identical reports to `--shards 1`, cold and warm, across --jobs;
# then four workers run against a fresh store with one SIGKILLed mid-run
# and the merge check must still match — a killed worker costs
# recomputation, never correctness. The harness is
# crates/cli/src/bin/shard-smoke.rs.
shard-smoke: require-release
	@test -x target/release/shard-smoke || { \
	  echo "error: target/release/shard-smoke is missing — run \`make build\` first"; \
	  exit 1; }
	target/release/shard-smoke $(SAFEFLOW)

# Lint + build + test + determinism at two thread counts: the summary
# engine's corpus reports must be byte-identical at --jobs 1 and --jobs 8.
# (The `--format json` byte-identity contract, with volatile metric
# sections stripped, is covered by crates/core/tests/observability.rs.)
smoke: lint build test oracle-smoke serve-smoke policy-smoke shard-smoke
	@$(MAKE) --no-print-directory require-release
	$(SAFEFLOW) --engine summary --jobs 1 --fig2 > /tmp/safeflow-smoke-j1.txt || true
	$(SAFEFLOW) --engine summary --jobs 8 --fig2 > /tmp/safeflow-smoke-j8.txt || true
	cmp /tmp/safeflow-smoke-j1.txt /tmp/safeflow-smoke-j8.txt
	$(SAFEFLOW) --engine summary --jobs 1 --table1 > /tmp/safeflow-smoke-t1-j1.txt
	$(SAFEFLOW) --engine summary --jobs 8 --table1 > /tmp/safeflow-smoke-t1-j8.txt
	cmp /tmp/safeflow-smoke-t1-j1.txt /tmp/safeflow-smoke-t1-j8.txt
	# Degradation contract: a fault-injected run (panic in SCC 0's task)
	# must stay deterministic across thread counts and exit 3.
	$(SAFEFLOW) --engine summary --inject scc:0 --jobs 1 --fig2 > /tmp/safeflow-smoke-fault-j1.txt; \
	  test $$? -eq 3
	$(SAFEFLOW) --engine summary --inject scc:0 --jobs 8 --fig2 > /tmp/safeflow-smoke-fault-j8.txt; \
	  test $$? -eq 3
	cmp /tmp/safeflow-smoke-fault-j1.txt /tmp/safeflow-smoke-fault-j8.txt
	# Incremental sessions: a warm no-change `check` run against a store
	# must replay the cold run's report byte-for-byte at any --jobs.
	rm -rf /tmp/safeflow-smoke-store /tmp/safeflow-smoke-src
	mkdir -p /tmp/safeflow-smoke-src
	cp examples/incremental/core.c examples/incremental/util.c /tmp/safeflow-smoke-src/
	cd /tmp/safeflow-smoke-src && $(CURDIR)/$(SAFEFLOW) check core.c util.c \
	  --store /tmp/safeflow-smoke-store --jobs 1 > /tmp/safeflow-smoke-cold.txt; test $$? -eq 2
	cd /tmp/safeflow-smoke-src && $(CURDIR)/$(SAFEFLOW) check core.c util.c \
	  --store /tmp/safeflow-smoke-store --jobs 8 > /tmp/safeflow-smoke-warm.txt; test $$? -eq 2
	cmp /tmp/safeflow-smoke-cold.txt /tmp/safeflow-smoke-warm.txt
	@echo "smoke OK: reports byte-identical at --jobs 1 and --jobs 8 (incl. fault-injected + warm replay)"

# Reproduce the paper's Table 1 with the observability layer on: per-phase
# timings, solver/taint counters, and summary-cache statistics.
metrics-demo: require-release
	$(SAFEFLOW) --table1 --metrics

# Walk the incremental-session lifecycle on examples/incremental: a cold
# run populates the store, editing one unit re-analyzes only the dirty
# SCC region (cache hits + store invalidations in the metrics), and an
# unchanged rerun replays the manifest without analyzing anything.
incremental-demo: require-release
	rm -rf /tmp/safeflow-demo-store /tmp/safeflow-demo-src
	mkdir -p /tmp/safeflow-demo-src
	cp examples/incremental/core.c examples/incremental/util.c /tmp/safeflow-demo-src/
	@echo "== cold run: populates the store =="
	cd /tmp/safeflow-demo-src && $(CURDIR)/$(SAFEFLOW) check core.c util.c \
	  --store /tmp/safeflow-demo-store --metrics=json > /tmp/safeflow-demo-cold.txt; \
	  test $$? -eq 2
	grep -q '"store.manifest_misses": 1' /tmp/safeflow-demo-cold.txt
	@grep -E '"(store|summary)\.[a-z_]+":' /tmp/safeflow-demo-cold.txt
	@echo "== edit util.c: only the dirty SCC region re-analyzes =="
	sed -i 's/x + 1/x + 2/' /tmp/safeflow-demo-src/util.c
	cd /tmp/safeflow-demo-src && $(CURDIR)/$(SAFEFLOW) check core.c util.c \
	  --store /tmp/safeflow-demo-store --metrics=json > /tmp/safeflow-demo-edit.txt; \
	  test $$? -eq 2
	grep -q '"summary.cache_hits": 2' /tmp/safeflow-demo-edit.txt
	grep -q '"store.sccs_invalidated": 2' /tmp/safeflow-demo-edit.txt
	@grep -E '"(store|summary)\.[a-z_]+":' /tmp/safeflow-demo-edit.txt
	@echo "== unchanged rerun: whole-program replay, zero SCCs re-analyzed =="
	cd /tmp/safeflow-demo-src && $(CURDIR)/$(SAFEFLOW) check core.c util.c \
	  --store /tmp/safeflow-demo-store --metrics=json > /tmp/safeflow-demo-warm.txt; \
	  test $$? -eq 2
	grep -q '"store.manifest_hits": 1' /tmp/safeflow-demo-warm.txt
	@grep -E '"(store|summary)\.[a-z_]+":' /tmp/safeflow-demo-warm.txt
	@echo "incremental-demo OK: dirty-region re-analysis + whole-program replay"

clean:
	$(CARGO) clean
