# Convenience targets for the SafeFlow workspace.
#
# `make smoke` is the pre-merge gate for the parallel engine: a release
# build, the full test suite, and a determinism spot-check that compares
# CLI reports at two thread counts byte-for-byte on the whole corpus.

CARGO ?= cargo
SAFEFLOW = target/release/safeflow

.PHONY: all build test lint bench smoke metrics-demo fuzz-smoke golden clean

all: build

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

lint:
	$(CARGO) fmt --all --check
	$(CARGO) clippy --workspace --all-targets -- -D warnings

bench:
	$(CARGO) bench -q -p safeflow-bench

# Regenerate the golden report snapshots (clean + degraded) after an
# intentional change.
golden:
	UPDATE_GOLDEN=1 $(CARGO) test -q -p safeflow --test golden
	UPDATE_GOLDEN=1 $(CARGO) test -q -p safeflow --test faults

# Longer run of the parser-robustness fuzz smoke test (the same cases run
# at a small count on every `cargo test`).
fuzz-smoke:
	FUZZ_CASES=2000 $(CARGO) test -q -p safeflow-syntax --test fuzz_smoke

# Lint + build + test + determinism at two thread counts: the summary
# engine's corpus reports must be byte-identical at --jobs 1 and --jobs 8.
# (The `--format json` byte-identity contract, with volatile metric
# sections stripped, is covered by crates/core/tests/observability.rs.)
smoke: lint build test
	$(SAFEFLOW) --engine summary --jobs 1 --fig2 > /tmp/safeflow-smoke-j1.txt || true
	$(SAFEFLOW) --engine summary --jobs 8 --fig2 > /tmp/safeflow-smoke-j8.txt || true
	cmp /tmp/safeflow-smoke-j1.txt /tmp/safeflow-smoke-j8.txt
	$(SAFEFLOW) --engine summary --jobs 1 --table1 > /tmp/safeflow-smoke-t1-j1.txt
	$(SAFEFLOW) --engine summary --jobs 8 --table1 > /tmp/safeflow-smoke-t1-j8.txt
	cmp /tmp/safeflow-smoke-t1-j1.txt /tmp/safeflow-smoke-t1-j8.txt
	# Degradation contract: a fault-injected run (panic in SCC 0's task)
	# must stay deterministic across thread counts and exit 3.
	$(SAFEFLOW) --engine summary --inject scc:0 --jobs 1 --fig2 > /tmp/safeflow-smoke-fault-j1.txt; \
	  test $$? -eq 3
	$(SAFEFLOW) --engine summary --inject scc:0 --jobs 8 --fig2 > /tmp/safeflow-smoke-fault-j8.txt; \
	  test $$? -eq 3
	cmp /tmp/safeflow-smoke-fault-j1.txt /tmp/safeflow-smoke-fault-j8.txt
	@echo "smoke OK: reports byte-identical at --jobs 1 and --jobs 8 (incl. fault-injected)"

# Reproduce the paper's Table 1 with the observability layer on: per-phase
# timings, solver/taint counters, and summary-cache statistics.
metrics-demo: build
	$(SAFEFLOW) --table1 --metrics

clean:
	$(CARGO) clean
