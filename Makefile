# Convenience targets for the SafeFlow workspace.
#
# `make smoke` is the pre-merge gate for the parallel engine: a release
# build, the full test suite, and a determinism spot-check that compares
# CLI reports at two thread counts byte-for-byte on the whole corpus.

CARGO ?= cargo
SAFEFLOW = target/release/safeflow

.PHONY: all build test bench smoke golden clean

all: build

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

bench:
	$(CARGO) bench -q -p safeflow-bench

# Regenerate the golden report snapshots after an intentional change.
golden:
	UPDATE_GOLDEN=1 $(CARGO) test -q -p safeflow --test golden

# Build + test + determinism at two thread counts: the summary engine's
# corpus reports must be byte-identical at --jobs 1 and --jobs 8.
smoke: build test
	$(SAFEFLOW) --engine summary --jobs 1 --fig2 > /tmp/safeflow-smoke-j1.txt || true
	$(SAFEFLOW) --engine summary --jobs 8 --fig2 > /tmp/safeflow-smoke-j8.txt || true
	cmp /tmp/safeflow-smoke-j1.txt /tmp/safeflow-smoke-j8.txt
	$(SAFEFLOW) --engine summary --jobs 1 --table1 > /tmp/safeflow-smoke-t1-j1.txt
	$(SAFEFLOW) --engine summary --jobs 8 --table1 > /tmp/safeflow-smoke-t1-j8.txt
	cmp /tmp/safeflow-smoke-t1-j1.txt /tmp/safeflow-smoke-t1-j8.txt
	@echo "smoke OK: reports byte-identical at --jobs 1 and --jobs 8"

clean:
	$(CARGO) clean
